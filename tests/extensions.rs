//! Integration tests for the beyond-the-paper extensions: G-test and
//! effect sizes against the census, the non-collapsed categorical
//! analysis, spatial locality, and negative borders.

use beyond_market_baskets::prelude::*;
use beyond_market_baskets::{datasets, lattice, stats};
use bmb_basket::ContingencyTable;

/// The G-test and Pearson's χ² agree on every census pair verdict, and
/// their statistics track each other.
#[test]
fn g_test_agrees_with_pearson_on_census() {
    let db = datasets::generate_census();
    let config = Chi2Test::default();
    let mut verdict_disagreements = 0usize;
    for a in 0..10u32 {
        for b in a + 1..10 {
            let table = ContingencyTable::from_database(&db, &Itemset::from_ids([a, b]));
            let pearson = config.test_dense(&table);
            let g = stats::g_test(&table, &config);
            if pearson.significant != g.significant {
                verdict_disagreements += 1;
            }
            if pearson.statistic > 50.0 {
                // Strong associations: the two statistics are within 2x.
                let ratio = g.statistic / pearson.statistic;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "(i{a}, i{b}): G = {:.1}, chi2 = {:.1}",
                    g.statistic,
                    pearson.statistic
                );
            }
        }
    }
    assert!(
        verdict_disagreements <= 1,
        "{verdict_disagreements} verdict disagreements between G and chi2"
    );
}

/// Effect sizes decouple strength from sample size on the census: the
/// highest-χ² pair (i4, i5 at 18,500) is also the strongest association by
/// |phi|, while (i2, i7)'s enormous χ² corresponds to a moderate effect.
#[test]
fn effect_sizes_rank_census_associations() {
    let db = datasets::generate_census();
    let strongest = ContingencyTable::from_database(&db, &Itemset::from_ids([4, 5]));
    let moderate = ContingencyTable::from_database(&db, &Itemset::from_ids([2, 7]));
    let phi_strong = stats::phi_coefficient(&strongest).abs();
    let phi_moderate = stats::phi_coefficient(&moderate).abs();
    assert!(
        phi_strong > 0.7,
        "citizenship/birthplace is near-deterministic: {phi_strong}"
    );
    assert!(
        phi_moderate > 0.2 && phi_moderate < 0.35,
        "military/age is moderate: {phi_moderate}"
    );
    // Odds ratio direction: i4 ∧ i5 (non-citizen born in US) is impossible.
    assert_eq!(stats::odds_ratio(&strongest), 0.0);
}

/// The expanded (multi-valued) census answers the paper's open question:
/// commute's strongest companion is age, not marital status.
#[test]
fn non_collapsed_census_resolves_the_confounder() {
    use beyond_market_baskets::corr::categorical_pairs_report;
    use datasets::census::expanded::attr;
    let data = datasets::expanded_census(1997);
    let rows = categorical_pairs_report(&data, &Chi2Test::default());
    let v = |a: usize, b: usize| {
        rows.iter()
            .find(|r| (r.a, r.b) == (a.min(b), a.max(b)))
            .unwrap()
            .cramers_v
    };
    assert!(v(attr::COMMUTE, attr::AGE) > v(attr::COMMUTE, attr::MARITAL));
    assert!(v(attr::COMMUTE, attr::AGE) > v(attr::COMMUTE, attr::MILITARY));
    // And the collapsed binary view cannot see any of this: it has only
    // the single (i0, i6) number.
    let db = datasets::generate_census();
    let collapsed = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 6]));
    assert!(Chi2Test::default().test_dense(&collapsed).significant);
}

/// Locality mining across the generated corpus end to end: every planted
/// collocation is locality-significant at window 2 with extreme adjacency
/// interest, and a random filler pair is not.
#[test]
fn locality_pipeline() {
    use beyond_market_baskets::corr::locality::locality_test;
    let corpus = datasets::text::generate_sequences(&datasets::text::TextParams {
        vocabulary: 800,
        ..Default::default()
    });
    let test = Chi2Test::default();
    for (a, b) in datasets::text::planted_pairs() {
        let ia = corpus.catalog.get(a).unwrap();
        let ib = corpus.catalog.get(b).unwrap();
        let report = locality_test(&corpus.documents, ia, ib, 2, &test);
        assert!(report.chi2.significant, "{a}/{b} not locality-significant");
        assert!(report.adjacency_interest() > 20.0);
    }
    // Two mid-frequency filler words: no planted adjacency.
    let wa = corpus.catalog.get("w0040").unwrap();
    let wb = corpus.catalog.get("w0041").unwrap();
    let report = locality_test(&corpus.documents, wa, wb, 2, &test);
    assert!(
        report.adjacency_interest() < 20.0,
        "filler words look collocated: {}",
        report.adjacency_interest()
    );
}

/// Positive and negative borders partition the supported lattice for the
/// chi-squared property on planted data.
#[test]
fn borders_partition_the_lattice() {
    let db = datasets::parity_triple(400, 5);
    let test = Chi2Test::default();
    let property = |set: &Itemset| {
        !set.is_empty()
            && test
                .test_dense(&ContingencyTable::from_database(&db, set))
                .significant
    };
    let positive = lattice::exhaustive_border(5, 5, property);
    let negative = lattice::exhaustive_negative_border(5, 5, property);
    assert_eq!(positive.minimal_sets(), &[Itemset::from_ids([0, 1, 2])]);
    for set in lattice::closure::enumerate_itemsets(5, 5) {
        let above = positive.covers(&set);
        let below = negative.iter().any(|m| set.is_subset_of(m));
        assert!(above ^ below, "{set} is in both or neither region");
    }
}

/// Yates-corrected verdicts are never *more* liberal than the plain test.
#[test]
fn yates_is_conservative_across_random_tables() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..200 {
        let counts: Vec<u64> = (0..4).map(|_| rng.gen_range(0..40)).collect();
        if counts.iter().sum::<u64>() == 0 {
            continue;
        }
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), counts);
        assert!(stats::yates_chi2(&t) <= stats::chi2_statistic(&t) + 1e-9);
    }
}

//! Integration tests reproducing every worked example of the paper
//! end-to-end through the public API.

use beyond_market_baskets::prelude::*;
use beyond_market_baskets::{apriori as sc, datasets, stats};
use bmb_basket::ContingencyTable;

/// Example 1: tea ⇒ coffee has 20% support and 80% confidence, yet the
/// dependence ratio is 0.89 — negative correlation.
#[test]
fn example_1_tea_coffee() {
    let db = datasets::tea_coffee();
    let catalog = db.catalog().unwrap();
    let tea = Itemset::singleton(catalog.get("tea").unwrap());
    let coffee = Itemset::singleton(catalog.get("coffee").unwrap());
    let counter = bmb_basket::ScanCounter::new(&db);
    let rule = sc::evaluate_rule(&counter, &tea, &coffee).unwrap();
    assert!((rule.support - 0.20).abs() < 1e-12);
    assert!((rule.confidence - 0.80).abs() < 1e-12);
    assert!((rule.lift - 0.888_888_888).abs() < 1e-6);
}

/// Example 2: confidence is not upward closed.
#[test]
fn example_2_confidence_non_closure() {
    let db = datasets::doughnuts();
    let catalog = db.catalog().unwrap();
    let c = Itemset::singleton(catalog.get("coffee").unwrap());
    let t = Itemset::singleton(catalog.get("tea").unwrap());
    let d = Itemset::singleton(catalog.get("doughnut").unwrap());
    let counter = bmb_basket::ScanCounter::new(&db);
    let small = sc::evaluate_rule(&counter, &c, &d).unwrap().confidence;
    let large = sc::evaluate_rule(&counter, &c.union(&t), &d)
        .unwrap()
        .confidence;
    assert!(
        small >= 0.5,
        "c => d should clear the 0.5 cutoff, got {small}"
    );
    assert!(large < 0.5, "c,t => d should fail the cutoff, got {large}");
}

/// Example 3: the 9-basket sample gives χ²(i8, i9) = 0.900, insignificant.
#[test]
fn example_3_sample_chi2() {
    let db = datasets::paper_sample();
    let table = ContingencyTable::from_database(&db, &Itemset::from_ids([8, 9]));
    let outcome = Chi2Test::default().test_dense(&table);
    assert!((outcome.statistic - 0.900).abs() < 5e-4);
    assert!(!outcome.significant);
}

/// Example 4: military service vs age on the full census — χ² ≈ 2006,
/// dominant cell = veteran ∧ over 40, and the support-confidence framework
/// passes exactly four directional rules.
#[test]
fn example_4_military_vs_age() {
    let db = datasets::generate_census();
    let table = ContingencyTable::from_database(&db, &Itemset::from_ids([2, 7]));
    let outcome = Chi2Test::default().test_dense(&table);
    assert!(outcome.significant);
    assert!((outcome.statistic - 2006.34).abs() < 80.0);
    let report = sc::PairReport::from_database(&db, ItemId(2), ItemId(7));
    let passing = report.passing_rules(0.01, 0.5);
    assert_eq!(passing.len(), 4, "paper: exactly half of the 8 rules pass");
    // Ranking the passing rules by their cell support puts the
    // chi-squared-dominant one (veteran ∧ over-40 = both items absent) last.
    let dominant = sc::PairRule::NotAToNotB;
    assert!(passing.contains(&dominant));
    let min_support_rule = passing
        .iter()
        .min_by(|x, y| {
            report
                .cell_support(x.cell())
                .partial_cmp(&report.cell_support(y.cell()))
                .unwrap()
        })
        .unwrap();
    assert_eq!(*min_support_rule, dominant);
}

/// Example 5: the interest values of the (i2, i7) table point at the same
/// dominant cell as the χ² contributions.
#[test]
fn example_5_interest_agrees_with_chi2() {
    let db = datasets::generate_census();
    let table = ContingencyTable::from_database(&db, &Itemset::from_ids([2, 7]));
    let report = InterestReport::analyze(&table);
    let major = report.major_dependence();
    let extreme = report.most_extreme();
    assert_eq!(
        major.cell, extreme.cell,
        "paper: the most extreme interest contributes most"
    );
    assert_eq!(major.cell, 0b00);
    assert!(
        major.interest > 1.5,
        "positive dependence, paper prints 1.99"
    );
}

/// Theorem 1, empirically: chi-squared at a fixed significance level is
/// upward closed on real data (the census), so every superset of a
/// significant pair is significant.
#[test]
fn theorem_1_upward_closure_on_census() {
    let db = datasets::generate_census();
    let test = Chi2Test::default();
    for a in 0..10u32 {
        for b in a + 1..10 {
            let pair = Itemset::from_ids([a, b]);
            let pair_stat = test
                .test_dense(&ContingencyTable::from_database(&db, &pair))
                .statistic;
            for c in 0..10u32 {
                if c == a || c == b {
                    continue;
                }
                let triple = pair.with_item(ItemId(c));
                let triple_stat = test
                    .test_dense(&ContingencyTable::from_database(&db, &triple))
                    .statistic;
                assert!(
                    triple_stat >= pair_stat - 1e-6,
                    "closure violated: chi2({triple}) = {triple_stat} < chi2({pair}) = {pair_stat}"
                );
            }
        }
    }
}

/// The limitations section (3.3): the census tables are comfortable, but a
/// high-dimensional table over the same data fails Moore's rules.
#[test]
fn section_3_3_validity_limits() {
    let db = datasets::generate_census();
    let pair_table = ContingencyTable::from_database(&db, &Itemset::from_ids([2, 7]));
    assert!(stats::check_dense(&pair_table, stats::ValidityRule::default()).is_valid());
    let wide = Itemset::from_ids(0..10);
    let wide_table = ContingencyTable::from_database(&db, &wide);
    assert!(
        !stats::check_dense(&wide_table, stats::ValidityRule::default()).is_valid(),
        "a 1024-cell table over n = 30,370 cannot satisfy Moore's rules"
    );
}

//! Parallel/serial equivalence: sweeping the worker-thread count must
//! never change a single count, verdict, or statistic. Both counting
//! kernels and the full miner are exercised on a seeded 10k-basket Quest
//! database, so the parallel chunking paths (>256 candidates) engage.

use beyond_market_baskets::prelude::*;
use beyond_market_baskets::quest;
use bmb_basket::{BitmapIndex, ItemId, Itemset};
use bmb_core::counting::{count_with_bitmaps, count_with_scan};
use bmb_core::CountingStrategy;

fn seeded_db() -> bmb_basket::BasketDatabase {
    let params = quest::QuestParams {
        n_transactions: 10_000,
        n_items: 90,
        avg_transaction_len: 10.0,
        avg_pattern_len: 4.0,
        n_patterns: 30,
        seed: 20260807,
        ..quest::QuestParams::default()
    };
    quest::generate(&params)
}

/// Every pair over the item universe: 90·89/2 = 4005 candidates, well
/// past the sequential-fallback threshold of the counting kernels.
fn all_pairs(n_items: u32) -> Vec<Itemset> {
    let mut out = Vec::new();
    for a in 0..n_items {
        for b in a + 1..n_items {
            out.push(Itemset::from_items([ItemId(a), ItemId(b)]));
        }
    }
    out
}

#[test]
fn counting_kernels_agree_across_thread_counts() {
    let db = seeded_db();
    let index = BitmapIndex::build(&db);
    let candidates = all_pairs(db.n_items() as u32);
    assert!(
        candidates.len() > 256,
        "need enough candidates to engage parallel chunking"
    );

    let scan_serial = count_with_scan(&db, &candidates, 1);
    let bitmap_serial = count_with_bitmaps(&index, &candidates, 1);
    assert_eq!(
        scan_serial, bitmap_serial,
        "scan and bitmap kernels disagree serially"
    );

    for threads in 2..=8 {
        let scan = count_with_scan(&db, &candidates, threads);
        assert_eq!(
            scan, scan_serial,
            "count_with_scan diverged at {threads} threads"
        );
        let bitmaps = count_with_bitmaps(&index, &candidates, threads);
        assert_eq!(
            bitmaps, bitmap_serial,
            "count_with_bitmaps diverged at {threads} threads"
        );
    }
}

#[test]
fn miner_results_are_thread_count_invariant() {
    let db = seeded_db();
    let config = |threads: usize, counting: CountingStrategy| MinerConfig {
        support: SupportSpec::Fraction(0.01),
        threads,
        counting,
        ..MinerConfig::default()
    };

    for counting in [CountingStrategy::Bitmap, CountingStrategy::BasketScan] {
        let baseline = mine(&db, &config(1, counting));
        assert!(
            !baseline.significant.is_empty(),
            "seeded database must yield significant sets ({counting:?})"
        );
        for threads in 2..=8 {
            let run = mine(&db, &config(threads, counting));
            assert_eq!(
                run.levels, baseline.levels,
                "per-level accounting diverged at {threads} threads ({counting:?})"
            );
            let sets = |r: &MiningResult| {
                r.significant
                    .iter()
                    .map(|s| s.itemset.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                sets(&run),
                sets(&baseline),
                "significant itemsets diverged at {threads} threads ({counting:?})"
            );
            // Statistics must be bit-identical, not merely close: every
            // candidate's χ² is computed from the same integer counts.
            let stats = |r: &MiningResult| {
                r.significant
                    .iter()
                    .map(|s| s.chi2.statistic.to_bits())
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                stats(&run),
                stats(&baseline),
                "χ² statistics diverged at {threads} threads ({counting:?})"
            );
        }
    }
}

//! Cross-crate integration: the full mining pipeline on every workload
//! simulator, plus consistency between the level-wise and walk miners and
//! between the correlation and support-confidence frameworks.

use beyond_market_baskets::prelude::*;
use beyond_market_baskets::{datasets, lattice, quest};
use bmb_core::{CountingStrategy, Level1Prune};
use bmb_lattice::WalkConfig;

fn config(s: u64) -> MinerConfig {
    MinerConfig {
        support: SupportSpec::Count(s),
        ..MinerConfig::default()
    }
}

/// Mining the Quest workload end to end: generation → miner → border.
#[test]
fn quest_pipeline() {
    let params = quest::QuestParams {
        n_transactions: 5_000,
        n_items: 120,
        avg_transaction_len: 8.0,
        avg_pattern_len: 4.0,
        n_patterns: 40,
        seed: 7,
        ..quest::QuestParams::default()
    };
    let db = quest::generate(&params);
    let result = mine(
        &db,
        &MinerConfig {
            support: SupportSpec::Fraction(0.01),
            ..config(1)
        },
    );
    // Planted patterns guarantee plenty of significant pairs.
    assert!(
        result.levels[0].significant > 10,
        "expected planted correlations, got {:?}",
        result.levels
    );
    // The output is a genuine antichain (minimality).
    let border = result.border();
    assert_eq!(border.len(), result.significant.len());
    // And the level accounting is self-consistent.
    for level in &result.levels {
        assert!(level.is_consistent());
    }
}

/// The miner agrees with brute-force exhaustive search on a small universe.
#[test]
fn miner_matches_exhaustive_border() {
    let db = datasets::planted_pair(1200, 6, 0.35, 0.75, 13);
    let cfg = MinerConfig {
        support: SupportSpec::Count(1),
        support_fraction: 0.26,
        level1: Level1Prune::Off,
        ..MinerConfig::default()
    };
    let result = mine(&db, &cfg);
    // Ground truth: exhaustive border of "chi2 significant" over supported
    // sets. With s = 1 and p = 0.26, support requires ceil(0.26·2^m) cells
    // to be non-empty.
    let test = Chi2Test::default();
    let truth = lattice::exhaustive_border(6, 6, |set| {
        if set.is_empty() {
            return false;
        }
        let table = bmb_basket::ContingencyTable::from_database(&db, set);
        let cells_needed = ((0.26 * table.n_cells() as f64).ceil() as usize).max(1);
        table.cells_with_count_at_least(1) >= cells_needed && test.test_dense(&table).significant
    });
    // The miner's SIG must equal the border elements reachable through
    // all-NOTSIG ancestry; on this data (support never binds) that is the
    // full border of minimal correlated sets.
    let mined = result.border();
    assert_eq!(
        mined.minimal_sets(),
        truth.minimal_sets(),
        "miner disagrees with exhaustive search"
    );
}

/// Level-wise and random-walk miners find the same border on clean data.
#[test]
fn walk_and_levelwise_agree() {
    let db = datasets::parity_triple(800, 6);
    let cfg = config(5);
    let levelwise = mine(&db, &cfg);
    let walked = mine_walk(
        &db,
        &cfg,
        WalkConfig {
            walks: 400,
            max_level: 6,
            seed: 3,
        },
        None,
    );
    let level_sets: Vec<Itemset> = levelwise
        .significant
        .iter()
        .map(|r| r.itemset.clone())
        .collect();
    assert_eq!(walked.border, level_sets);
}

/// Counting strategies and thread counts never change the mining output.
#[test]
fn strategies_and_threads_invariant() {
    let db = datasets::planted_pair(3000, 10, 0.25, 0.6, 23);
    let base = mine(&db, &config(8));
    for counting in [CountingStrategy::Bitmap, CountingStrategy::BasketScan] {
        for threads in [1usize, 3] {
            let result = mine(
                &db,
                &MinerConfig {
                    counting,
                    threads,
                    ..config(8)
                },
            );
            assert_eq!(result.levels, base.levels, "{counting:?}/{threads}");
            assert_eq!(
                result
                    .significant
                    .iter()
                    .map(|r| &r.itemset)
                    .collect::<Vec<_>>(),
                base.significant
                    .iter()
                    .map(|r| &r.itemset)
                    .collect::<Vec<_>>()
            );
        }
    }
}

/// Support-confidence and correlation frameworks disagree exactly where
/// the paper says they do: high-confidence rules on negatively-correlated
/// pairs, and silence on exclusions.
#[test]
fn frameworks_disagree_as_documented() {
    // (a) tea/coffee: S-C produces tea => coffee; chi2 sees only weak
    // evidence (3.70 < 3.84) and interest < 1.
    let db = datasets::tea_coffee();
    let frequent = beyond_market_baskets::apriori::apriori(
        &db,
        beyond_market_baskets::apriori::MinSupport::Fraction(0.05),
        2,
    );
    let rules = beyond_market_baskets::apriori::generate_rules(&frequent, db.len() as u64, 0.5);
    assert!(
        rules.iter().any(|r| r.confidence >= 0.8 && r.lift < 1.0),
        "the misleading high-confidence negative-lift rule must exist"
    );

    // (b) exclusion: S-C has nothing, the miner reports the pair.
    let db = datasets::negative_pair(5000, 0.35, 17);
    let result = mine(
        &db,
        &MinerConfig {
            support: SupportSpec::Fraction(0.01),
            ..MinerConfig::default()
        },
    );
    assert!(result.rule_for(&Itemset::from_ids([0, 1])).is_some());
    let frequent = beyond_market_baskets::apriori::apriori(
        &db,
        beyond_market_baskets::apriori::MinSupport::Fraction(0.01),
        2,
    );
    assert!(
        frequent.support_of(&Itemset::from_ids([0, 1])).is_none(),
        "support-confidence must be blind to the exclusion"
    );
}

/// The datacube serves the walk miner the same tables as direct scans.
#[test]
fn datacube_equivalence() {
    let db = datasets::planted_pair(1000, 8, 0.3, 0.7, 31);
    let cube = lattice::CountCube::build(&db, &Itemset::from_ids(0..8));
    for a in 0..8u32 {
        for b in a + 1..8 {
            let set = Itemset::from_ids([a, b]);
            assert_eq!(
                cube.contingency(&set),
                bmb_basket::ContingencyTable::from_database(&db, &set)
            );
        }
    }
}

/// Serialization round-trip: a generated database written to the basket
/// format and read back mines identically.
#[test]
fn io_round_trip_preserves_mining() {
    let db = datasets::planted_pair(500, 5, 0.4, 0.8, 41);
    let mut buf = Vec::new();
    bmb_basket::io::write(&db, &mut buf).unwrap();
    let back = bmb_basket::io::read_numeric(buf.as_slice()).unwrap();
    let a = mine(&db, &config(3));
    let b = mine(&back, &config(3));
    assert_eq!(a.levels, b.levels);
}

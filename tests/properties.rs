//! Property-based tests (proptest) over the core invariants:
//! Theorem 1's upward closure, support's downward closure, counting-
//! strategy equivalence, statistic identities, and sampler correctness.

use beyond_market_baskets::prelude::*;
use bmb_basket::{BasketDatabase, BitmapIndex, ContingencyTable, SparseContingencyTable};
use bmb_stats::gamma::{regularized_gamma_p, regularized_gamma_q};
use proptest::prelude::*;

/// Strategy: a random small basket database over `k` items.
fn db_strategy(max_items: usize, max_baskets: usize) -> impl Strategy<Value = BasketDatabase> {
    (2..=max_items, 4..=max_baskets).prop_flat_map(|(k, n)| {
        proptest::collection::vec(proptest::collection::vec(0..k as u32, 0..=k), n..=n)
            .prop_map(move |baskets| BasketDatabase::from_id_baskets(k, baskets))
    })
}

proptest! {
    /// Theorem 1: adding any item to an itemset never decreases its
    /// chi-squared statistic (single-df convention), hence significance at
    /// any level α is upward closed.
    #[test]
    fn chi2_statistic_is_monotone_under_extension(
        db in db_strategy(6, 60),
        seed in 0u32..1000,
    ) {
        let k = db.n_items() as u32;
        let test = Chi2Test::default();
        // Pick a pair and an extension item from the seed.
        let a = seed % k;
        let b = (seed / k) % k;
        let c = (seed / (k * k)) % k;
        prop_assume!(a != b && b != c && a != c);
        let pair = Itemset::from_ids([a, b]);
        let triple = pair.with_item(ItemId(c));
        let s_pair = test.test_dense(&ContingencyTable::from_database(&db, &pair)).statistic;
        let s_triple = test.test_dense(&ContingencyTable::from_database(&db, &triple)).statistic;
        prop_assert!(
            s_triple >= s_pair - 1e-7,
            "upward closure violated: {s_triple} < {s_pair}"
        );
    }

    /// The sparse chi-squared formula equals the dense one.
    #[test]
    fn sparse_chi2_equals_dense(db in db_strategy(5, 50), seed in 0u32..100) {
        let k = db.n_items() as u32;
        let a = seed % k;
        let b = (seed / k) % k;
        prop_assume!(a != b);
        let set = Itemset::from_ids([a, b]);
        let test = Chi2Test::default();
        let dense = test.test_dense(&ContingencyTable::from_database(&db, &set));
        let sparse = test.test_sparse(&SparseContingencyTable::from_database(&db, &set));
        prop_assert!((dense.statistic - sparse.statistic).abs() < 1e-7);
        prop_assert_eq!(dense.significant, sparse.significant);
    }

    /// Contingency cells always sum to n, and expectations do too.
    #[test]
    fn contingency_mass_conservation(db in db_strategy(6, 60), seed in 0u32..100) {
        let k = db.n_items() as u32;
        let a = seed % k;
        let b = (seed / k) % k;
        prop_assume!(a != b);
        let set = Itemset::from_ids([a, b]);
        let t = ContingencyTable::from_database(&db, &set);
        let observed: u64 = t.cells().map(|(_, c)| c).sum();
        prop_assert_eq!(observed, db.len() as u64);
        let expected: f64 = t.cells().map(|(cell, _)| t.expected(cell)).sum();
        prop_assert!((expected - db.len() as f64).abs() < 1e-6);
    }

    /// Bitmap-index construction agrees with direct scanning for every
    /// single item and random pair.
    #[test]
    fn bitmap_index_counts_match_scan(db in db_strategy(7, 80)) {
        let index = BitmapIndex::build(&db);
        use bmb_basket::SupportCounter;
        let scan = bmb_basket::ScanCounter::new(&db);
        for i in 0..db.n_items() as u32 {
            prop_assert_eq!(
                index.support_count(&[ItemId(i)]),
                scan.support_count(&[ItemId(i)])
            );
        }
        for a in 0..db.n_items() as u32 {
            for b in a + 1..db.n_items() as u32 {
                prop_assert_eq!(
                    index.support_count(&[ItemId(a), ItemId(b)]),
                    scan.support_count(&[ItemId(a), ItemId(b)])
                );
            }
        }
    }

    /// Gamma identities: P + Q = 1 and monotonicity of P in x.
    #[test]
    fn gamma_p_q_identities(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = regularized_gamma_p(a, x);
        let q = regularized_gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-10);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = regularized_gamma_p(a, x + 0.5);
        prop_assert!(p2 >= p - 1e-12);
    }

    /// Chi-squared quantile inverts the CDF across dfs and probabilities.
    #[test]
    fn chi2_quantile_roundtrip(df in 1.0f64..200.0, p in 0.001f64..0.999) {
        let dist = ChiSquared::new(df);
        let x = dist.quantile(p);
        prop_assert!((dist.cdf(x) - p).abs() < 1e-8, "df {df} p {p} x {x}");
    }

    /// Itemset algebra: union/intersection/subset laws.
    #[test]
    fn itemset_algebra(
        a in proptest::collection::vec(0u32..40, 0..12),
        b in proptest::collection::vec(0u32..40, 0..12),
    ) {
        let sa = Itemset::from_ids(a);
        let sb = Itemset::from_ids(b);
        let union = sa.union(&sb);
        let inter = sa.intersection(&sb);
        prop_assert!(sa.is_subset_of(&union) && sb.is_subset_of(&union));
        prop_assert!(inter.is_subset_of(&sa) && inter.is_subset_of(&sb));
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
        // Facets: every facet is a subset of size len-1.
        for f in sa.facets() {
            prop_assert_eq!(f.len() + 1, sa.len());
            prop_assert!(f.is_subset_of(&sa));
        }
    }

    /// The miner's output never contains one reported set inside another
    /// (minimality), and all level stats balance.
    #[test]
    fn miner_output_is_antichain(db in db_strategy(6, 120), s in 1u64..6) {
        let config = MinerConfig {
            support: SupportSpec::Count(s),
            ..MinerConfig::default()
        };
        let result = mine(&db, &config);
        for (i, x) in result.significant.iter().enumerate() {
            for y in result.significant.iter().skip(i + 1) {
                prop_assert!(
                    !x.itemset.is_subset_of(&y.itemset) && !y.itemset.is_subset_of(&x.itemset),
                    "{} and {} violate minimality",
                    x.itemset,
                    y.itemset
                );
            }
        }
        for level in &result.levels {
            prop_assert!(level.is_consistent());
        }
    }

    /// Largest-remainder materialization returns exactly n baskets and
    /// approximates the target marginals.
    #[test]
    fn census_materialize_is_exact(n in 1500usize..20_000) {
        // Calibrate once; the fit is deterministic.
        static FIT: std::sync::OnceLock<beyond_market_baskets::datasets::census::ipf::IpfFit> =
            std::sync::OnceLock::new();
        let fit = FIT.get_or_init(beyond_market_baskets::datasets::calibrate);
        let db = beyond_market_baskets::datasets::census::materialize(fit, n);
        prop_assert_eq!(db.len(), n);
        for i in 0..10u32 {
            let got = db.item_frequency(ItemId(i));
            let want = fit.marginal(i as usize);
            // Largest-remainder noise on a marginal aggregates ~sqrt(512)
            // half-basket errors; at n >= 1500 that is well under 2%.
            prop_assert!((got - want).abs() < 0.02, "item {i}: {got} vs {want}");
        }
    }
}

proptest! {
    /// Random contingency tables flow through the chi-squared test with
    /// every numerical contract active (this suite runs in debug builds,
    /// where `bmb_stats::contracts` is live): construction re-derives the
    /// marginals, and the outcome's statistic, cutoff, and p-value all
    /// satisfy their range invariants.
    #[test]
    fn random_tables_satisfy_chi2_contracts(
        dims in 2usize..=4,
        seed in proptest::collection::vec(0u64..500, 16..=16),
    ) {
        let counts: Vec<u64> = seed[..1 << dims].to_vec();
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let set = Itemset::from_ids(0..dims as u32);
        // `from_counts` runs the table-consistency contract internally.
        let table = ContingencyTable::from_counts(set, counts);
        let outcome = Chi2Test::default().test_dense(&table);
        prop_assert!(outcome.statistic.is_finite() && outcome.statistic >= 0.0);
        prop_assert!(outcome.cutoff > 0.0);
        let p = outcome.p_value();
        prop_assert!((0.0..=1.0).contains(&p), "p-value {p} out of range");
        prop_assert!(outcome.ln_p_value <= 1e-9, "ln p {} above 0", outcome.ln_p_value);
    }
}

//! Differential bit-identity: a sharded cluster must answer exactly —
//! byte for byte, f64 bit pattern for bit pattern — what a single store
//! holding the same baskets answers.
//!
//! One seeded Quest workload is ingested three ways: straight into a
//! plain server, through a 1-shard cluster, and through a 4-shard
//! cluster. The same query script then runs against all three over real
//! TCP, and every response line must match after stripping the two
//! fields that legitimately differ: the top-level `trace` id and the
//! cluster-only `epochs` vector inside the result. Everything else —
//! supports, χ² statistics, p-values, interest ratios, border itemsets,
//! error messages, even the scalar `epoch` (shard epochs sum to the
//! plain store's) — must be identical, because the coordinator merges
//! integer supports and reruns the very same float code path.

use std::sync::Arc;

use bmb_basket::{IncrementalStore, Itemset, StoreConfig};
use bmb_cluster::{CoordinatorConfig, CoordinatorService};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_quest::QuestParams;
use bmb_serve::json::{parse, Value};
use bmb_serve::server::RunningServer;
use bmb_serve::{Client, Server, ServerConfig, ServerMetrics, Service, ServiceCtx};

const N_ITEMS: usize = 24;

/// The shared workload: small enough to keep three clusters fast, big
/// enough that χ² statistics exercise non-trivial float arithmetic.
fn quest_baskets() -> Vec<Vec<u32>> {
    let params = QuestParams {
        n_transactions: 600,
        n_items: N_ITEMS,
        avg_transaction_len: 6.0,
        avg_pattern_len: 3.0,
        n_patterns: 40,
        item_zipf_exponent: 0.8,
        seed: 0xD1FF,
        ..QuestParams::default()
    };
    bmb_quest::generate(&params)
        .baskets()
        .map(|b| b.iter().map(|item| item.0).collect())
        .collect()
}

/// A plain in-memory server preloaded with `baskets`.
fn spawn_plain(baskets: &[Vec<u32>]) -> (RunningServer, std::net::SocketAddr) {
    let store = Arc::new(IncrementalStore::new(
        N_ITEMS,
        StoreConfig {
            segment_capacity: 64,
        },
    ));
    for basket in baskets {
        store
            .append_ids(basket.iter().copied())
            .expect("ids in range");
    }
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
    let server = Server::bind(engine, ServerConfig::default()).expect("bind plain");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

/// An empty in-memory shard server.
fn spawn_shard() -> (RunningServer, std::net::SocketAddr) {
    let store = Arc::new(IncrementalStore::new(
        N_ITEMS,
        StoreConfig {
            segment_capacity: 64,
        },
    ));
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
    let server = Server::bind(engine, ServerConfig::default()).expect("bind shard");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

/// A cluster of `n_shards` empty shards behind a coordinator, loaded
/// with `baskets` through the coordinator's own ingest path.
fn spawn_cluster(
    n_shards: usize,
    baskets: &[Vec<u32>],
) -> (
    Vec<RunningServer>,
    RunningServer,
    std::net::SocketAddr,
    Arc<CoordinatorService>,
) {
    let mut shard_servers = Vec::new();
    let mut shard_addrs = Vec::new();
    for _ in 0..n_shards {
        let (running, addr) = spawn_shard();
        shard_servers.push(running);
        shard_addrs.push(addr.to_string());
    }
    let coordinator = Arc::new(CoordinatorService::new(CoordinatorConfig::new(
        N_ITEMS,
        shard_addrs,
    )));
    let service: Arc<dyn Service> = Arc::clone(&coordinator) as Arc<dyn Service>;
    let server = Server::bind_service(service, ServerConfig::default()).expect("bind coordinator");
    let addr = server.local_addr();
    let running = server.spawn();

    let mut client = Client::connect(addr).expect("connect coordinator");
    for chunk in baskets.chunks(100) {
        let rows: Vec<Value> = chunk
            .iter()
            .map(|b| Value::Array(b.iter().map(|&id| Value::Int(id as i64)).collect()))
            .collect();
        let request = Value::object()
            .with("cmd", Value::Str("ingest".to_string()))
            .with("baskets", Value::Array(rows));
        client.request(&request).expect("cluster ingest");
    }
    (shard_servers, running, addr, coordinator)
}

/// Strips the top-level `trace` and the result-level `epochs` — the
/// only fields allowed to differ between a plain server and a cluster.
fn stripped(line: &str) -> String {
    let value = parse(line).expect("response is JSON");
    let Value::Object(pairs) = value else {
        panic!("response is not an object: {line}");
    };
    let cleaned: Vec<(String, Value)> = pairs
        .into_iter()
        .filter(|(key, _)| key != "trace")
        .map(|(key, value)| {
            if key == "result" {
                if let Value::Object(inner) = value {
                    return (
                        key,
                        Value::Object(inner.into_iter().filter(|(k, _)| k != "epochs").collect()),
                    );
                }
                (key, value)
            } else {
                (key, value)
            }
        })
        .collect();
    Value::Object(cleaned).to_string()
}

/// The query script: happy paths plus every validation error shape, so
/// the coordinator's error precedence is pinned to the engine's.
fn query_script() -> Vec<String> {
    let seventeen: Vec<String> = (0..17).map(|i| i.to_string()).collect();
    vec![
        r#"{"id":1,"cmd":"chi2","items":[0]}"#.to_string(),
        r#"{"id":2,"cmd":"chi2","items":[0,1]}"#.to_string(),
        r#"{"id":3,"cmd":"chi2","items":[3,1,2]}"#.to_string(),
        r#"{"id":4,"cmd":"chi2","items":[5,17]}"#.to_string(),
        r#"{"id":5,"cmd":"chi2","items":[]}"#.to_string(),
        format!(
            r#"{{"id":6,"cmd":"chi2","items":[{}]}}"#,
            seventeen.join(",")
        ),
        r#"{"id":7,"cmd":"chi2","items":[0,99]}"#.to_string(),
        r#"{"id":8,"cmd":"chi2_batch","itemsets":[[0,1],[],[2,99],[7]]}"#.to_string(),
        r#"{"id":9,"cmd":"interest","items":[0,1],"cell":3}"#.to_string(),
        r#"{"id":10,"cmd":"interest","items":[2],"cell":0}"#.to_string(),
        r#"{"id":11,"cmd":"interest","items":[0,1],"cell":99}"#.to_string(),
        r#"{"id":12,"cmd":"topk","k":5}"#.to_string(),
        r#"{"id":13,"cmd":"border","support":0.02,"support_fraction":0.3,"max_level":3}"#
            .to_string(),
        r#"{"id":14,"cmd":"border","support":2.0}"#.to_string(),
        r#"{"id":15,"cmd":"support_vec","itemsets":[[],[0],[0,1]]}"#.to_string(),
    ]
}

fn run_script(addr: std::net::SocketAddr) -> Vec<String> {
    let mut client = Client::connect(addr).expect("connect");
    query_script()
        .iter()
        .map(|line| stripped(&client.request_line(line).expect("response")))
        .collect()
}

#[test]
fn cluster_answers_are_byte_identical_to_a_single_store() {
    let baskets = quest_baskets();
    let (plain_running, plain_addr) = spawn_plain(&baskets);
    let (shards1, coord1, addr1, _) = spawn_cluster(1, &baskets);
    let (shards4, coord4, addr4, _) = spawn_cluster(4, &baskets);

    let plain = run_script(plain_addr);
    let one = run_script(addr1);
    let four = run_script(addr4);

    for ((p, o), f) in plain.iter().zip(&one).zip(&four) {
        assert_eq!(p, o, "1-shard cluster diverged from the single store");
        assert_eq!(p, f, "4-shard cluster diverged from the single store");
    }

    coord1.stop().expect("stop 1-shard coordinator");
    coord4.stop().expect("stop 4-shard coordinator");
    for s in shards1.into_iter().chain(shards4) {
        s.stop().expect("stop shard");
    }
    plain_running.stop().expect("stop plain server");
}

/// The acceptance criterion stated in terms of raw f64 bit patterns:
/// compare the in-process `Value` floats (no serialization round-trip)
/// of a 4-shard coordinator against the engine's own answer.
#[test]
fn chi2_statistics_match_to_the_bit() {
    let baskets = quest_baskets();

    let store = Arc::new(IncrementalStore::new(
        N_ITEMS,
        StoreConfig {
            segment_capacity: 64,
        },
    ));
    for basket in &baskets {
        store
            .append_ids(basket.iter().copied())
            .expect("ids in range");
    }
    let engine = QueryEngine::new(store, EngineConfig::default());
    let (shards, coord_running, _, coordinator) = spawn_cluster(4, &baskets);

    let config = ServerConfig::default();
    let metrics = ServerMetrics::new();
    let snap = engine.snapshot();
    for items in [vec![0u32], vec![0, 1], vec![3, 1, 2], vec![5, 17, 9]] {
        let expected = engine
            .chi2(&snap, &Itemset::from_ids(items.iter().copied()))
            .expect("engine chi2");
        let ctx = ServiceCtx {
            start: std::time::Instant::now(),
            config: &config,
            metrics: &metrics,
            generation: None,
        };
        let got = coordinator
            .dispatch(
                bmb_serve::Request::Chi2 {
                    items: items.clone(),
                },
                &ctx,
            )
            .expect("coordinator chi2");
        let stat = got
            .get("statistic")
            .and_then(Value::as_f64)
            .expect("statistic field");
        let ln_p = got
            .get("ln_p_value")
            .and_then(Value::as_f64)
            .expect("ln_p_value field");
        assert_eq!(
            stat.to_bits(),
            expected.outcome.statistic.to_bits(),
            "χ² statistic bits diverged for {items:?}"
        );
        assert_eq!(ln_p.to_bits(), expected.outcome.ln_p_value.to_bits());
        assert_eq!(
            got.get("support").and_then(Value::as_u64),
            Some(expected.support)
        );
        assert_eq!(got.get("epoch").and_then(Value::as_u64), Some(snap.epoch()));
    }

    coord_running.stop().expect("stop coordinator");
    for s in shards {
        s.stop().expect("stop shard");
    }
}

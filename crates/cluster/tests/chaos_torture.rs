//! Seeded network-chaos torture: a 3-shard + follower cluster under a
//! deterministic fault-injecting proxy, partitions, and kills, with
//! four invariants checked continuously:
//!
//! 1. **Never a wrong answer** — every accepted query response names an
//!    epoch vector, and its statistic/support bits must equal a
//!    single-node oracle built from exactly the baskets applied at that
//!    cut. Errors are tolerated under chaos; wrong answers never.
//! 2. **No acked ingest lost** — every basket the coordinator acked is
//!    provably applied (store epoch deltas reconcile each attempt), and
//!    survives the failover into the final answers.
//! 3. **Generations strictly monotone** — no node's persisted fencing
//!    generation ever decreases, and every promotion strictly bumps it.
//! 4. **No dual primary** — at every sample point, at most one node of
//!    a replication pair holds the primary role at the slot's highest
//!    protocol-visible generation. (A deliberately unfenced build fails
//!    exactly this invariant — see `unfenced_build_split_brains`.)
//!
//! Every assertion names the schedule's seed; replay one schedule with
//! `CHAOS_SEED=<seed> cargo test -p bmb-cluster --test chaos_torture`.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bmb_basket::wal::{DurabilityConfig, DurableStore};
use bmb_basket::{FsDir, IncrementalStore, Itemset, StoreConfig};
use bmb_cluster::{
    ChaosConfig, ChaosProxy, ClusterMetrics, CoordinatorConfig, CoordinatorService, FollowerConfig,
    NodeService, Role, ShardSpec,
};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::Value;
use bmb_serve::server::RunningServer;
use bmb_serve::{
    EngineService, Request, RetryPolicy, Server, ServerConfig, ServerMetrics, Service, ServiceCtx,
    ServiceFailure,
};

const N_ITEMS: usize = 12;
const DEFAULT_BASE_SEED: u64 = 0xB0B0_CAFE_D00D_F00D;

// ---- deterministic schedule randomness ----------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// The schedule seeds to run: one exact seed from `CHAOS_SEED`, or a
/// fixed batch derived from the default base (20 in release; fewer in
/// debug so tier-1 `cargo test` stays fast).
fn schedule_seeds() -> Vec<u64> {
    if let Ok(text) = std::env::var("CHAOS_SEED") {
        let text = text.trim();
        let seed = text
            .strip_prefix("0x")
            .map(|hex| u64::from_str_radix(hex, 16))
            .unwrap_or_else(|| text.parse())
            .expect("CHAOS_SEED must be a u64 (decimal or 0x-hex)");
        return vec![seed];
    }
    let count = if cfg!(debug_assertions) { 4 } else { 20 };
    let mut rng = Rng(DEFAULT_BASE_SEED);
    (0..count).map(|_| rng.next()).collect()
}

// ---- cluster scaffolding ------------------------------------------------

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

fn temp_dir(seed: u64, tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("bmb-chaos-{pid}-{seed:016x}-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &PathBuf) -> Arc<DurableStore> {
    let fs = FsDir::open(dir).expect("open dir");
    let (durable, _report) = DurableStore::open_dir(
        Box::new(fs),
        N_ITEMS,
        StoreConfig {
            segment_capacity: 16,
        },
        DurabilityConfig {
            segment_bytes: 1024,
            retain_checkpoints: 2,
        },
    )
    .expect("open durable store");
    Arc::new(durable)
}

fn engine_over(durable: &Arc<DurableStore>) -> EngineService {
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(durable.store()),
        EngineConfig::default(),
    ));
    EngineService::new(engine).with_durable(Arc::clone(durable))
}

fn repl_tuning(primary_addr: String) -> FollowerConfig {
    let mut config = FollowerConfig::new(primary_addr);
    config.poll_interval = Duration::from_millis(2);
    config.error_backoff = Duration::from_millis(10);
    config.retry = fast_retry();
    config.request_timeout = Duration::from_millis(500);
    config
}

fn bind_node(node: &Arc<NodeService>) -> (RunningServer, SocketAddr) {
    let server = Server::bind_service(
        Arc::clone(node) as Arc<dyn Service>,
        ServerConfig::default(),
    )
    .expect("bind node");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

fn drive(coordinator: &CoordinatorService, request: Request) -> Result<Value, ServiceFailure> {
    let config = ServerConfig::default();
    let metrics = ServerMetrics::new();
    let ctx = ServiceCtx {
        start: Instant::now(),
        config: &config,
        metrics: &metrics,
        generation: None,
    };
    coordinator.dispatch(request, &ctx)
}

/// The generation a node exposes on the wire (`None` when fencing is
/// disabled — treated as 0, i.e. "no fence at all").
fn visible_gen(node: &NodeService) -> u64 {
    Service::generation(node).unwrap_or(0)
}

/// How many nodes of a replication pair claim the primary role at the
/// pair's highest protocol-visible generation — the split-brain meter.
fn primaries_at_top_gen(pair: &[&NodeService]) -> usize {
    let top = pair.iter().map(|n| visible_gen(n)).max().unwrap_or(0);
    pair.iter()
        .filter(|n| n.role() == Role::Primary && visible_gen(n) >= top)
        .count()
}

// ---- the torture driver -------------------------------------------------

/// Everything one schedule builds and checks. The driver is
/// single-threaded on purpose: every state change is observed at a
/// known point, so the applied-basket record is exact and every answer
/// can be compared against an oracle at its own epoch-vector cut.
struct Torture {
    seed: u64,
    rng: Rng,
    coordinator: CoordinatorService,
    node0: Arc<NodeService>,
    follower0: Arc<NodeService>,
    store0: Arc<DurableStore>,
    fstore0: Arc<DurableStore>,
    store1: Arc<DurableStore>,
    store2: Arc<DurableStore>,
    node0_addr: SocketAddr,
    proxy_addr: SocketAddr,
    /// Exact per-shard applied basket sequences (slot 0 is the logical
    /// sequence served by whichever node is slot 0's primary).
    recorded: [Vec<Vec<u32>>; 3],
    /// Mirror of the coordinator's basket-id counter (it advances per
    /// *attempt*, acked or not, so routing stays reproducible).
    attempted: u64,
    /// Last sampled persisted generation per node, for monotonicity.
    last_gens: [u64; 4],
    oracle_cache: HashMap<([u64; 3], Vec<u32>), (f64, f64, u64)>,
}

impl Torture {
    fn check(&self, ok: bool, what: &str) {
        assert!(
            ok,
            "invariant violated: {what} — replay with CHAOS_SEED={:#x}",
            self.seed
        );
    }

    /// Invariants 3 and 4, sampled between operations.
    fn sample_invariants(&mut self) {
        let gens = [
            self.store0.generation(),
            self.fstore0.generation(),
            self.store1.generation(),
            self.store2.generation(),
        ];
        for (node, (&now, last)) in gens.iter().zip(self.last_gens).enumerate() {
            assert!(
                now >= last,
                "invariant violated: node {node} generation moved backwards \
                 ({last} -> {now}) — replay with CHAOS_SEED={:#x}",
                self.seed
            );
        }
        self.last_gens = gens;
        let dual = primaries_at_top_gen(&[&self.node0, &self.follower0]);
        self.check(
            dual <= 1,
            "two nodes answer as primary for shard 0 at the top generation",
        );
    }

    /// A fresh seeded basket, sorted and deduped so the cluster and the
    /// oracle ingest byte-identical rows.
    fn random_basket(&mut self) -> Vec<u32> {
        let len = self.rng.range(1, 3);
        let mut basket: Vec<u32> = (0..len)
            .map(|_| self.rng.below(N_ITEMS as u64) as u32)
            .collect();
        basket.sort_unstable();
        basket.dedup();
        basket
    }

    /// The durable store currently serving slot 0 writes.
    fn slot0_store(&self) -> &Arc<DurableStore> {
        if self.follower0.role() == Role::Primary {
            &self.fstore0
        } else {
            &self.store0
        }
    }

    /// One ingest attempt through the coordinator, reconciled exactly:
    /// store-epoch deltas prove which routed sub-batches were applied,
    /// and an ack with a missing application is invariant 2's failure.
    fn do_ingest(&mut self) {
        let count = self.rng.range(4, 12);
        let baskets: Vec<Vec<u32>> = (0..count).map(|_| self.random_basket()).collect();
        let first_id = self.attempted;
        self.attempted += count;
        // The proxy torments the read path; acked writes go direct so
        // an applied-but-ack-corrupted write cannot masquerade as loss.
        let promoted = self.follower0.role() == Role::Primary;
        if !promoted {
            self.coordinator
                .reconnect_shard(0, &self.node0_addr.to_string());
        }
        let mut routed: [Vec<Vec<u32>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (offset, basket) in baskets.iter().enumerate() {
            let shard = self
                .coordinator
                .partitioner()
                .shard_of(first_id + offset as u64);
            routed[shard].push(basket.clone());
        }
        let slot_stores = [
            Arc::clone(self.slot0_store()),
            Arc::clone(&self.store1),
            Arc::clone(&self.store2),
        ];
        let before: Vec<u64> = slot_stores.iter().map(|s| s.epoch()).collect();
        let answer = drive(
            &self.coordinator,
            Request::Ingest {
                baskets: baskets.clone(),
            },
        );
        let acked = answer.is_ok();
        for (slot, routed) in routed.into_iter().enumerate() {
            let applied = slot_stores[slot].epoch() - before[slot];
            self.check(
                applied == 0 || applied == routed.len() as u64,
                "a shard applied a partial ingest batch",
            );
            if acked {
                self.check(
                    applied == routed.len() as u64,
                    "acked ingest was not applied on a shard",
                );
            }
            if applied > 0 {
                self.recorded[slot].extend(routed);
            }
        }
        if !promoted {
            self.coordinator
                .reconnect_shard(0, &self.proxy_addr.to_string());
            // Drain replication before the next chaotic read: a single
            // transport fault can legitimately promote the follower,
            // and promotion must never strand an acked basket behind
            // replication lag.
            self.await_slot0_sync();
        }
        self.sample_invariants();
    }

    /// One chi² query through the coordinator. Errors are tolerated
    /// (chaos is chaos); an accepted answer is validated bit-for-bit
    /// against the oracle at its own epoch-vector cut. Returns whether
    /// the query was answered.
    fn do_query(&mut self) -> bool {
        let a = self.rng.below(N_ITEMS as u64) as u32;
        let b = (a + 1 + self.rng.below(N_ITEMS as u64 - 1) as u32) % N_ITEMS as u32;
        let items = vec![a.min(b), a.max(b)];
        match drive(
            &self.coordinator,
            Request::Chi2 {
                items: items.clone(),
            },
        ) {
            Ok(answer) => {
                self.validate_answer(&items, &answer);
                self.sample_invariants();
                true
            }
            Err(_) => {
                self.sample_invariants();
                false
            }
        }
    }

    /// Invariant 1: rebuild a single-node store holding exactly the
    /// baskets at the answer's epoch-vector cut and compare f64 bits.
    fn validate_answer(&mut self, items: &[u32], answer: &Value) {
        let epochs: Vec<u64> = answer
            .get("epochs")
            .and_then(Value::as_array)
            .map(|rows| rows.iter().filter_map(Value::as_u64).collect())
            .unwrap_or_default();
        self.check(epochs.len() == 3, "answer is missing its epoch vector");
        for (slot, (&epoch, recorded)) in epochs.iter().zip(&self.recorded).enumerate() {
            assert!(
                epoch <= recorded.len() as u64,
                "invariant violated: shard {slot} answered at epoch {epoch} but only \
                 {} baskets were ever applied — replay with CHAOS_SEED={:#x}",
                recorded.len(),
                self.seed
            );
        }
        let cut = [epochs[0], epochs[1], epochs[2]];
        let key = (cut, items.to_vec());
        let (statistic, ln_p, support) = match self.oracle_cache.get(&key) {
            Some(&cached) => cached,
            None => {
                let oracle = self.oracle_at(cut, items);
                self.oracle_cache.insert(key, oracle);
                oracle
            }
        };
        let got_stat = answer.get("statistic").and_then(Value::as_f64);
        let got_ln_p = answer.get("ln_p_value").and_then(Value::as_f64);
        self.check(
            got_stat.map(f64::to_bits) == Some(statistic.to_bits()),
            "χ² statistic bits diverged from the single-node oracle",
        );
        self.check(
            got_ln_p.map(f64::to_bits) == Some(ln_p.to_bits()),
            "ln p-value bits diverged from the single-node oracle",
        );
        self.check(
            answer.get("support").and_then(Value::as_u64) == Some(support),
            "support diverged from the single-node oracle",
        );
        self.check(
            answer.get("epoch").and_then(Value::as_u64) == Some(cut.iter().sum()),
            "scalar epoch is not the epoch-vector sum",
        );
    }

    /// The oracle: one in-memory store over the applied prefixes named
    /// by the epoch vector, answering through the very engine a
    /// standalone server uses.
    fn oracle_at(&self, cut: [u64; 3], items: &[u32]) -> (f64, f64, u64) {
        let store = Arc::new(IncrementalStore::new(
            N_ITEMS,
            StoreConfig {
                segment_capacity: 64,
            },
        ));
        for (slot, &epoch) in cut.iter().enumerate() {
            for basket in &self.recorded[slot][..epoch as usize] {
                store
                    .append_ids(basket.iter().copied())
                    .expect("oracle ingest");
            }
        }
        let engine = QueryEngine::new(store, EngineConfig::default());
        let snap = engine.snapshot();
        let answer = engine
            .chi2(&snap, &Itemset::from_ids(items.iter().copied()))
            .unwrap_or_else(|e| {
                panic!(
                    "cluster answered but the oracle refused ({e}) — replay with \
                     CHAOS_SEED={:#x}",
                    self.seed
                )
            });
        (
            answer.outcome.statistic,
            answer.outcome.ln_p_value,
            answer.support,
        )
    }

    /// Blocks until the follower's store matches the primary's — the
    /// quiesce point before a controlled primary failure, so promotion
    /// can never strand acked baskets behind replication lag.
    fn await_slot0_sync(&self) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while self.fstore0.epoch() < self.store0.epoch() {
            assert!(
                Instant::now() < deadline,
                "follower never synced (epoch {} of {}) — replay with CHAOS_SEED={:#x}",
                self.fstore0.epoch(),
                self.store0.epoch(),
                self.seed
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// One full seeded schedule: chaotic reads over a healthy cluster, a
/// controlled primary failure (partition or kill), a promotion storm,
/// acked writes through the new primary, heal, fenced demotion of the
/// stale primary, catch-up, and a final full-cluster verification.
fn run_schedule(seed: u64) {
    let mut rng = Rng(seed);
    let chaos = {
        let mut config = ChaosConfig::new(rng.next());
        config.delay_per_mille = rng.range(50, 250) as u16;
        config.max_delay_us = 5_000;
        config.corrupt_per_mille = rng.range(0, 25) as u16;
        config.drop_per_mille = rng.range(0, 25) as u16;
        config.stall_per_mille = rng.range(0, 10) as u16;
        config.refuse_per_mille = rng.range(0, 30) as u16;
        config
    };

    let dirs: Vec<PathBuf> = ["p0", "f0", "p1", "p2"]
        .iter()
        .map(|tag| temp_dir(seed, tag))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let store0 = open_durable(&dirs[0]);
    let fstore0 = open_durable(&dirs[1]);
    let store1 = open_durable(&dirs[2]);
    let store2 = open_durable(&dirs[3]);

    let node0 = Arc::new(NodeService::primary(
        engine_over(&store0),
        Arc::clone(&store0),
        repl_tuning(String::new()),
        Arc::clone(&stop),
        Arc::new(ClusterMetrics::new()),
    ));
    let (node0_running, node0_addr) = bind_node(&node0);
    let follower0 = Arc::new(
        NodeService::follower(
            engine_over(&fstore0),
            Arc::clone(&fstore0),
            repl_tuning(node0_addr.to_string()),
            Arc::clone(&stop),
            Arc::new(ClusterMetrics::new()),
        )
        .expect("spawn follower"),
    );
    let (follower_running, follower_addr) = bind_node(&follower0);
    let node1 = Arc::new(NodeService::primary(
        engine_over(&store1),
        Arc::clone(&store1),
        repl_tuning(String::new()),
        Arc::clone(&stop),
        Arc::new(ClusterMetrics::new()),
    ));
    let (node1_running, node1_addr) = bind_node(&node1);
    let node2 = Arc::new(NodeService::primary(
        engine_over(&store2),
        Arc::clone(&store2),
        repl_tuning(String::new()),
        Arc::clone(&stop),
        Arc::new(ClusterMetrics::new()),
    ));
    let (node2_running, node2_addr) = bind_node(&node2);

    let mut proxy = ChaosProxy::spawn("127.0.0.1:0", &node0_addr.to_string(), None, chaos)
        .expect("spawn chaos proxy");
    let proxy_addr = proxy.local_addr();
    let mut node0_running = Some(node0_running);

    let mut config = CoordinatorConfig::new(N_ITEMS, std::iter::empty());
    config.shards = vec![
        ShardSpec::primary(proxy_addr.to_string()).with_follower(follower_addr.to_string()),
        ShardSpec::primary(node1_addr.to_string()),
        ShardSpec::primary(node2_addr.to_string()),
    ];
    config.retry = fast_retry();
    config.request_timeout = Duration::from_millis(500);
    config.probe_cooldown = Duration::from_millis(50);
    let coordinator = CoordinatorService::new(config);

    let mut torture = Torture {
        seed,
        coordinator,
        node0: Arc::clone(&node0),
        follower0: Arc::clone(&follower0),
        store0: Arc::clone(&store0),
        fstore0: Arc::clone(&fstore0),
        store1: Arc::clone(&store1),
        store2: Arc::clone(&store2),
        node0_addr,
        proxy_addr,
        recorded: [Vec::new(), Vec::new(), Vec::new()],
        attempted: 0,
        last_gens: [1, 1, 1, 1],
        oracle_cache: HashMap::new(),
        rng,
    };

    // Phase A: chaotic reads over a healthy cluster. Ingest lands and
    // queries run through the fault-injecting proxy; every answered
    // query is oracle-checked.
    for _ in 0..torture.rng.range(2, 4) {
        torture.do_ingest();
    }
    let mut answered = 0;
    for _ in 0..torture.rng.range(6, 12) {
        if torture.do_query() {
            answered += 1;
        }
    }
    // The storm below retries until answered, so zero here is fine —
    // but with benign-to-mild fault rates most schedules answer.
    let _ = answered;

    // Phase B: controlled primary failure. Quiesce + sync first so the
    // promotion cannot strand acked baskets, then cut shard 0 off. (A
    // phase-A fault may already have promoted the follower — then the
    // cut just hits a node that already lost its role.)
    torture.await_slot0_sync();
    let gen_before = fstore0.generation();
    let promoted_before_cut = follower0.role() == Role::Primary;
    let kill = torture.rng.next() & 1 == 0;
    if kill {
        node0_running
            .take()
            .expect("primary still bound")
            .stop()
            .expect("kill primary server");
    } else {
        proxy.partition();
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut answered_after_failover = false;
    while !(answered_after_failover && follower0.role() == Role::Primary) {
        assert!(
            Instant::now() < deadline,
            "cluster never recovered from the failover — replay with CHAOS_SEED={seed:#x}"
        );
        answered_after_failover = torture.do_query() || answered_after_failover;
        std::thread::sleep(Duration::from_millis(5));
    }
    if !promoted_before_cut {
        torture.check(
            fstore0.generation() == gen_before + 1,
            "promotion did not strictly bump the persisted generation",
        );
    }

    // Acked writes keep flowing through the promoted primary while the
    // old one is still partitioned or dead.
    for _ in 0..torture.rng.range(1, 2) {
        torture.do_ingest();
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    while !torture.do_query() {
        assert!(
            Instant::now() < deadline,
            "no answers through the promoted primary — replay with CHAOS_SEED={seed:#x}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Phase C: heal. A killed node comes back on a fresh port (the
    // proxy re-points); a partitioned one just gets connectivity back.
    // Either way it still believes it is primary at the old generation
    // — the coordinator must fence it down to follower.
    let healed_running = if kill {
        let (running, healed_addr) = bind_node(&node0);
        proxy.set_upstream(healed_addr.to_string());
        Some(running)
    } else {
        proxy.heal();
        None
    };
    let deadline = Instant::now() + Duration::from_secs(15);
    while node0.role() != Role::Follower {
        assert!(
            Instant::now() < deadline,
            "stale primary was never demoted — replay with CHAOS_SEED={seed:#x}"
        );
        let _ = drive(&torture.coordinator, Request::Stats);
        torture.sample_invariants();
        std::thread::sleep(Duration::from_millis(20));
    }
    torture.check(
        store0.generation() == fstore0.generation(),
        "demoted node did not adopt the promoted generation",
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    while store0.epoch() < torture.recorded[0].len() as u64 {
        assert!(
            Instant::now() < deadline,
            "demoted node never caught up (epoch {} of {}) — replay with CHAOS_SEED={seed:#x}",
            store0.epoch(),
            torture.recorded[0].len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Final verification: nothing acked was lost anywhere, and the
    // healed cluster still answers exactly like the oracle.
    torture.check(
        fstore0.epoch() == torture.recorded[0].len() as u64
            && store1.epoch() == torture.recorded[1].len() as u64
            && store2.epoch() == torture.recorded[2].len() as u64,
        "final store epochs do not match the applied record",
    );
    let deadline = Instant::now() + Duration::from_secs(15);
    while !torture.do_query() {
        assert!(
            Instant::now() < deadline,
            "healed cluster stopped answering — replay with CHAOS_SEED={seed:#x}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    torture.sample_invariants();

    stop.store(true, Ordering::Release);
    proxy.stop();
    if let Some(running) = healed_running {
        running.stop().expect("stop healed node");
    }
    if let Some(running) = node0_running {
        running.stop().expect("stop node0");
    }
    follower_running.stop().expect("stop follower");
    node1_running.stop().expect("stop node1");
    node2_running.stop().expect("stop node2");
    drop(torture);
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn seeded_fault_schedules_preserve_every_invariant() {
    for seed in schedule_seeds() {
        run_schedule(seed);
    }
}

/// The negative control: with fencing disabled (the `NodeService` test
/// hook plus `fencing: false` on the coordinator), the same partition →
/// promote → heal sequence ends with BOTH nodes of the pair claiming
/// the primary role at the same protocol-visible generation — the
/// split-brain the torture invariant exists to catch.
#[test]
fn unfenced_build_split_brains() {
    let seed = 0x5EED_u64;
    let dirs: Vec<PathBuf> = ["u-p0", "u-f0"]
        .iter()
        .map(|tag| temp_dir(seed, tag))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let store0 = open_durable(&dirs[0]);
    let fstore0 = open_durable(&dirs[1]);

    let node0 = Arc::new(
        NodeService::primary(
            engine_over(&store0),
            Arc::clone(&store0),
            repl_tuning(String::new()),
            Arc::clone(&stop),
            Arc::new(ClusterMetrics::new()),
        )
        .with_fencing_disabled(),
    );
    let (node0_running, node0_addr) = bind_node(&node0);
    let follower0 = Arc::new(
        NodeService::follower(
            engine_over(&fstore0),
            Arc::clone(&fstore0),
            repl_tuning(node0_addr.to_string()),
            Arc::clone(&stop),
            Arc::new(ClusterMetrics::new()),
        )
        .expect("spawn follower")
        .with_fencing_disabled(),
    );
    let (follower_running, follower_addr) = bind_node(&follower0);

    let mut proxy = ChaosProxy::spawn(
        "127.0.0.1:0",
        &node0_addr.to_string(),
        None,
        ChaosConfig::new(seed),
    )
    .expect("spawn chaos proxy");

    let mut config = CoordinatorConfig::new(N_ITEMS, std::iter::empty());
    config.shards =
        vec![ShardSpec::primary(proxy.local_addr().to_string())
            .with_follower(follower_addr.to_string())];
    config.retry = fast_retry();
    config.request_timeout = Duration::from_millis(500);
    config.probe_cooldown = Duration::from_millis(50);
    config.fencing = false;
    let coordinator = CoordinatorService::new(config);

    // Seed data, let the follower sync, then partition the primary and
    // storm until the coordinator promotes the follower.
    drive(
        &coordinator,
        Request::Ingest {
            baskets: vec![vec![0, 1], vec![1, 2], vec![0, 1], vec![0, 2]],
        },
    )
    .expect("seed ingest");
    let deadline = Instant::now() + Duration::from_secs(10);
    while fstore0.epoch() < store0.epoch() {
        assert!(Instant::now() < deadline, "follower never synced");
        std::thread::sleep(Duration::from_millis(2));
    }
    proxy.partition();
    let deadline = Instant::now() + Duration::from_secs(15);
    while follower0.role() != Role::Primary {
        assert!(Instant::now() < deadline, "follower was never promoted");
        let _ = drive(&coordinator, Request::Chi2 { items: vec![0, 1] });
        std::thread::sleep(Duration::from_millis(5));
    }

    // Heal the partition and give the coordinator every chance to fix
    // the split: without fencing it never demotes anything.
    proxy.heal();
    for _ in 0..10 {
        let _ = drive(&coordinator, Request::Stats);
        std::thread::sleep(Duration::from_millis(20));
    }

    // Both nodes answer as primary at the same visible generation (no
    // generations on the wire at all): the split-brain invariant the
    // fenced torture run proves can never happen.
    assert_eq!(node0.role(), Role::Primary, "old primary kept its role");
    assert_eq!(
        follower0.role(),
        Role::Primary,
        "promoted follower is primary"
    );
    assert_eq!(
        primaries_at_top_gen(&[&node0, &follower0]),
        2,
        "the unfenced build must exhibit the dual-primary violation"
    );

    stop.store(true, Ordering::Release);
    proxy.stop();
    node0_running.stop().expect("stop node0");
    follower_running.stop().expect("stop follower");
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

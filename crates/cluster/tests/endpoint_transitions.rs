//! Endpoint state transitions under an injectable clock: mark-down,
//! probe-cooldown rest, rejoin, and post-promotion demote pacing — all
//! driven by explicit [`TestClock::advance`] calls, no real sleeps in
//! the state machine itself.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bmb_basket::wal::{DurabilityConfig, DurableStore};
use bmb_basket::{FsDir, IncrementalStore, ItemId, StoreConfig};
use bmb_cluster::{
    ClusterMetrics, CoordinatorConfig, CoordinatorService, FollowerConfig, NodeService, Role,
    ShardSpec, TestClock,
};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::Value;
use bmb_serve::server::RunningServer;
use bmb_serve::{
    EngineService, Request, RetryPolicy, Server, ServerConfig, ServerMetrics, Service, ServiceCtx,
    ServiceFailure,
};

const N_ITEMS: usize = 8;
const COOLDOWN: Duration = Duration::from_secs(60);

/// Retry pacing tight enough that a dead endpoint fails fast.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

/// Dispatches one request through the coordinator's service face.
fn drive(coordinator: &CoordinatorService, request: Request) -> Result<Value, ServiceFailure> {
    let config = ServerConfig::default();
    let metrics = ServerMetrics::new();
    let ctx = ServiceCtx {
        start: Instant::now(),
        config: &config,
        metrics: &metrics,
        generation: None,
    };
    coordinator.dispatch(request, &ctx)
}

/// The first (only) shard's health row out of a stats response.
fn shard_row(coordinator: &CoordinatorService) -> Value {
    let stats = drive(coordinator, Request::Stats).expect("stats");
    stats
        .get("shards")
        .and_then(Value::as_array)
        .and_then(<[Value]>::first)
        .cloned()
        .expect("one shard row")
}

fn counter(coordinator: &CoordinatorService, name: &str) -> u64 {
    coordinator
        .metrics()
        .registry()
        .snapshot()
        .counter_value(name, &[])
}

/// A plain in-memory shard server with no follower and no generations.
fn spawn_plain_shard() -> (RunningServer, SocketAddr) {
    let store = Arc::new(IncrementalStore::new(
        N_ITEMS,
        StoreConfig {
            segment_capacity: 16,
        },
    ));
    store.append_ids([0u32, 1]).expect("seed basket");
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
    let server = Server::bind(engine, ServerConfig::default()).expect("bind shard");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

#[test]
fn markdown_rests_for_the_cooldown_then_rejoins() {
    let (running, addr) = spawn_plain_shard();
    let clock = Arc::new(TestClock::new());
    let mut config = CoordinatorConfig::new(N_ITEMS, [addr.to_string()]);
    config.retry = fast_retry();
    config.probe_cooldown = COOLDOWN;
    let coordinator = CoordinatorService::new(config).with_clock(Arc::clone(&clock) as _);

    // Healthy: the row reports up with a clean failure ledger.
    let row = shard_row(&coordinator);
    assert_eq!(row.get("up").and_then(Value::as_bool), Some(true));
    assert_eq!(
        row.get("consecutive_failures").and_then(Value::as_u64),
        Some(0)
    );
    assert!(matches!(row.get("last_error"), Some(Value::Null)));

    // Kill the shard: the next probe marks it down and records why.
    running.stop().expect("stop shard");
    let row = shard_row(&coordinator);
    assert_eq!(row.get("up").and_then(Value::as_bool), Some(false));
    assert_eq!(
        row.get("consecutive_failures").and_then(Value::as_u64),
        Some(1)
    );
    assert!(row.get("last_error").and_then(Value::as_str).is_some());
    assert_eq!(
        counter(&coordinator, "bmb_cluster_shard_markdowns_total"),
        1
    );

    // Inside the cooldown the endpoint rests: no probe is even sent
    // (the fan-out counter stands still), and the ledger is frozen.
    let fanout_before = counter(&coordinator, "bmb_cluster_fanout_requests_total");
    let row = shard_row(&coordinator);
    assert_eq!(row.get("up").and_then(Value::as_bool), Some(false));
    assert_eq!(
        row.get("consecutive_failures").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(
        counter(&coordinator, "bmb_cluster_fanout_requests_total"),
        fanout_before,
        "a resting endpoint must not be probed"
    );
    assert_eq!(
        counter(&coordinator, "bmb_cluster_shard_markdowns_total"),
        1
    );

    // Past the cooldown the probe goes out again; the shard is still
    // dead, so the failure count grows but no second markdown fires.
    clock.advance(COOLDOWN + Duration::from_secs(1));
    let row = shard_row(&coordinator);
    assert_eq!(row.get("up").and_then(Value::as_bool), Some(false));
    assert_eq!(
        row.get("consecutive_failures").and_then(Value::as_u64),
        Some(2)
    );
    assert_eq!(
        counter(&coordinator, "bmb_cluster_shard_markdowns_total"),
        1
    );
    assert_eq!(counter(&coordinator, "bmb_cluster_shard_rejoins_total"), 0);

    // Revive the shard on a fresh port, re-point the endpoint, and the
    // next probe rejoins it: ledger reset, rejoin counted exactly once.
    let (revived, new_addr) = spawn_plain_shard();
    coordinator.reconnect_shard(0, &new_addr.to_string());
    let row = shard_row(&coordinator);
    assert_eq!(row.get("up").and_then(Value::as_bool), Some(true));
    assert_eq!(
        row.get("consecutive_failures").and_then(Value::as_u64),
        Some(0)
    );
    assert!(matches!(row.get("last_error"), Some(Value::Null)));
    assert_eq!(counter(&coordinator, "bmb_cluster_shard_rejoins_total"), 1);
    let row = shard_row(&coordinator);
    assert_eq!(row.get("up").and_then(Value::as_bool), Some(true));
    assert_eq!(counter(&coordinator, "bmb_cluster_shard_rejoins_total"), 1);

    revived.stop().expect("stop revived shard");
}

// ---- promotion + paced demotion over durable fenced nodes ---------------

fn temp_dir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("bmb-endpoint-trans-{pid}-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &PathBuf) -> Arc<DurableStore> {
    let fs = FsDir::open(dir).expect("open dir");
    let (durable, _report) = DurableStore::open_dir(
        Box::new(fs),
        N_ITEMS,
        StoreConfig {
            segment_capacity: 8,
        },
        DurabilityConfig {
            segment_bytes: 512,
            retain_checkpoints: 2,
        },
    )
    .expect("open durable store");
    Arc::new(durable)
}

fn engine_over(durable: &Arc<DurableStore>) -> EngineService {
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(durable.store()),
        EngineConfig::default(),
    ));
    EngineService::new(engine).with_durable(Arc::clone(durable))
}

fn bind_node(node: &Arc<NodeService>) -> (RunningServer, SocketAddr) {
    let server = Server::bind_service(
        Arc::clone(node) as Arc<dyn Service>,
        ServerConfig::default(),
    )
    .expect("bind node");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

#[test]
fn promotion_then_demote_probe_paced_by_the_cooldown() {
    let primary_dir = temp_dir("primary");
    let follower_dir = temp_dir("follower");
    let stop = Arc::new(AtomicBool::new(false));

    // A durable primary with a little data, and a follower tailing it.
    let primary_store = open_durable(&primary_dir);
    primary_store
        .append_batch((0..50u32).map(|i| vec![ItemId(i % 4), ItemId(4 + i % 3)]))
        .expect("seed primary");
    let primary_node = Arc::new(NodeService::primary(
        engine_over(&primary_store),
        Arc::clone(&primary_store),
        {
            let mut template = FollowerConfig::new(String::new());
            template.poll_interval = Duration::from_millis(5);
            template.error_backoff = Duration::from_millis(20);
            template.retry = fast_retry();
            template
        },
        Arc::clone(&stop),
        Arc::new(ClusterMetrics::new()),
    ));
    let (primary_running, primary_addr) = bind_node(&primary_node);

    let follower_store = open_durable(&follower_dir);
    let follower_node = Arc::new(
        NodeService::follower(
            engine_over(&follower_store),
            Arc::clone(&follower_store),
            {
                let mut config = FollowerConfig::new(primary_addr.to_string());
                config.poll_interval = Duration::from_millis(5);
                config.error_backoff = Duration::from_millis(20);
                config.retry = fast_retry();
                config
            },
            Arc::clone(&stop),
            Arc::new(ClusterMetrics::new()),
        )
        .expect("spawn follower"),
    );
    let (follower_running, follower_addr) = bind_node(&follower_node);
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower_store.epoch() < 50 {
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }

    let clock = Arc::new(TestClock::new());
    let mut config = CoordinatorConfig::new(N_ITEMS, std::iter::empty());
    config.shards =
        vec![ShardSpec::primary(primary_addr.to_string()).with_follower(follower_addr.to_string())];
    config.retry = fast_retry();
    config.probe_cooldown = COOLDOWN;
    let coordinator = CoordinatorService::new(config).with_clock(Arc::clone(&clock) as _);

    // Startup reconciliation adopts the shards' generation (both at 1).
    let row = shard_row(&coordinator);
    assert_eq!(row.get("up").and_then(Value::as_bool), Some(true));
    assert_eq!(row.get("promoted").and_then(Value::as_bool), Some(false));
    assert_eq!(row.get("generation").and_then(Value::as_u64), Some(1));

    // Primary dies: mark-down, promotion at a bumped generation — but
    // the demote probe is NOT due yet (the pacing timer just started).
    primary_running.stop().expect("stop primary");
    let row = shard_row(&coordinator);
    assert_eq!(
        row.get("up").and_then(Value::as_bool),
        Some(true),
        "reads follow the promoted node"
    );
    assert_eq!(row.get("promoted").and_then(Value::as_bool), Some(true));
    assert_eq!(row.get("generation").and_then(Value::as_u64), Some(2));
    assert_eq!(counter(&coordinator, "bmb_cluster_promotions_total"), 1);
    assert_eq!(counter(&coordinator, "bmb_cluster_demotions_total"), 0);
    assert_eq!(follower_node.role(), Role::Primary);

    // The old primary heals on a new port — still at generation 1 and
    // still believing it is primary. Within the cooldown nothing is
    // sent to it, so it keeps that belief.
    let (healed_running, healed_addr) = bind_node(&primary_node);
    coordinator.reconnect_shard(0, &healed_addr.to_string());
    let _ = shard_row(&coordinator);
    assert_eq!(
        primary_node.role(),
        Role::Primary,
        "demote must wait out the cooldown"
    );
    assert_eq!(counter(&coordinator, "bmb_cluster_demotions_total"), 0);

    // Once the cooldown lapses the demote goes out: the healed node
    // adopts the promoted generation, flips to follower, and starts
    // tailing the new primary.
    clock.advance(COOLDOWN + Duration::from_secs(1));
    let _ = shard_row(&coordinator);
    assert_eq!(counter(&coordinator, "bmb_cluster_demotions_total"), 1);
    assert_eq!(primary_node.role(), Role::Follower);
    assert_eq!(primary_node.current_generation(), 2);

    // Ingest lands on the promoted node and replicates back to the
    // demoted one — the replication direction has reversed.
    let answer = drive(
        &coordinator,
        Request::Ingest {
            baskets: vec![vec![0, 1]],
        },
    )
    .expect("ingest via promoted node");
    assert_eq!(answer.get("ingested").and_then(Value::as_u64), Some(1));
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary_store.epoch() < 51 {
        assert!(
            Instant::now() < deadline,
            "demoted node never caught up (epoch {})",
            primary_store.epoch()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The demote is acked once; no re-probe after the next cooldown.
    clock.advance(COOLDOWN + Duration::from_secs(1));
    let _ = shard_row(&coordinator);
    assert_eq!(counter(&coordinator, "bmb_cluster_demotions_total"), 1);

    stop.store(true, Ordering::Release);
    healed_running.stop().expect("stop healed node");
    follower_running.stop().expect("stop follower");
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

//! Cluster observability end to end: a client-supplied trace id
//! propagated through a live coordinator yields a span tree covering
//! coordinator and every shard; the coordinator's `metrics` command
//! federates each node's exposition under `node=`/`shard=` labels; and
//! a node's persisted event ledger records a demote→promote failover
//! in generation order.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use bmb_basket::{DurabilityConfig, DurableStore, FsDir, IncrementalStore, StoreConfig};
use bmb_cluster::{ClusterMetrics, CoordinatorConfig, CoordinatorService, FollowerConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::{parse, Value};
use bmb_serve::server::RunningServer;
use bmb_serve::{Client, EngineService, Server, ServerConfig, Service};

const N_ITEMS: usize = 8;

/// One in-memory shard server, role-stamped so its spans name the
/// shard coordinate.
fn spawn_shard(index: i64) -> (RunningServer, std::net::SocketAddr) {
    let store = Arc::new(IncrementalStore::new(
        N_ITEMS,
        StoreConfig {
            segment_capacity: 16,
        },
    ));
    for basket in [&[0u32, 1][..], &[0, 1, 2], &[2, 3], &[0, 1]] {
        store.append_ids(basket.iter().copied()).expect("in range");
    }
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
    let server = Server::bind(
        engine,
        ServerConfig {
            node_role: "shard".to_string(),
            shard_index: Some(index),
            ..ServerConfig::default()
        },
    )
    .expect("bind shard");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

/// Two shards behind a role-stamped coordinator.
fn spawn_cluster() -> (Vec<RunningServer>, RunningServer, std::net::SocketAddr) {
    let (s0, a0) = spawn_shard(0);
    let (s1, a1) = spawn_shard(1);
    let coordinator = Arc::new(CoordinatorService::new(CoordinatorConfig::new(
        N_ITEMS,
        vec![a0.to_string(), a1.to_string()],
    )));
    let service: Arc<dyn Service> = coordinator as Arc<dyn Service>;
    let server = Server::bind_service(
        service,
        ServerConfig {
            node_role: "coordinator".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("bind coordinator");
    let addr = server.local_addr();
    (vec![s0, s1], server.spawn(), addr)
}

#[test]
fn coordinator_trace_tree_spans_coordinator_and_every_shard() {
    let (shards, coordinator, addr) = spawn_cluster();
    let mut client = Client::connect(addr).expect("connect coordinator");

    let response = client
        .request_line(r#"{"cmd":"chi2","items":[0,1],"trace":"00000000000000cc"}"#)
        .expect("traced query");
    assert_eq!(
        parse(&response)
            .expect("response json")
            .get("trace")
            .and_then(Value::as_str),
        Some("00000000000000cc"),
        "the coordinator adopts the client's trace id"
    );

    let tree = client
        .request(&parse(r#"{"cmd":"trace","trace":"00000000000000cc"}"#).expect("req"))
        .expect("trace lookup");
    let spans = tree
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans array")
        .to_vec();
    let named = |name: &str| -> Vec<&Value> {
        spans
            .iter()
            .filter(|s| s.get("name").and_then(Value::as_str) == Some(name))
            .collect()
    };

    // The coordinator's own server span is the single root.
    let roots = named("serve:chi2");
    assert_eq!(roots.len(), 1, "one coordinator server span: {tree}");
    assert_eq!(
        roots[0].get("node").and_then(Value::as_str),
        Some("coordinator")
    );
    assert!(roots[0].get("parent").is_none(), "root span has no parent");
    let root_id = roots[0]
        .get("span")
        .and_then(Value::as_str)
        .expect("root span id");

    // One client-side rpc span per shard, parented under the root.
    let rpcs = named("rpc:support_vec");
    assert_eq!(rpcs.len(), 2, "one rpc span per shard: {tree}");
    let mut rpc_shards: Vec<i64> = rpcs
        .iter()
        .filter_map(|s| s.get("shard").and_then(Value::as_i64))
        .collect();
    rpc_shards.sort_unstable();
    assert_eq!(rpc_shards, vec![0, 1]);
    for rpc in &rpcs {
        assert_eq!(rpc.get("parent").and_then(Value::as_str), Some(root_id));
    }

    // Each shard recorded its own server span under the rpc that hit it.
    let rpc_ids: HashSet<&str> = rpcs
        .iter()
        .filter_map(|s| s.get("span").and_then(Value::as_str))
        .collect();
    let shard_spans = named("serve:support_vec");
    assert_eq!(shard_spans.len(), 2, "one server span per shard: {tree}");
    let mut shard_indices: Vec<i64> = Vec::new();
    for span in &shard_spans {
        assert_eq!(span.get("node").and_then(Value::as_str), Some("shard"));
        shard_indices.push(
            span.get("shard")
                .and_then(Value::as_i64)
                .expect("shard coordinate"),
        );
        let parent = span
            .get("parent")
            .and_then(Value::as_str)
            .expect("shard span parented under the rpc span");
        assert!(rpc_ids.contains(parent), "parent is an rpc span: {span}");
    }
    shard_indices.sort_unstable();
    assert_eq!(shard_indices, vec![0, 1]);

    // The acceptance bar: spans recorded by >= 3 distinct node identities.
    let identities: HashSet<(String, i64)> = spans
        .iter()
        .map(|s| {
            (
                s.get("node")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                s.get("shard").and_then(Value::as_i64).unwrap_or(-1),
            )
        })
        .collect();
    assert!(
        identities.len() >= 3,
        "trace tree must span >= 3 nodes, got {identities:?}"
    );

    coordinator.stop().expect("stop coordinator");
    for s in shards {
        s.stop().expect("stop shard");
    }
}

#[test]
fn federated_metrics_carry_node_labels_and_cluster_rollups() {
    let (shards, coordinator, addr) = spawn_cluster();
    let mut client = Client::connect(addr).expect("connect coordinator");
    client
        .request(&parse(r#"{"cmd":"chi2","items":[0,1]}"#).expect("req"))
        .expect("warm every shard");

    let metrics = client
        .request(&parse(r#"{"cmd":"metrics"}"#).expect("req"))
        .expect("federated metrics");
    let text = metrics
        .get("text")
        .and_then(Value::as_str)
        .expect("text payload");

    for needle in [
        r#"node="coordinator""#,
        r#"node="shard0",shard="0""#,
        r#"node="shard1",shard="1""#,
        "bmb_cluster_fed_epoch_skew",
        r#"bmb_cluster_fed_shard_p99_us{shard="0"}"#,
        r#"bmb_cluster_fed_shard_p99_us{shard="1"}"#,
    ] {
        assert!(
            text.contains(needle),
            "federation missing {needle}:\n{text}"
        );
    }
    // Every sample line is labeled with its origin node — no family is
    // re-exposed bare except the synthesized rollups.
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() || line.starts_with("bmb_cluster_fed_") {
            continue;
        }
        assert!(
            line.contains(r#"node=""#),
            "unlabeled federated sample: {line}"
        );
    }

    coordinator.stop().expect("stop coordinator");
    for s in shards {
        s.stop().expect("stop shard");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("bmb_obs_cluster_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).expect("create temp dir");
    path
}

/// A durable generation-fenced node over its own temp dir.
fn spawn_node(dir: &PathBuf) -> (RunningServer, std::net::SocketAddr, Arc<AtomicBool>) {
    let fs = FsDir::open(dir).expect("open node dir");
    let (durable, _) = DurableStore::open_dir(
        Box::new(fs),
        N_ITEMS,
        StoreConfig {
            segment_capacity: 16,
        },
        DurabilityConfig::default(),
    )
    .expect("open durable store");
    let durable = Arc::new(durable);
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(durable.store()),
        EngineConfig::default(),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let node = bmb_cluster::NodeService::primary(
        EngineService::new(engine).with_durable(Arc::clone(&durable)),
        Arc::clone(&durable),
        FollowerConfig::new(String::new()),
        Arc::clone(&stop),
        Arc::new(ClusterMetrics::new()),
    );
    let service: Arc<dyn Service> = Arc::new(node) as Arc<dyn Service>;
    let server = Server::bind_service(service, ServerConfig::default()).expect("bind node");
    let addr = server.local_addr();
    (server.spawn(), addr, stop)
}

#[test]
fn event_ledger_records_failover_in_generation_order() {
    let dir_a = temp_dir("node_a");
    let dir_b = temp_dir("node_b");
    let ledger_path = dir_a.join("events.jsonl");
    let ledger = Arc::new(bmb_obs::EventLedger::open(&ledger_path, 256).expect("open ledger"));
    bmb_obs::events().attach_ledger(Arc::clone(&ledger));

    let (node_a, addr_a, stop_a) = spawn_node(&dir_a);
    let (node_b, addr_b, stop_b) = spawn_node(&dir_b);

    // Seeded failover: fence node A down to a follower of B at
    // generation 3, then promote it back (generation bumps to 4).
    let mut client = Client::connect(addr_a).expect("connect node A");
    client
        .request(
            &Value::object()
                .with("cmd", Value::Str("demote".to_string()))
                .with("primary", Value::Str(addr_b.to_string()))
                .with("gen", Value::Int(3)),
        )
        .expect("demote A under B");
    client
        .request(&parse(r#"{"cmd":"promote","gen":3}"#).expect("req"))
        .expect("promote A back");

    bmb_obs::events().detach_ledger();
    let lines = ledger.read_lines();
    let failovers: Vec<(usize, &str, u64)> = lines
        .iter()
        .enumerate()
        .filter_map(|(i, line)| {
            let value = parse(line).ok()?;
            let msg = value.get("msg").and_then(Value::as_str)?;
            let kind = match msg {
                "node demoted to follower" => "demote",
                "follower promoted" => "promote",
                _ => return None,
            };
            let generation: u64 = value
                .get("generation")
                .and_then(Value::as_str)?
                .parse()
                .ok()?;
            Some((i, kind, generation))
        })
        .collect();

    let demote = failovers
        .iter()
        .find(|(_, kind, _)| *kind == "demote")
        .expect("ledger holds the demotion");
    let promote = failovers
        .iter()
        .find(|(_, kind, _)| *kind == "promote")
        .expect("ledger holds the promotion");
    assert!(
        demote.0 < promote.0,
        "demotion must be ledgered before the promotion: {failovers:?}"
    );
    assert_eq!(demote.2, 3, "demotion fenced to the requested floor");
    assert_eq!(promote.2, 4, "promotion bumps past the fenced generation");
    assert!(
        demote.2 < promote.2,
        "generations in the ledger are monotone across a failover"
    );

    stop_a.store(true, std::sync::atomic::Ordering::Release);
    stop_b.store(true, std::sync::atomic::Ordering::Release);
    node_a.stop().expect("stop node A");
    node_b.stop().expect("stop node B");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

//! Cluster crash harness: SIGKILL one shard mid-query-storm and prove
//! the coordinator's degradation contract.
//!
//! Three real `shard_harness` processes (durable, checkpointed stores)
//! sit behind an in-process coordinator serving real TCP. A storm
//! thread fires chi-squared queries continuously while one shard is
//! `kill(9)`ed. The contract:
//!
//! * every **successful** response during and after the outage is
//!   byte-identical to the pre-kill baseline (stripped of its trace
//!   id) — a degraded coordinator may refuse, but it must never be
//!   *wrong*, and with no concurrent ingest the epoch vector never
//!   moves;
//! * every failure is a **retryable** error — no permanent errors, no
//!   torn answers;
//! * the revived shard (same directory, fresh port) recovers to
//!   exactly the epoch it acked before the kill, and after
//!   [`CoordinatorService::reconnect_shard`] plus one probe cooldown
//!   the coordinator **rejoins** it and answers successfully again.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bmb_cluster::{CoordinatorConfig, CoordinatorService};
use bmb_serve::json::{parse, Value};
use bmb_serve::{Client, RetryPolicy, Server, ServerConfig, Service};

const N_ITEMS: usize = 12;
const SEGMENT_BYTES: u64 = 512;
const CHECKPOINT_EVERY: u64 = 16;
const N_SHARDS: usize = 3;
const N_BASKETS: u64 = 150;
const KILL_INDEX: usize = 1;

fn scratch_dir(shard: usize) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("bmb-cluster-kill-{pid}-{shard}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic basket for global append index `i` (same shape the
/// serve crash test uses).
fn basket(i: u64) -> Vec<i64> {
    let a = i % N_ITEMS as u64;
    let b = (i * 7 + 3) % N_ITEMS as u64;
    if a == b {
        vec![a as i64]
    } else {
        vec![a as i64, b as i64]
    }
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

struct Shard {
    child: KillOnDrop,
    addr: SocketAddr,
    recovered_epoch: u64,
}

fn spawn_shard(dir: &Path) -> Shard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_shard_harness"))
        .arg(dir)
        .arg(N_ITEMS.to_string())
        .arg(SEGMENT_BYTES.to_string())
        .arg(CHECKPOINT_EVERY.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard_harness");
    let stdout = child.stdout.take().expect("piped stdout");
    let child = KillOnDrop(child);
    let mut lines = BufReader::new(stdout).lines();
    let addr: SocketAddr = lines
        .next()
        .expect("ADDR line")
        .expect("read shard stdout")
        .strip_prefix("ADDR ")
        .expect("ADDR prefix")
        .parse()
        .expect("shard address");
    let recovered_epoch: u64 = lines
        .next()
        .expect("RECOVERED line")
        .expect("read shard stdout")
        .strip_prefix("RECOVERED ")
        .expect("RECOVERED prefix")
        .split(' ')
        .next()
        .expect("epoch field")
        .parse()
        .expect("epoch number");
    Shard {
        child,
        addr,
        recovered_epoch,
    }
}

/// The storm's probe queries — fixed ids so response lines are stable.
fn probes() -> Vec<String> {
    (0..6)
        .map(|i| {
            let a = i * 2;
            let b = (i * 2 + 3) % N_ITEMS;
            format!(r#"{{"id":{i},"cmd":"chi2","items":[{a},{b}]}}"#)
        })
        .collect()
}

/// Strips the per-request trace id; everything else must be stable.
fn stripped(line: &str) -> String {
    let Value::Object(pairs) = parse(line).expect("response JSON") else {
        panic!("response is not an object: {line}");
    };
    Value::Object(pairs.into_iter().filter(|(k, _)| k != "trace").collect()).to_string()
}

#[test]
fn sigkill_one_shard_degrades_gracefully_and_rejoins() {
    // --- cluster up: three durable shard processes + coordinator ---
    let dirs: Vec<PathBuf> = (0..N_SHARDS).map(scratch_dir).collect();
    let mut shards: Vec<Shard> = dirs.iter().map(|d| spawn_shard(d)).collect();
    for shard in &shards {
        assert_eq!(shard.recovered_epoch, 0, "fresh dirs start at epoch 0");
    }

    let mut config = CoordinatorConfig::new(N_ITEMS, shards.iter().map(|s| s.addr.to_string()));
    // Fast failure detection so the storm cycles through markdown,
    // degraded service, and rejoin within a second or two.
    config.retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        ..RetryPolicy::default()
    };
    config.probe_cooldown = Duration::from_millis(150);
    let coordinator = Arc::new(CoordinatorService::new(config));
    let coord_server = Server::bind_service(
        Arc::clone(&coordinator) as Arc<dyn Service>,
        ServerConfig::default(),
    )
    .expect("bind coordinator");
    let coord_addr = coord_server.local_addr();
    let coord_running = coord_server.spawn();

    // --- ingest a fixed workload through the coordinator ---
    let mut client = Client::connect(coord_addr).expect("connect coordinator");
    for chunk in (0..N_BASKETS).collect::<Vec<u64>>().chunks(25) {
        let rows: Vec<Value> = chunk
            .iter()
            .map(|&i| Value::Array(basket(i).into_iter().map(Value::Int).collect()))
            .collect();
        let request = Value::object()
            .with("cmd", Value::Str("ingest".to_string()))
            .with("baskets", Value::Array(rows));
        client.request(&request).expect("cluster ingest");
    }

    // Per-shard epochs at the stable cut, for the recovery check.
    let support_req = r#"{"id":99,"cmd":"support_vec","itemsets":[]}"#.to_string();
    let cut = parse(&client.request_line(&support_req).expect("support_vec")).expect("JSON");
    let epochs: Vec<u64> = cut
        .get("result")
        .and_then(|r| r.get("epochs"))
        .and_then(Value::as_array)
        .expect("epochs vector")
        .iter()
        .map(|e| e.as_u64().expect("epoch"))
        .collect();
    assert_eq!(epochs.iter().sum::<u64>(), N_BASKETS);
    let killed_epoch = epochs[KILL_INDEX];
    assert!(killed_epoch > 0, "the killed shard must own some baskets");

    // --- pre-kill baseline: the only correct answers ---
    let baseline: Vec<String> = probes()
        .iter()
        .map(|line| stripped(&client.request_line(line).expect("baseline")))
        .collect();

    // --- the storm ---
    let stop = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicU64::new(0));
    let retryable_failures = Arc::new(AtomicU64::new(0));
    let storm = {
        let stop = Arc::clone(&stop);
        let successes = Arc::clone(&successes);
        let retryable_failures = Arc::clone(&retryable_failures);
        let baseline = baseline.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(coord_addr).expect("storm connect");
            let probes = probes();
            while !stop.load(Ordering::Acquire) {
                for (probe, expected) in probes.iter().zip(&baseline) {
                    match client.request_line(probe) {
                        Ok(line) => {
                            let value = parse(&line).expect("response JSON");
                            if value.get("ok").and_then(Value::as_bool) == Some(true) {
                                assert_eq!(
                                    &stripped(&line),
                                    expected,
                                    "a successful answer diverged from the pre-kill baseline"
                                );
                                successes.fetch_add(1, Ordering::AcqRel);
                            } else {
                                // The coordinator must never emit a permanent
                                // error for a valid query, outage or not.
                                assert_eq!(
                                    value.get("retryable").and_then(Value::as_bool),
                                    Some(true),
                                    "permanent error during outage: {line}"
                                );
                                retryable_failures.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                        Err(_) => {
                            // Transport failure: the storm's own connection
                            // died with the in-flight request — reconnect.
                            retryable_failures.fetch_add(1, Ordering::AcqRel);
                            client = loop {
                                match Client::connect(coord_addr) {
                                    Ok(c) => break c,
                                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                                }
                            };
                        }
                    }
                }
            }
        })
    };

    // Let the storm establish a healthy rhythm.
    let healthy_start = Instant::now();
    while successes.load(Ordering::Acquire) < 20 {
        assert!(
            healthy_start.elapsed() < Duration::from_secs(20),
            "storm made no progress against the healthy cluster"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // --- SIGKILL mid-storm ---
    shards[KILL_INDEX].child.0.kill().expect("SIGKILL shard");
    shards[KILL_INDEX].child.0.wait().expect("reap shard");

    // Degradation must surface as retryable failures, storm still alive.
    let outage_start = Instant::now();
    while retryable_failures.load(Ordering::Acquire) < 3 {
        assert!(
            outage_start.elapsed() < Duration::from_secs(20),
            "coordinator never surfaced the outage as retryable errors"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // --- revive on a fresh port, re-point the coordinator ---
    let revived = spawn_shard(&dirs[KILL_INDEX]);
    assert_eq!(
        revived.recovered_epoch, killed_epoch,
        "revived shard must recover every basket it acked before the kill"
    );
    coordinator.reconnect_shard(KILL_INDEX, &revived.addr.to_string());
    shards[KILL_INDEX] = revived;

    // The storm must return to fully successful service: wait for a
    // stretch of successes with no new failures (rejoin completed).
    let rejoin_start = Instant::now();
    loop {
        assert!(
            rejoin_start.elapsed() < Duration::from_secs(30),
            "coordinator never rejoined the revived shard"
        );
        let f0 = retryable_failures.load(Ordering::Acquire);
        let s0 = successes.load(Ordering::Acquire);
        std::thread::sleep(Duration::from_millis(200));
        let f1 = retryable_failures.load(Ordering::Acquire);
        let s1 = successes.load(Ordering::Acquire);
        if f1 == f0 && s1 >= s0 + 6 {
            break;
        }
    }

    stop.store(true, Ordering::Release);
    storm.join().expect("storm thread (no wrong answers)");

    // Health transitions were metered.
    let snap = coordinator.metrics().registry().snapshot();
    assert!(snap.counter_value("bmb_cluster_shard_markdowns_total", &[]) >= 1);
    assert!(snap.counter_value("bmb_cluster_shard_rejoins_total", &[]) >= 1);
    assert_eq!(snap.counter_value("bmb_cluster_promotions_total", &[]), 0);

    // One last full pass on a fresh connection: every answer is the
    // baseline again, at the same epoch vector.
    let mut client = Client::connect(coord_addr).expect("reconnect");
    for (probe, expected) in probes().iter().zip(&baseline) {
        assert_eq!(
            &stripped(&client.request_line(probe).expect("post-rejoin answer")),
            expected
        );
    }
    let after = parse(&client.request_line(&support_req).expect("support_vec")).expect("JSON");
    let after_epochs: Vec<u64> = after
        .get("result")
        .and_then(|r| r.get("epochs"))
        .and_then(Value::as_array)
        .expect("epochs vector")
        .iter()
        .map(|e| e.as_u64().expect("epoch"))
        .collect();
    assert_eq!(
        after_epochs, epochs,
        "the epoch vector moved without ingest"
    );

    coord_running.stop().expect("stop coordinator");
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

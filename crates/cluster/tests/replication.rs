//! WAL-shipping replication and generation-fenced promotion, over real
//! TCP.
//!
//! A durable primary ingests a workload; a follower node tails its WAL
//! via `replicate_pull` until the lag gauge reads zero; then the
//! primary is stopped and a coordinator (configured with the follower)
//! must mark the primary down, promote the follower at a bumped
//! durable generation, and keep answering reads — with the same bits a
//! local engine over the same baskets produces. The promoted follower
//! is the shard's primary at the new generation, so acked ingest keeps
//! working through the failover.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bmb_basket::wal::{DurabilityConfig, DurableStore};
use bmb_basket::{FsDir, ItemId, Itemset, StoreConfig};
use bmb_cluster::{
    ClusterMetrics, CoordinatorConfig, CoordinatorService, FollowerConfig, NodeService, Role,
    ShardSpec,
};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::Value;
use bmb_serve::server::RunningServer;
use bmb_serve::{Client, EngineService, Server, ServerConfig, Service};

const N_ITEMS: usize = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("bmb-cluster-repl-{pid}-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &PathBuf) -> Arc<DurableStore> {
    let fs = FsDir::open(dir).expect("open dir");
    let (durable, _report) = DurableStore::open_dir(
        Box::new(fs),
        N_ITEMS,
        StoreConfig {
            segment_capacity: 8,
        },
        DurabilityConfig {
            segment_bytes: 512,
            retain_checkpoints: 2,
        },
    )
    .expect("open durable store");
    Arc::new(durable)
}

fn serve_durable(durable: &Arc<DurableStore>) -> (RunningServer, SocketAddr) {
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(durable.store()),
        EngineConfig::default(),
    ));
    let server = Server::bind(engine, ServerConfig::default())
        .expect("bind")
        .with_durable_store(Arc::clone(durable));
    let addr = server.local_addr();
    (server.spawn(), addr)
}

/// A deterministic little workload with real pair structure.
fn workload() -> Vec<Vec<ItemId>> {
    (0..200u32)
        .map(|i| {
            let mut basket = vec![ItemId(i % 7)];
            if i % 3 == 0 {
                basket.push(ItemId(7 + (i % 5)));
            }
            if i % 4 == 0 {
                basket.push(ItemId(12));
                basket.push(ItemId(13));
            }
            basket.sort_unstable();
            basket.dedup();
            basket
        })
        .collect()
}

#[test]
fn follower_replicates_promotes_and_serves_reads() {
    let primary_dir = temp_dir("primary");
    let follower_dir = temp_dir("follower");

    // Primary with the workload already durable.
    let primary = open_durable(&primary_dir);
    let baskets = workload();
    primary.append_batch(baskets.clone()).expect("ingest");
    let primary_epoch = primary.epoch();
    assert_eq!(primary_epoch, baskets.len() as u64);
    let (primary_running, primary_addr) = serve_durable(&primary);

    // Follower node: warm standby whose replication loop starts with it.
    let standby = open_durable(&follower_dir);
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ClusterMetrics::new());
    let follower_engine = Arc::new(QueryEngine::new(
        Arc::clone(standby.store()),
        EngineConfig::default(),
    ));
    let follower_node = Arc::new(
        NodeService::follower(
            EngineService::new(Arc::clone(&follower_engine)).with_durable(Arc::clone(&standby)),
            Arc::clone(&standby),
            FollowerConfig::new(primary_addr.to_string()),
            Arc::clone(&stop),
            Arc::clone(&metrics),
        )
        .expect("spawn follower node"),
    );
    assert_eq!(follower_node.role(), Role::Follower);
    assert_eq!(standby.generation(), 1, "fresh store starts at the floor");
    let follower_server = Server::bind_service(
        Arc::clone(&follower_node) as Arc<dyn Service>,
        ServerConfig::default(),
    )
    .expect("bind follower");
    let follower_addr = follower_server.local_addr();
    let follower_running = follower_server.spawn();

    // Replication catches up: standby reaches the primary epoch and the
    // lag gauge settles at zero.
    let deadline = Instant::now() + Duration::from_secs(10);
    while standby.epoch() < primary_epoch {
        assert!(
            Instant::now() < deadline,
            "standby stuck at epoch {} of {primary_epoch}",
            standby.epoch()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(standby.epoch(), primary_epoch);
    let snap = metrics.registry().snapshot();
    assert!(snap.counter_value("bmb_cluster_replication_pulls_total", &[]) > 0);
    assert_eq!(
        snap.counter_value("bmb_cluster_replicated_baskets_total", &[]),
        primary_epoch
    );
    // The gauge needs one caught-up pull to read zero.
    let deadline = Instant::now() + Duration::from_secs(5);
    while metrics.replication_lag.get() != 0 {
        assert!(Instant::now() < deadline, "lag gauge never reached zero");
        std::thread::sleep(Duration::from_millis(10));
    }

    // What a local engine over the same baskets says — the promoted
    // follower must reproduce these bits.
    let reference = QueryEngine::new(Arc::clone(standby.store()), EngineConfig::default());
    let ref_snap = reference.snapshot();
    let probe = Itemset::from_ids([12u32, 13]);
    let expected = reference.chi2(&ref_snap, &probe).expect("reference chi2");

    // Kill the primary, then query through a coordinator that knows the
    // follower: mark-down + promotion must be transparent to the read.
    primary_running.stop().expect("stop primary");
    let mut config = CoordinatorConfig::new(N_ITEMS, std::iter::empty());
    config.shards =
        vec![ShardSpec::primary(primary_addr.to_string()).with_follower(follower_addr.to_string())];
    let coordinator = Arc::new(CoordinatorService::new(config));
    let coord_server = Server::bind_service(
        Arc::clone(&coordinator) as Arc<dyn Service>,
        ServerConfig::default(),
    )
    .expect("bind coordinator");
    let coord_addr = coord_server.local_addr();
    let coord_running = coord_server.spawn();

    let mut client = Client::connect(coord_addr).expect("connect coordinator");
    let request = Value::object()
        .with("cmd", Value::Str("chi2".to_string()))
        .with("items", Value::Array(vec![Value::Int(12), Value::Int(13)]));
    let answer = client
        .request(&request)
        .expect("chi2 via promoted follower");
    assert_eq!(
        answer
            .get("statistic")
            .and_then(Value::as_f64)
            .map(f64::to_bits),
        Some(expected.outcome.statistic.to_bits()),
        "promoted follower diverged from the reference engine"
    );
    assert_eq!(
        answer.get("epoch").and_then(Value::as_u64),
        Some(primary_epoch)
    );
    assert_eq!(
        answer
            .get("epochs")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(1)
    );

    // Promotion switched the node's role, durably bumped its
    // generation past the old primary's, and stopped the pull loop;
    // the coordinator's promotion counter ticked once.
    assert_eq!(follower_node.role(), Role::Primary);
    assert_eq!(
        standby.generation(),
        2,
        "promotion must bump the persisted generation"
    );
    let coord_snap = coordinator.metrics().registry().snapshot();
    assert_eq!(
        coord_snap.counter_value("bmb_cluster_promotions_total", &[]),
        1
    );
    assert_eq!(
        coord_snap.counter_value("bmb_cluster_shard_markdowns_total", &[]),
        1
    );

    // The promoted node is the shard's fenced primary now: acked
    // ingest keeps working through the failover.
    let ingest = Value::object()
        .with("cmd", Value::Str("ingest".to_string()))
        .with(
            "baskets",
            Value::Array(vec![Value::Array(vec![Value::Int(1)])]),
        );
    let acked = client
        .request(&ingest)
        .expect("ingest via promoted follower");
    assert_eq!(acked.get("ingested").and_then(Value::as_u64), Some(1));
    assert_eq!(
        acked.get("epoch").and_then(Value::as_u64),
        Some(primary_epoch + 1)
    );

    // Coordinator stats advertise its role and the slot's health row
    // carries the adopted generation.
    let stats = client
        .request(&Value::object().with("cmd", Value::Str("stats".to_string())))
        .expect("coordinator stats");
    assert_eq!(
        stats.get("role").and_then(Value::as_str),
        Some("coordinator")
    );
    let shard_row = stats
        .get("shards")
        .and_then(Value::as_array)
        .and_then(|rows| rows.first())
        .cloned()
        .expect("one shard row");
    assert_eq!(
        shard_row.get("promoted").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(shard_row.get("generation").and_then(Value::as_u64), Some(2));

    stop.store(true, Ordering::Release);
    coord_running.stop().expect("stop coordinator");
    follower_running.stop().expect("stop follower");
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

//! WAL-shipping follower: a warm standby that tails a shard primary's
//! write-ahead log and can be promoted to serve its reads.
//!
//! The follower is a full durable store of its own — its *replica* WAL
//! and checkpoints make promotion durable too. A background
//! [`Replicator`] loop pulls `replicate_pull` batches from the primary
//! (the primary ships sealed WAL entries strictly after the follower's
//! current epoch), replays them through the follower's normal
//! `append_batch` path, and publishes the remaining lag in baskets on
//! the `bmb_cluster_replication_lag_baskets` gauge.
//!
//! The serving side is an [`EngineService`] wrapper: queries answer off
//! the standby's engine exactly as a primary would; `promote` flips a
//! one-way latch that stops the replication loop (the primary is gone —
//! further pulls would only burn the backoff timer); `ingest` is always
//! refused (writes belong to the primary; a promoted follower is a
//! read-only survivor until an operator rebuilds the pair).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::{DurableStore, ItemId};
use bmb_obs::Registry;
use bmb_serve::json::Value;
use bmb_serve::{
    EngineService, Request, RetryClient, RetryPolicy, Service, ServiceCtx, ServiceFailure,
};

use crate::metrics::ClusterMetrics;

/// Follower tuning.
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// The shard primary to tail (`host:port`).
    pub primary_addr: String,
    /// Sleep between pulls once caught up.
    pub poll_interval: Duration,
    /// Sleep after a failed pull (primary down or malformed batch).
    pub error_backoff: Duration,
    /// Basket cap per `replicate_pull` (the shard clamps it too).
    pub max_baskets_per_pull: usize,
    /// Retry pacing for the pull connection.
    pub retry: RetryPolicy,
    /// Socket timeout on the pull connection (zero disables).
    pub request_timeout: Duration,
}

impl FollowerConfig {
    /// Default-tuned config tailing `primary_addr`.
    pub fn new(primary_addr: impl Into<String>) -> FollowerConfig {
        FollowerConfig {
            primary_addr: primary_addr.into(),
            poll_interval: Duration::from_millis(50),
            error_backoff: Duration::from_millis(200),
            max_baskets_per_pull: 8192,
            retry: RetryPolicy::default(),
            request_timeout: Duration::from_secs(5),
        }
    }
}

/// The follower's serving face: an [`EngineService`] over the standby
/// store, plus the `promote` latch and replication telemetry.
pub struct FollowerService {
    inner: EngineService,
    promoted: Arc<AtomicBool>,
    metrics: Arc<ClusterMetrics>,
}

impl FollowerService {
    /// Wraps the standby's engine service. The `promoted` flag and
    /// `metrics` are shared with the [`Replicator`] loop.
    pub fn new(
        inner: EngineService,
        promoted: Arc<AtomicBool>,
        metrics: Arc<ClusterMetrics>,
    ) -> FollowerService {
        FollowerService {
            inner,
            promoted,
            metrics,
        }
    }

    /// Whether `promote` has latched.
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::Acquire)
    }
}

impl Service for FollowerService {
    fn registries(&self) -> Vec<Arc<Registry>> {
        let mut registries = self.inner.registries();
        registries.push(Arc::clone(self.metrics.registry()));
        registries
    }

    fn dispatch(&self, request: Request, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        match request {
            Request::Promote => {
                let already = self.promoted.swap(true, Ordering::AcqRel);
                if !already {
                    self.metrics.promotions.inc();
                    bmb_obs::events().emit(
                        bmb_obs::Severity::Warn,
                        "follower promoted",
                        &[("epoch", &self.inner.engine().snapshot().epoch().to_string())],
                    );
                }
                Ok(Value::object()
                    .with("promoted", Value::Bool(true))
                    .with(
                        "epoch",
                        Value::Int(self.inner.engine().snapshot().epoch() as i64),
                    )
                    .with("already", Value::Bool(already)))
            }
            Request::Ingest { .. } => Err(ServiceFailure::other(
                "follower does not accept ingest; write to the shard primary",
            )),
            Request::Stats => Ok(self
                .inner
                .dispatch(Request::Stats, ctx)?
                .with("role", Value::Str("follower".to_string()))
                .with("promoted", Value::Bool(self.is_promoted()))
                .with(
                    "replication_lag",
                    Value::Int(self.metrics.replication_lag.get()),
                )),
            other => self.inner.dispatch(other, ctx),
        }
    }
}

/// The pull loop: tails the primary's WAL into the standby store.
pub struct Replicator {
    durable: Arc<DurableStore>,
    client: RetryClient,
    promoted: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    config: FollowerConfig,
    metrics: Arc<ClusterMetrics>,
}

impl Replicator {
    /// A replicator feeding `durable` from `config.primary_addr`.
    /// Shares `promoted` with the [`FollowerService`] (promotion stops
    /// the loop) and `stop` with the host process (shutdown).
    pub fn new(
        durable: Arc<DurableStore>,
        config: FollowerConfig,
        promoted: Arc<AtomicBool>,
        stop: Arc<AtomicBool>,
        metrics: Arc<ClusterMetrics>,
    ) -> Replicator {
        let client = RetryClient::new(config.primary_addr.clone(), config.retry.clone())
            .with_timeout(config.request_timeout);
        Replicator {
            durable,
            client,
            promoted,
            stop,
            config,
            metrics,
        }
    }

    /// Runs until stopped or promoted. Each iteration pulls one batch
    /// after the follower's current epoch, replays it, and re-meters
    /// the lag gauge; a caught-up follower sleeps `poll_interval`.
    pub fn run(mut self) {
        while !self.stop.load(Ordering::Acquire) && !self.promoted.load(Ordering::Acquire) {
            match self.pull_once() {
                Ok(caught_up) => {
                    if caught_up {
                        std::thread::sleep(self.config.poll_interval);
                    }
                }
                Err(message) => {
                    bmb_obs::events().emit(
                        bmb_obs::Severity::Warn,
                        "replication pull failed",
                        &[("error", &message)],
                    );
                    std::thread::sleep(self.config.error_backoff);
                }
            }
        }
    }

    /// One pull + replay. `Ok(true)` means the follower has caught up
    /// to the primary epoch observed in this batch.
    fn pull_once(&mut self) -> Result<bool, String> {
        let after = self.durable.epoch();
        let request = Value::object()
            .with("cmd", Value::Str("replicate_pull".to_string()))
            .with("after_epoch", Value::Int(after as i64))
            .with(
                "max_baskets",
                Value::Int(self.config.max_baskets_per_pull as i64),
            );
        let response = self.client.request(&request).map_err(|e| e.to_string())?;
        self.metrics.replication_pulls.inc();
        let batch = parse_ship_batch(&response)?;
        if batch.from_epoch != after {
            return Err(format!(
                "primary shipped from epoch {} but follower asked after {after}",
                batch.from_epoch
            ));
        }
        if !batch.baskets.is_empty() {
            let replayed = batch.baskets.len() as u64;
            self.durable
                .append_batch(batch.baskets)
                .map_err(|e| format!("replay failed: {e}"))?;
            self.metrics.replicated_baskets.add(replayed);
        }
        let local = self.durable.epoch();
        let lag = batch.shard_epoch.saturating_sub(local);
        self.metrics.replication_lag.set(lag as i64);
        Ok(lag == 0)
    }
}

/// A decoded `replicate_pull` response body.
struct PulledBatch {
    from_epoch: u64,
    shard_epoch: u64,
    baskets: Vec<Vec<ItemId>>,
}

fn parse_ship_batch(value: &Value) -> Result<PulledBatch, String> {
    let from_epoch = value
        .get("from_epoch")
        .and_then(Value::as_u64)
        .ok_or("missing 'from_epoch'")?;
    let shard_epoch = value
        .get("shard_epoch")
        .and_then(Value::as_u64)
        .ok_or("missing 'shard_epoch'")?;
    let rows = value
        .get("baskets")
        .and_then(Value::as_array)
        .ok_or("missing 'baskets'")?;
    let mut baskets = Vec::with_capacity(rows.len());
    for row in rows {
        let items = row.as_array().ok_or("basket is not an array")?;
        let mut basket = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_u64().ok_or("non-integer item id")?;
            let id = u32::try_from(id).map_err(|_| "item id exceeds u32".to_string())?;
            basket.push(ItemId(id));
        }
        baskets.push(basket);
    }
    Ok(PulledBatch {
        from_epoch,
        shard_epoch,
        baskets,
    })
}

//! WAL-shipping replication: the pull loop that keeps a warm standby's
//! durable store tailing a shard primary's write-ahead log.
//!
//! The standby is a full durable store of its own — its *replica* WAL
//! and checkpoints make promotion durable too. The [`Replicator`] loop
//! pulls `replicate_pull` batches from the primary (the primary ships
//! sealed WAL entries strictly after the follower's current epoch),
//! replays them through the follower's normal `append_batch` path, and
//! publishes the remaining lag in baskets on the
//! `bmb_cluster_replication_lag_baskets` gauge.
//!
//! The serving side lives in [`crate::node::NodeService`]: a
//! role-switching wrapper that serves queries off the standby engine,
//! bumps the persisted fencing generation on `promote`, and restarts
//! this pull loop against a new primary on `demote`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::{DurableStore, ItemId};
use bmb_serve::json::Value;
use bmb_serve::{RetryClient, RetryPolicy};

use crate::metrics::ClusterMetrics;

/// Follower tuning.
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// The shard primary to tail (`host:port`).
    pub primary_addr: String,
    /// Sleep between pulls once caught up.
    pub poll_interval: Duration,
    /// Sleep after a failed pull (primary down or malformed batch).
    pub error_backoff: Duration,
    /// Basket cap per `replicate_pull` (the shard clamps it too).
    pub max_baskets_per_pull: usize,
    /// Retry pacing for the pull connection.
    pub retry: RetryPolicy,
    /// Socket timeout on the pull connection (zero disables).
    pub request_timeout: Duration,
}

impl FollowerConfig {
    /// Default-tuned config tailing `primary_addr`.
    pub fn new(primary_addr: impl Into<String>) -> FollowerConfig {
        FollowerConfig {
            primary_addr: primary_addr.into(),
            poll_interval: Duration::from_millis(50),
            error_backoff: Duration::from_millis(200),
            max_baskets_per_pull: 8192,
            retry: RetryPolicy::default(),
            request_timeout: Duration::from_secs(5),
        }
    }
}

/// The pull loop: tails the primary's WAL into the standby store.
pub struct Replicator {
    durable: Arc<DurableStore>,
    client: RetryClient,
    promoted: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    caught_up: Option<Arc<AtomicBool>>,
    config: FollowerConfig,
    metrics: Arc<ClusterMetrics>,
    /// Session trace stamped on every pull this loop sends, so a
    /// primary's span ring attributes replication traffic to one
    /// queryable trace per pull-loop lifetime.
    session_trace: u64,
}

impl Replicator {
    /// A replicator feeding `durable` from `config.primary_addr`.
    /// Shares `promoted` with the node's serving face (promotion stops
    /// the loop) and `stop` with the host process (shutdown).
    pub fn new(
        durable: Arc<DurableStore>,
        config: FollowerConfig,
        promoted: Arc<AtomicBool>,
        stop: Arc<AtomicBool>,
        metrics: Arc<ClusterMetrics>,
    ) -> Replicator {
        let client = RetryClient::new(config.primary_addr.clone(), config.retry.clone())
            .with_timeout(config.request_timeout);
        Replicator {
            durable,
            client,
            promoted,
            stop,
            caught_up: None,
            config,
            metrics,
            session_trace: bmb_obs::next_span_id(),
        }
    }

    /// The trace id this loop stamps on its pulls (16-hex wire form:
    /// `bmb cluster trace <id>` against the primary shows the pulls).
    pub fn session_trace(&self) -> u64 {
        self.session_trace
    }

    /// Shares a caught-up latch: set to `true` the first time a pull
    /// observes zero lag against the primary. A demoted node uses this
    /// to gate queries until its store has caught up with the new
    /// primary.
    pub fn with_caught_up(mut self, caught_up: Arc<AtomicBool>) -> Replicator {
        self.caught_up = Some(caught_up);
        self
    }

    /// Runs until stopped or promoted. Each iteration pulls one batch
    /// after the follower's current epoch, replays it, and re-meters
    /// the lag gauge; a caught-up follower sleeps `poll_interval`.
    pub fn run(mut self) {
        while !self.stop.load(Ordering::Acquire) && !self.promoted.load(Ordering::Acquire) {
            match self.pull_once() {
                Ok(caught_up) => {
                    if caught_up {
                        std::thread::sleep(self.config.poll_interval);
                    }
                }
                Err(message) => {
                    bmb_obs::events().emit(
                        bmb_obs::Severity::Warn,
                        "replication pull failed",
                        &[("error", &message)],
                    );
                    std::thread::sleep(self.config.error_backoff);
                }
            }
        }
    }

    /// One pull + replay. `Ok(true)` means the follower has caught up
    /// to the primary epoch observed in this batch.
    fn pull_once(&mut self) -> Result<bool, String> {
        let after = self.durable.epoch();
        let request = Value::object()
            .with("cmd", Value::Str("replicate_pull".to_string()))
            .with("after_epoch", Value::Int(after as i64))
            .with(
                "max_baskets",
                Value::Int(self.config.max_baskets_per_pull as i64),
            )
            .with("trace", Value::Str(format!("{:016x}", self.session_trace)));
        let response = self.client.request(&request).map_err(|e| e.to_string())?;
        self.metrics.replication_pulls.inc();
        let batch = parse_ship_batch(&response)?;
        if batch.from_epoch != after {
            return Err(format!(
                "primary shipped from epoch {} but follower asked after {after}",
                batch.from_epoch
            ));
        }
        if !batch.baskets.is_empty() {
            let replayed = batch.baskets.len() as u64;
            self.durable
                .append_batch(batch.baskets)
                .map_err(|e| format!("replay failed: {e}"))?;
            self.metrics.replicated_baskets.add(replayed);
        }
        let local = self.durable.epoch();
        let lag = batch.shard_epoch.saturating_sub(local);
        self.metrics.replication_lag.set(lag as i64);
        if lag == 0 {
            if let Some(flag) = &self.caught_up {
                // ordering: Release — publishes the replayed store state
                // to the serving thread that Acquires this latch before
                // answering queries.
                flag.store(true, Ordering::Release);
            }
        }
        Ok(lag == 0)
    }
}

/// A decoded `replicate_pull` response body.
struct PulledBatch {
    from_epoch: u64,
    shard_epoch: u64,
    baskets: Vec<Vec<ItemId>>,
}

fn parse_ship_batch(value: &Value) -> Result<PulledBatch, String> {
    let from_epoch = value
        .get("from_epoch")
        .and_then(Value::as_u64)
        .ok_or("missing 'from_epoch'")?;
    let shard_epoch = value
        .get("shard_epoch")
        .and_then(Value::as_u64)
        .ok_or("missing 'shard_epoch'")?;
    let rows = value
        .get("baskets")
        .and_then(Value::as_array)
        .ok_or("missing 'baskets'")?;
    let mut baskets = Vec::with_capacity(rows.len());
    for row in rows {
        let items = row.as_array().ok_or("basket is not an array")?;
        let mut basket = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_u64().ok_or("non-integer item id")?;
            let id = u32::try_from(id).map_err(|_| "item id exceeds u32".to_string())?;
            basket.push(ItemId(id));
        }
        baskets.push(basket);
    }
    Ok(PulledBatch {
        from_epoch,
        shard_epoch,
        baskets,
    })
}

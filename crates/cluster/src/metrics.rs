//! Cluster observability: scatter fan-out, shard health transitions,
//! and follower replication lag, as `bmb_cluster_*` metric families on
//! a per-role `bmb_obs` registry (merged into the serving process's
//! `/metrics` exposition).

use std::sync::Arc;

use bmb_obs::{Counter, Gauge, Registry};

/// Metrics for one coordinator or follower role instance.
pub struct ClusterMetrics {
    registry: Arc<Registry>,
    /// Scatter rounds issued by the coordinator (one per gathered query).
    pub scatters: Counter,
    /// Per-shard requests fanned out (scatters × live shards).
    pub fanout: Counter,
    /// Shard requests that failed at the transport level.
    pub shard_errors: Counter,
    /// Primaries marked down after exhausted retries.
    pub markdowns: Counter,
    /// Primaries that answered again after a mark-down (re-probe).
    pub rejoins: Counter,
    /// Followers promoted to serve a dead primary's reads.
    pub promotions: Counter,
    /// Stale primaries demoted back to catching-up followers.
    pub demotions: Counter,
    /// Shard responses rejected for carrying a stale generation.
    pub stale_responses: Counter,
    /// Coordinator requests a shard fenced for carrying a stale
    /// generation (the coordinator then adopts the newer one).
    pub fenced_requests: Counter,
    /// Replication pulls a follower has issued.
    pub replication_pulls: Counter,
    /// Baskets a follower has replayed from shipped WAL batches.
    pub replicated_baskets: Counter,
    /// The follower's current lag behind its primary, in baskets.
    pub replication_lag: Gauge,
    /// Anti-entropy rounds run (per-slot digest comparisons).
    pub anti_entropy_rounds: Counter,
    /// Primary/follower digest divergences detected by anti-entropy.
    pub digest_divergences: Counter,
    /// Remote scrubs triggered on a diverged replica.
    pub remote_scrubs: Counter,
}

impl ClusterMetrics {
    /// A fresh registry with every cluster family registered.
    pub fn new() -> ClusterMetrics {
        let registry = Arc::new(Registry::new());
        ClusterMetrics {
            scatters: registry.counter(
                "bmb_cluster_scatters_total",
                "Scatter-gather rounds issued by the coordinator.",
            ),
            fanout: registry.counter(
                "bmb_cluster_fanout_requests_total",
                "Per-shard requests fanned out across all scatters.",
            ),
            shard_errors: registry.counter(
                "bmb_cluster_shard_errors_total",
                "Shard requests that failed at the transport level.",
            ),
            markdowns: registry.counter(
                "bmb_cluster_shard_markdowns_total",
                "Primaries marked down after exhausted retries.",
            ),
            rejoins: registry.counter(
                "bmb_cluster_shard_rejoins_total",
                "Marked-down primaries that answered a re-probe.",
            ),
            promotions: registry.counter(
                "bmb_cluster_promotions_total",
                "Followers promoted to serve a dead primary's reads.",
            ),
            demotions: registry.counter(
                "bmb_cluster_demotions_total",
                "Stale primaries demoted back to catching-up followers.",
            ),
            stale_responses: registry.counter(
                "bmb_cluster_stale_responses_total",
                "Shard responses rejected for carrying a stale generation.",
            ),
            fenced_requests: registry.counter(
                "bmb_cluster_fenced_requests_total",
                "Coordinator requests fenced by a shard at a newer generation.",
            ),
            replication_pulls: registry.counter(
                "bmb_cluster_replication_pulls_total",
                "WAL-shipping pulls issued by the follower.",
            ),
            replicated_baskets: registry.counter(
                "bmb_cluster_replicated_baskets_total",
                "Baskets replayed into the follower's warm standby.",
            ),
            replication_lag: registry.gauge(
                "bmb_cluster_replication_lag_baskets",
                "Follower lag behind its primary, in baskets.",
            ),
            anti_entropy_rounds: registry.counter(
                "bmb_cluster_anti_entropy_rounds_total",
                "Anti-entropy rounds comparing primary and follower digests.",
            ),
            digest_divergences: registry.counter(
                "bmb_cluster_digest_divergences_total",
                "Primary/follower segment-digest divergences detected.",
            ),
            remote_scrubs: registry.counter(
                "bmb_cluster_remote_scrubs_total",
                "Scrub-and-repair runs triggered on diverged replicas.",
            ),
            registry,
        }
    }

    /// The registry backing these metrics, for `/metrics` exposition.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl Default for ClusterMetrics {
    fn default() -> Self {
        ClusterMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_register_and_count() {
        let metrics = ClusterMetrics::new();
        metrics.scatters.inc();
        metrics.fanout.add(4);
        metrics.replication_lag.set(17);
        let snap = metrics.registry().snapshot();
        assert_eq!(snap.counter_value("bmb_cluster_scatters_total", &[]), 1);
        assert_eq!(
            snap.counter_value("bmb_cluster_fanout_requests_total", &[]),
            4
        );
        assert_eq!(
            snap.gauge_value("bmb_cluster_replication_lag_baskets", &[]),
            17
        );
    }
}

//! A deterministic TCP fault-injection proxy, in the spirit of
//! Toxiproxy but std-only and seeded.
//!
//! One [`ChaosProxy`] fronts one upstream: clients connect to the
//! proxy's listen address and their bytes are pumped to the upstream
//! and back, with faults injected according to a **seeded plan**. Every
//! accepted connection gets a [`FaultPlan`] derived purely from
//! `(seed, connection index)` by a splitmix64 chain — the same seed
//! always yields the same fault sequence over the same accept order,
//! which is what makes a failing torture seed replayable.
//!
//! Planned faults (independent per-mille rolls per connection):
//!
//! * **refuse** — the connection is accepted and immediately closed;
//! * **drop** — the stream is cut after a planned byte offset
//!   (truncation: the peer sees a half-written line and a close);
//! * **stall** — forwarding stops after a planned offset but the
//!   sockets stay open (a half-open connection; only the peer's read
//!   timeout gets it unstuck);
//! * **corrupt** — one byte of the upstream→client stream at a planned
//!   offset is overwritten with `0xFF`, which can never form valid
//!   UTF-8, so the line protocol always *detects* the corruption
//!   instead of delivering a plausible-but-wrong answer;
//! * **delay** — a planned per-chunk latency;
//! * **throttle** — bandwidth capped at a planned bytes/second.
//!
//! On top of the per-connection plans, a **partition** can be toggled
//! at runtime — via [`ChaosHandle::partition`] in-process or the
//! control socket cross-process. While partitioned, new connections
//! are refused and established pumps are torn down on their next poll
//! tick: a full bidirectional partition of this upstream.
//!
//! The control socket speaks the same line-JSON envelope as the data
//! protocol (`{"id":…,"cmd":…}` → `{"id":…,"ok":true,"result":…}`,
//! banner `{"proto":"chaos/1","ok":true}`), so `bmb_serve::Client`
//! drives it directly. Commands: `partition`, `heal`, `status`,
//! `stop`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use bmb_serve::json::{self, Value};

/// How often blocked loops (accept, pump reads, stalls) re-check the
/// stop and partition flags.
const POLL: Duration = Duration::from_millis(10);

/// Fault rates and bounds. All rates are per-mille (0–1000) per
/// connection; a zeroed config is a faithful pass-through proxy.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the fault-plan stream. Same seed + same accept order =
    /// same faults.
    pub seed: u64,
    /// Per-mille of connections refused outright.
    pub refuse_per_mille: u16,
    /// Per-mille of connections cut after a planned byte offset.
    pub drop_per_mille: u16,
    /// Per-mille of connections stalled half-open after a planned
    /// offset.
    pub stall_per_mille: u16,
    /// Per-mille of connections with one upstream→client byte
    /// corrupted at a planned offset.
    pub corrupt_per_mille: u16,
    /// Per-mille of connections with added per-chunk latency.
    pub delay_per_mille: u16,
    /// Upper bound (exclusive) on the planned per-chunk latency, in
    /// microseconds.
    pub max_delay_us: u64,
    /// Per-mille of connections bandwidth-throttled.
    pub throttle_per_mille: u16,
    /// Throttle rate floor; the planned rate is in
    /// `[throttle_bytes_per_sec, 2 * throttle_bytes_per_sec)`.
    pub throttle_bytes_per_sec: u64,
}

impl ChaosConfig {
    /// A pass-through config (all fault rates zero) with `seed`.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            refuse_per_mille: 0,
            drop_per_mille: 0,
            stall_per_mille: 0,
            corrupt_per_mille: 0,
            delay_per_mille: 0,
            max_delay_us: 20_000,
            throttle_per_mille: 0,
            throttle_bytes_per_sec: 64 * 1024,
        }
    }
}

/// The faults planned for one connection, derived purely from
/// `(seed, connection index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Close immediately after accept.
    pub refuse: bool,
    /// Cut the stream after this many forwarded bytes (per direction).
    pub drop_after: Option<u64>,
    /// Stop forwarding after this many bytes, keeping sockets open.
    pub stall_after: Option<u64>,
    /// Overwrite the upstream→client byte at this offset with `0xFF`.
    pub corrupt_at: Option<u64>,
    /// Added latency per forwarded chunk.
    pub delay: Duration,
    /// Bandwidth cap in bytes/second.
    pub throttle: Option<u64>,
}

impl FaultPlan {
    /// The plan for connection `index` under `config` — a pure
    /// function, so a failing seed replays exactly.
    pub fn derive(config: &ChaosConfig, index: u64) -> FaultPlan {
        let mut state = config
            .seed
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut roll = |per_mille: u16| splitmix64(&mut state) % 1000 < per_mille as u64;
        let refuse = roll(config.refuse_per_mille);
        let dropped = roll(config.drop_per_mille);
        let stalled = roll(config.stall_per_mille);
        let corrupted = roll(config.corrupt_per_mille);
        let delayed = roll(config.delay_per_mille);
        let throttled = roll(config.throttle_per_mille);
        // Draw the magnitudes unconditionally so toggling one rate
        // never shifts another fault's planned offsets.
        let drop_offset = 1 + splitmix64(&mut state) % 1024;
        let stall_offset = 1 + splitmix64(&mut state) % 512;
        let corrupt_offset = splitmix64(&mut state) % 256;
        let delay_us = splitmix64(&mut state) % config.max_delay_us.max(1);
        let throttle_rate = config.throttle_bytes_per_sec.max(1)
            + splitmix64(&mut state) % config.throttle_bytes_per_sec.max(1);
        FaultPlan {
            refuse,
            drop_after: dropped.then_some(drop_offset),
            stall_after: stalled.then_some(stall_offset),
            corrupt_at: corrupted.then_some(corrupt_offset),
            delay: if delayed {
                Duration::from_micros(delay_us)
            } else {
                Duration::ZERO
            },
            throttle: throttled.then_some(throttle_rate),
        }
    }
}

/// splitmix64: the statelessly seedable PRNG step used everywhere in
/// this workspace that determinism matters.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// State shared by the accept loops, pumps, and the handle.
struct Shared {
    config: ChaosConfig,
    partitioned: AtomicBool,
    stop: AtomicBool,
    upstream: Mutex<String>,
    /// Connections accepted so far; doubles as the next plan index.
    accepted: AtomicU64,
}

/// The running proxy's control surface. Dropping the handle stops the
/// proxy.
pub struct ChaosHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    control_addr: SocketAddr,
    listeners: Vec<JoinHandle<()>>,
}

impl ChaosHandle {
    /// Where clients connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the control protocol listens.
    pub fn control_addr(&self) -> SocketAddr {
        self.control_addr
    }

    /// Starts a full bidirectional partition: new connections are
    /// refused and live pumps tear down within a poll tick.
    pub fn partition(&self) {
        // ordering: Release/Acquire pairs with the pump polls; a flag
        // flip needs no other state to travel with it.
        self.shared.partitioned.store(true, Ordering::Release);
    }

    /// Ends the partition; traffic flows on new connections.
    pub fn heal(&self) {
        // ordering: see partition().
        self.shared.partitioned.store(false, Ordering::Release);
    }

    /// Whether a partition is in force.
    pub fn is_partitioned(&self) -> bool {
        // ordering: see partition().
        self.shared.partitioned.load(Ordering::Acquire)
    }

    /// Re-points the proxy at a new upstream address (picked up by the
    /// next accepted connection) — the hook for a node that restarted
    /// on a different port.
    pub fn set_upstream(&self, addr: impl Into<String>) {
        *lock(&self.shared.upstream) = addr.into();
    }

    /// Whether the proxy has been told to stop (via [`Self::stop`] or
    /// the control protocol's `stop` command).
    pub fn is_stopped(&self) -> bool {
        // ordering: Acquire pairs with the stoppers' Release.
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Connections accepted so far (= the next connection's plan index).
    pub fn accepted(&self) -> u64 {
        // ordering: Relaxed — a monotone counter read for reporting.
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Stops the proxy: accept loops exit, pumps tear down on their
    /// next poll tick. Idempotent.
    pub fn stop(&mut self) {
        // ordering: Release pairs with the loops' Acquire polls.
        self.shared.stop.store(true, Ordering::Release);
        for handle in self.listeners.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The proxy constructor; see the module docs for the fault model.
pub struct ChaosProxy;

impl ChaosProxy {
    /// Binds `listen` (data) and `control` (control protocol; pass
    /// `None` for an ephemeral port) and starts proxying to
    /// `upstream`. Returns immediately; all work happens on background
    /// threads owned by the returned handle.
    pub fn spawn(
        listen: &str,
        upstream: &str,
        control: Option<&str>,
        config: ChaosConfig,
    ) -> std::io::Result<ChaosHandle> {
        let data = TcpListener::bind(listen)?;
        let ctrl = TcpListener::bind(control.unwrap_or("127.0.0.1:0"))?;
        let local_addr = data.local_addr()?;
        let control_addr = ctrl.local_addr()?;
        data.set_nonblocking(true)?;
        ctrl.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            config,
            partitioned: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            upstream: Mutex::new(upstream.to_string()),
            accepted: AtomicU64::new(0),
        });
        let data_shared = Arc::clone(&shared);
        let data_thread = std::thread::Builder::new()
            .name("chaos-accept".to_string())
            .spawn(move || run_data_listener(data, data_shared))?;
        let ctrl_shared = Arc::clone(&shared);
        let ctrl_thread = std::thread::Builder::new()
            .name("chaos-control".to_string())
            .spawn(move || run_control_listener(ctrl, ctrl_shared))?;
        Ok(ChaosHandle {
            shared,
            local_addr,
            control_addr,
            listeners: vec![data_thread, ctrl_thread],
        })
    }
}

/// Accepts data connections and spawns a pump pair per connection.
fn run_data_listener(listener: TcpListener, shared: Arc<Shared>) {
    // ordering: Acquire pairs with ChaosHandle::stop's Release.
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                // ordering: Relaxed — the accept loop is the only
                // writer; the counter just numbers connections.
                let index = shared.accepted.fetch_add(1, Ordering::Relaxed);
                let plan = FaultPlan::derive(&shared.config, index);
                if plan.refuse || shared.partitioned.load(Ordering::Acquire) {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let upstream_addr = {
                    let addr = lock(&shared.upstream);
                    addr.clone()
                };
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("chaos-conn-{index}"))
                    .spawn(move || connect_and_pump(client, &upstream_addr, plan, conn_shared));
                // Spawn failure = resource exhaustion; treat the
                // connection as refused.
                drop(spawned);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Dials the upstream and runs the two directional pumps; the
/// upstream→client direction (which carries responses) is the one that
/// applies planned corruption.
fn connect_and_pump(client: TcpStream, upstream_addr: &str, plan: FaultPlan, shared: Arc<Shared>) {
    let Ok(upstream) = TcpStream::connect(upstream_addr) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nonblocking(false);
    let _ = client.set_read_timeout(Some(POLL));
    let _ = upstream.set_read_timeout(Some(POLL));
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    let (Ok(client_rx), Ok(upstream_rx)) = (client.try_clone(), upstream.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = upstream.shutdown(Shutdown::Both);
        return;
    };
    let back_shared = Arc::clone(&shared);
    let back = std::thread::Builder::new()
        .name("chaos-pump-back".to_string())
        .spawn(move || pump(upstream_rx, client, plan, true, &back_shared));
    pump(client_rx, upstream, plan, false, &shared);
    if let Ok(handle) = back {
        let _ = handle.join();
    }
}

/// Forwards bytes `src` → `dst` under `plan` until EOF, error, stop,
/// partition, or a planned cut. `corrupting` marks the
/// upstream→client direction.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: FaultPlan,
    corrupting: bool,
    shared: &Shared,
) {
    let mut forwarded: u64 = 0;
    let mut buf = [0u8; 4096];
    loop {
        // ordering: Acquire pairs with the control-side Release stores.
        if shared.stop.load(Ordering::Acquire) || shared.partitioned.load(Ordering::Acquire) {
            break;
        }
        if plan.stall_after.is_some_and(|at| forwarded >= at) {
            // Half-open: forward nothing more, close nothing either.
            std::thread::sleep(POLL);
            continue;
        }
        match src.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate the half-close and keep the
                // other direction's pump alive.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(mut n) => {
                if !plan.delay.is_zero() {
                    std::thread::sleep(plan.delay);
                }
                if let Some(rate) = plan.throttle {
                    std::thread::sleep(Duration::from_secs_f64(n as f64 / rate.max(1) as f64));
                }
                let mut cut = false;
                if let Some(at) = plan.drop_after {
                    if forwarded + n as u64 > at {
                        n = at.saturating_sub(forwarded) as usize;
                        cut = true;
                    }
                }
                if corrupting {
                    if let Some(at) = plan.corrupt_at {
                        if at >= forwarded && at < forwarded + n as u64 {
                            if let Some(byte) = buf.get_mut((at - forwarded) as usize) {
                                *byte = 0xFF;
                            }
                        }
                    }
                }
                if n > 0 && dst.write_all(&buf[..n]).is_err() {
                    break;
                }
                forwarded += n as u64;
                if cut {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Accepts control connections; each is served on its own thread.
fn run_control_listener(listener: TcpListener, shared: Arc<Shared>) {
    // ordering: Acquire pairs with ChaosHandle::stop's Release.
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("chaos-ctl-conn".to_string())
                    .spawn(move || serve_control(stream, &conn_shared));
                drop(spawned);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One control session: banner, then request/response lines until the
/// peer hangs up or `stop` is issued.
fn serve_control(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    if writeln!(
        writer,
        "{}",
        Value::object()
            .with("proto", Value::Str("chaos/1".to_string()))
            .with("ok", Value::Bool(true))
    )
    .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        // ordering: Acquire pairs with the stop command's Release.
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let response = control_response(&line, shared);
                if writeln!(writer, "{response}").is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// Executes one control line and builds the response envelope.
fn control_response(line: &str, shared: &Shared) -> Value {
    let parsed = match json::parse(line.trim()) {
        Ok(value) => value,
        Err(e) => {
            return Value::object()
                .with("id", Value::Null)
                .with("ok", Value::Bool(false))
                .with("error", Value::Str(format!("malformed control line: {e}")))
        }
    };
    let id = parsed.get("id").cloned().unwrap_or(Value::Null);
    let cmd = parsed.get("cmd").and_then(Value::as_str).unwrap_or("");
    let result = match cmd {
        "partition" => {
            // ordering: Release pairs with the pump polls.
            shared.partitioned.store(true, Ordering::Release);
            Some(Value::object().with("partitioned", Value::Bool(true)))
        }
        "heal" => {
            // ordering: see "partition".
            shared.partitioned.store(false, Ordering::Release);
            Some(Value::object().with("partitioned", Value::Bool(false)))
        }
        "status" => Some(
            Value::object()
                .with(
                    "partitioned",
                    // ordering: see "partition".
                    Value::Bool(shared.partitioned.load(Ordering::Acquire)),
                )
                .with(
                    "accepted",
                    // ordering: Relaxed — reporting a monotone counter.
                    Value::Int(shared.accepted.load(Ordering::Relaxed) as i64),
                )
                .with("seed", Value::Int(shared.config.seed as i64))
                .with("upstream", Value::Str(lock(&shared.upstream).clone())),
        ),
        "stop" => {
            // ordering: Release pairs with every loop's Acquire poll.
            shared.stop.store(true, Ordering::Release);
            Some(Value::object().with("stopping", Value::Bool(true)))
        }
        other => {
            return Value::object()
                .with("id", id)
                .with("ok", Value::Bool(false))
                .with(
                    "error",
                    Value::Str(format!("unknown control command '{other}'")),
                )
        }
    };
    let mut response = Value::object().with("id", id).with("ok", Value::Bool(true));
    if let Some(result) = result {
        response = response.with("result", result);
    }
    response
}

/// Acquires a mutex, recovering from poisoning (an upstream address
/// string is valid in any state).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial upstream echoing each line back.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let thread = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let mut writer = stream.try_clone().expect("clone echo");
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if writeln!(writer, "{line}").is_err() {
                        break;
                    }
                }
            }
        });
        (addr, thread)
    }

    fn roundtrip(addr: SocketAddr, payload: &str) -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        writeln!(stream, "{payload}")?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }

    #[test]
    fn passthrough_and_partition_toggle() {
        let (upstream, _echo) = echo_server();
        let mut handle = ChaosProxy::spawn(
            "127.0.0.1:0",
            &upstream.to_string(),
            None,
            ChaosConfig::new(7),
        )
        .expect("spawn proxy");
        let addr = handle.local_addr();
        assert_eq!(roundtrip(addr, "hello").expect("clean pass"), "hello");
        handle.partition();
        assert!(handle.is_partitioned());
        // New connections are refused or torn down before answering:
        // either an error or a bare EOF, never the echoed payload.
        match roundtrip(addr, "lost") {
            Ok(line) => assert!(line.is_empty(), "partitioned proxy answered: {line}"),
            Err(_) => {}
        }
        handle.heal();
        assert_eq!(roundtrip(addr, "back").expect("healed pass"), "back");
        handle.stop();
    }

    #[test]
    fn control_socket_drives_partition() {
        let (upstream, _echo) = echo_server();
        let mut handle = ChaosProxy::spawn(
            "127.0.0.1:0",
            &upstream.to_string(),
            None,
            ChaosConfig::new(11),
        )
        .expect("spawn proxy");
        let mut ctl = TcpStream::connect(handle.control_addr()).expect("dial control");
        ctl.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut reader = BufReader::new(ctl.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner");
        assert!(line.contains("chaos/1"));
        for (cmd, marker) in [
            ("partition", "\"partitioned\":true"),
            ("status", "\"partitioned\":true"),
            ("heal", "\"partitioned\":false"),
        ] {
            writeln!(ctl, "{{\"id\":1,\"cmd\":\"{cmd}\"}}").expect("send");
            line.clear();
            reader.read_line(&mut line).expect("reply");
            assert!(line.contains(marker), "{cmd} reply: {line}");
        }
        assert!(!handle.is_partitioned());
        assert_eq!(
            roundtrip(handle.local_addr(), "ping").expect("healed"),
            "ping"
        );
        handle.stop();
    }

    #[test]
    fn fault_plans_are_deterministic_and_seed_sensitive() {
        let mut config = ChaosConfig::new(42);
        config.refuse_per_mille = 100;
        config.drop_per_mille = 200;
        config.stall_per_mille = 100;
        config.corrupt_per_mille = 150;
        config.delay_per_mille = 300;
        config.throttle_per_mille = 100;
        let a: Vec<FaultPlan> = (0..64).map(|i| FaultPlan::derive(&config, i)).collect();
        let b: Vec<FaultPlan> = (0..64).map(|i| FaultPlan::derive(&config, i)).collect();
        assert_eq!(a, b, "same seed must replay identical plans");
        let mut other = config.clone();
        other.seed = 43;
        let c: Vec<FaultPlan> = (0..64).map(|i| FaultPlan::derive(&other, i)).collect();
        assert_ne!(a, c, "different seeds must differ somewhere");
        // Some fault of each kind fires across the window.
        assert!(a.iter().any(|p| p.refuse));
        assert!(a.iter().any(|p| p.drop_after.is_some()));
        assert!(a.iter().any(|p| p.delay > Duration::ZERO));
    }

    #[test]
    fn planned_truncation_breaks_the_stream_detectably() {
        let (upstream, _echo) = echo_server();
        // Every connection is dropped after its planned offset.
        let mut config = ChaosConfig::new(3);
        config.drop_per_mille = 1000;
        let mut handle = ChaosProxy::spawn("127.0.0.1:0", &upstream.to_string(), None, config)
            .expect("spawn proxy");
        // A payload far longer than any planned offset (max 1024) can
        // never arrive whole: the roundtrip errors or truncates.
        let payload = "x".repeat(4096);
        match roundtrip(handle.local_addr(), &payload) {
            Ok(answer) => assert_ne!(answer, payload, "truncation must be visible"),
            Err(_) => {}
        }
        handle.stop();
    }
}

//! An injectable monotonic clock.
//!
//! The coordinator's mark-down / probe-cooldown / rejoin logic is all
//! "how long since" arithmetic on [`Instant`]s. Production uses
//! [`SystemClock`]; tests inject a [`TestClock`] and advance it
//! explicitly, so endpoint state transitions are exercised without real
//! sleeps.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// A source of monotonic time.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real clock: [`Instant::now`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A manually advanced clock for tests: starts at a fixed base instant
/// and only moves when [`TestClock::advance`] is called.
#[derive(Debug)]
pub struct TestClock {
    base: Instant,
    offset: Mutex<Duration>,
}

impl TestClock {
    /// A clock frozen at the construction instant.
    pub fn new() -> TestClock {
        TestClock {
            base: Instant::now(),
            offset: Mutex::new(Duration::ZERO),
        }
    }

    /// Moves the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        *lock(&self.offset) += by;
    }
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Instant {
        self.base + *lock(&self.offset)
    }
}

/// Acquires the offset mutex, recovering from poisoning (a `Duration`
/// is valid in any state).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_only_moves_when_advanced() {
        let clock = TestClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_secs(3));
        assert_eq!(clock.now().duration_since(t0), Duration::from_secs(3));
    }
}

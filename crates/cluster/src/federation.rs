//! Federated Prometheus exposition: the coordinator's cluster-wide
//! `/metrics` view.
//!
//! The coordinator pulls each node's own text exposition over the
//! `metrics` wire command and re-exposes the union: every sample line
//! gains `node=`/`shard=` labels (appended at the end of the existing
//! label list, so per-node series never collide), family headers are
//! emitted once (first occurrence wins, matching
//! [`bmb_obs::expose::render`]'s merge rule), and cluster rollups are
//! appended — worst replication lag, the shard epoch spread, and a
//! per-shard request p99 recovered from the merged latency histograms.
//!
//! The output is byte-deterministic for fixed inputs (families keep
//! first-appearance order, rollups sort by shard index), which is what
//! the golden test pins.

use std::fmt::Write as _;

/// One node's exposition input.
pub struct NodeExposition {
    /// Display label for the `node=` label (`coordinator`, `shard0`, …).
    pub node: String,
    /// Shard index for the `shard=` label (`None` on the coordinator).
    pub shard: Option<i64>,
    /// The node's own Prometheus text exposition.
    pub text: String,
}

struct Family {
    name: String,
    /// `# HELP` / `# TYPE` lines from the family's first occurrence.
    header: Vec<String>,
    /// Relabeled sample lines, in input order.
    samples: Vec<String>,
}

/// Merges per-node expositions into one federated text (see module
/// docs). Inputs are scanned in order; pass the coordinator first so
/// its families anchor the layout.
pub fn federate(inputs: &[NodeExposition]) -> String {
    let mut families: Vec<Family> = Vec::new();
    for input in inputs {
        let mut current: Option<usize> = None;
        for line in input.text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                current = Some(match families.iter().position(|f| f.name == name) {
                    Some(index) => index,
                    None => {
                        families.push(Family {
                            name: name.to_string(),
                            header: vec![line.to_string()],
                            samples: Vec::new(),
                        });
                        families.len() - 1
                    }
                });
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if let Some(index) = families.iter().position(|f| f.name == name) {
                    if families[index].header.len() < 2 {
                        families[index].header.push(line.to_string());
                    }
                    current = Some(index);
                }
            } else if line.starts_with('#') {
                continue;
            } else if let Some(index) = current {
                families[index]
                    .samples
                    .push(relabel(line, &input.node, input.shard));
            }
        }
    }
    let mut out = String::new();
    for family in &families {
        for line in &family.header {
            out.push_str(line);
            out.push('\n');
        }
        for line in &family.samples {
            out.push_str(line);
            out.push('\n');
        }
    }
    append_rollups(&mut out, inputs);
    out
}

/// Appends `node=`/`shard=` to a sample line's label block (creating
/// one when the series is unlabeled).
fn relabel(line: &str, node: &str, shard: Option<i64>) -> String {
    let mut extra = format!("node=\"{node}\"");
    if let Some(shard) = shard {
        let _ = write!(extra, ",shard=\"{shard}\"");
    }
    if let (Some(open), Some(close)) = (line.find('{'), line.rfind('}')) {
        let labels = &line[open + 1..close];
        if labels.is_empty() {
            return format!("{}{{{extra}}}{}", &line[..open], &line[close + 1..]);
        }
        return format!(
            "{}{{{labels},{extra}}}{}",
            &line[..open],
            &line[close + 1..]
        );
    }
    match line.find(' ') {
        Some(space) => format!("{}{{{extra}}}{}", &line[..space], &line[space..]),
        None => line.to_string(),
    }
}

/// Sample lines of family `name` in `text` (excluding derived
/// `_bucket`/`_sum`/`_count` series unless named explicitly): the line
/// starts with the name followed by `{` or a space.
fn sample_values<'a>(text: &'a str, name: &'a str) -> impl Iterator<Item = u64> + 'a {
    text.lines().filter_map(move |line| {
        let rest = line.strip_prefix(name)?;
        if !(rest.starts_with('{') || rest.starts_with(' ')) {
            return None;
        }
        line.rsplit(' ').next()?.parse::<u64>().ok()
    })
}

/// Cluster rollups over the raw (pre-relabel) inputs: worst
/// replication lag across nodes, the shard epoch spread, and per-shard
/// request p99.
fn append_rollups(out: &mut String, inputs: &[NodeExposition]) {
    let lag_max = inputs
        .iter()
        .flat_map(|i| sample_values(&i.text, "bmb_cluster_replication_lag_baskets"))
        .max();
    if let Some(lag) = lag_max {
        let _ = writeln!(
            out,
            "# HELP bmb_cluster_fed_replication_lag_max Worst replication lag (baskets) across nodes."
        );
        let _ = writeln!(out, "# TYPE bmb_cluster_fed_replication_lag_max gauge");
        let _ = writeln!(out, "bmb_cluster_fed_replication_lag_max {lag}");
    }
    // Epoch spread over shard nodes only: the coordinator's own served
    // epoch is the *sum* of shard epochs and would drown the skew.
    let epochs: Vec<u64> = inputs
        .iter()
        .filter(|i| i.shard.is_some())
        .filter_map(|i| sample_values(&i.text, "bmb_serve_last_served_epoch").max())
        .collect();
    if let (Some(&min), Some(&max)) = (epochs.iter().min(), epochs.iter().max()) {
        let _ = writeln!(
            out,
            "# HELP bmb_cluster_fed_epoch_skew Served-epoch spread across shard nodes (max-min, with bounds)."
        );
        let _ = writeln!(out, "# TYPE bmb_cluster_fed_epoch_skew gauge");
        let _ = writeln!(out, "bmb_cluster_fed_epoch_skew{{bound=\"min\"}} {min}");
        let _ = writeln!(out, "bmb_cluster_fed_epoch_skew{{bound=\"max\"}} {max}");
        let _ = writeln!(
            out,
            "bmb_cluster_fed_epoch_skew{{bound=\"spread\"}} {}",
            max - min
        );
    }
    // Integrity rollups: cluster-wide sums of the per-node scrub
    // counters, emitted only when some node actually exposes them (so
    // clusters without scrubbing federate byte-identically to before).
    let scrub_families = [
        ("corruptions", "bmb_basket_scrub_corruptions_total"),
        ("repairs", "bmb_basket_scrub_repairs_total"),
        ("quarantined", "bmb_basket_scrub_quarantines_total"),
    ];
    let scrub_sums: Vec<(&str, u64)> = scrub_families
        .iter()
        .filter_map(|&(label, family)| {
            let mut seen = false;
            let total: u64 = inputs
                .iter()
                .flat_map(|i| sample_values(&i.text, family))
                .inspect(|_| seen = true)
                .sum();
            seen.then_some((label, total))
        })
        .collect();
    if !scrub_sums.is_empty() {
        let _ = writeln!(
            out,
            "# HELP bmb_cluster_fed_scrub_total Cluster-wide integrity-scrub outcomes (summed over nodes)."
        );
        let _ = writeln!(out, "# TYPE bmb_cluster_fed_scrub_total counter");
        for (label, total) in scrub_sums {
            let _ = writeln!(
                out,
                "bmb_cluster_fed_scrub_total{{outcome=\"{label}\"}} {total}"
            );
        }
    }
    let mut p99s: Vec<(i64, u64)> = inputs
        .iter()
        .filter_map(|i| Some((i.shard?, shard_p99_us(&i.text)?)))
        .collect();
    p99s.sort_unstable();
    if !p99s.is_empty() {
        let _ = writeln!(
            out,
            "# HELP bmb_cluster_fed_shard_p99_us Per-shard request p99 (us) from merged latency histograms."
        );
        let _ = writeln!(out, "# TYPE bmb_cluster_fed_shard_p99_us gauge");
        for (shard, p99) in p99s {
            let _ = writeln!(
                out,
                "bmb_cluster_fed_shard_p99_us{{shard=\"{shard}\"}} {p99}"
            );
        }
    }
}

/// Nearest-rank p99 over a node's `bmb_serve_request_us_bucket` lines,
/// merging every `cmd=` series by summing cumulative counts per `le`
/// bound. A p99 that falls in the `+Inf` bucket saturates to the
/// largest finite bound seen. `None` when the node recorded nothing.
fn shard_p99_us(text: &str) -> Option<u64> {
    // (le_bound, summed cumulative count); +Inf keyed as u64::MAX.
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("bmb_serve_request_us_bucket{") else {
            continue;
        };
        let le_key = "le=\"";
        let at = rest.find(le_key)? + le_key.len();
        let end = rest[at..].find('"')? + at;
        let le = match &rest[at..end] {
            "+Inf" => u64::MAX,
            digits => digits.parse::<u64>().ok()?,
        };
        let count = line.rsplit(' ').next()?.parse::<u64>().ok()?;
        match buckets.iter_mut().find(|(bound, _)| *bound == le) {
            Some((_, total)) => *total += count,
            None => buckets.push((le, count)),
        }
    }
    buckets.sort_unstable();
    let total = buckets.last().map(|&(_, count)| count)?;
    if total == 0 {
        return None;
    }
    let rank = (total * 99).div_ceil(100).max(1);
    let mut largest_finite = 0u64;
    for &(le, cumulative) in &buckets {
        if le != u64::MAX {
            largest_finite = largest_finite.max(le);
        }
        if cumulative >= rank {
            return Some(if le == u64::MAX { largest_finite } else { le });
        }
    }
    Some(largest_finite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Vec<NodeExposition> {
        let coordinator = "\
# HELP bmb_cluster_scatters_total Scatter rounds issued.\n\
# TYPE bmb_cluster_scatters_total counter\n\
bmb_cluster_scatters_total 4\n\
# HELP bmb_serve_requests_total Requests handled.\n\
# TYPE bmb_serve_requests_total counter\n\
bmb_serve_requests_total 4\n";
        let shard0 = "\
# HELP bmb_serve_last_served_epoch Epoch of the last served snapshot.\n\
# TYPE bmb_serve_last_served_epoch gauge\n\
bmb_serve_last_served_epoch 7\n\
# HELP bmb_serve_request_us Request latency (us).\n\
# TYPE bmb_serve_request_us histogram\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"1\"} 0\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"128\"} 98\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"256\"} 100\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"+Inf\"} 100\n\
bmb_serve_request_us_sum{cmd=\"support_vec\"} 9000\n\
bmb_serve_request_us_count{cmd=\"support_vec\"} 100\n\
# HELP bmb_serve_requests_total Requests handled.\n\
# TYPE bmb_serve_requests_total counter\n\
bmb_serve_requests_total 100\n";
        let shard1 = "\
# HELP bmb_cluster_replication_lag_baskets Baskets the follower trails by.\n\
# TYPE bmb_cluster_replication_lag_baskets gauge\n\
bmb_cluster_replication_lag_baskets 3\n\
# HELP bmb_serve_last_served_epoch Epoch of the last served snapshot.\n\
# TYPE bmb_serve_last_served_epoch gauge\n\
bmb_serve_last_served_epoch 5\n\
# HELP bmb_serve_request_us Request latency (us).\n\
# TYPE bmb_serve_request_us histogram\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"1\"} 0\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"64\"} 50\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"+Inf\"} 50\n\
bmb_serve_request_us_sum{cmd=\"support_vec\"} 2000\n\
bmb_serve_request_us_count{cmd=\"support_vec\"} 50\n";
        vec![
            NodeExposition {
                node: "coordinator".to_string(),
                shard: None,
                text: coordinator.to_string(),
            },
            NodeExposition {
                node: "shard0".to_string(),
                shard: Some(0),
                text: shard0.to_string(),
            },
            NodeExposition {
                node: "shard1".to_string(),
                shard: Some(1),
                text: shard1.to_string(),
            },
        ]
    }

    /// The golden test: fixed inputs must federate to these exact bytes.
    #[test]
    fn federation_is_byte_stable() {
        let expected = "\
# HELP bmb_cluster_scatters_total Scatter rounds issued.\n\
# TYPE bmb_cluster_scatters_total counter\n\
bmb_cluster_scatters_total{node=\"coordinator\"} 4\n\
# HELP bmb_serve_requests_total Requests handled.\n\
# TYPE bmb_serve_requests_total counter\n\
bmb_serve_requests_total{node=\"coordinator\"} 4\n\
bmb_serve_requests_total{node=\"shard0\",shard=\"0\"} 100\n\
# HELP bmb_serve_last_served_epoch Epoch of the last served snapshot.\n\
# TYPE bmb_serve_last_served_epoch gauge\n\
bmb_serve_last_served_epoch{node=\"shard0\",shard=\"0\"} 7\n\
bmb_serve_last_served_epoch{node=\"shard1\",shard=\"1\"} 5\n\
# HELP bmb_serve_request_us Request latency (us).\n\
# TYPE bmb_serve_request_us histogram\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"1\",node=\"shard0\",shard=\"0\"} 0\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"128\",node=\"shard0\",shard=\"0\"} 98\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"256\",node=\"shard0\",shard=\"0\"} 100\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"+Inf\",node=\"shard0\",shard=\"0\"} 100\n\
bmb_serve_request_us_sum{cmd=\"support_vec\",node=\"shard0\",shard=\"0\"} 9000\n\
bmb_serve_request_us_count{cmd=\"support_vec\",node=\"shard0\",shard=\"0\"} 100\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"1\",node=\"shard1\",shard=\"1\"} 0\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"64\",node=\"shard1\",shard=\"1\"} 50\n\
bmb_serve_request_us_bucket{cmd=\"support_vec\",le=\"+Inf\",node=\"shard1\",shard=\"1\"} 50\n\
bmb_serve_request_us_sum{cmd=\"support_vec\",node=\"shard1\",shard=\"1\"} 2000\n\
bmb_serve_request_us_count{cmd=\"support_vec\",node=\"shard1\",shard=\"1\"} 50\n\
# HELP bmb_cluster_replication_lag_baskets Baskets the follower trails by.\n\
# TYPE bmb_cluster_replication_lag_baskets gauge\n\
bmb_cluster_replication_lag_baskets{node=\"shard1\",shard=\"1\"} 3\n\
# HELP bmb_cluster_fed_replication_lag_max Worst replication lag (baskets) across nodes.\n\
# TYPE bmb_cluster_fed_replication_lag_max gauge\n\
bmb_cluster_fed_replication_lag_max 3\n\
# HELP bmb_cluster_fed_epoch_skew Served-epoch spread across shard nodes (max-min, with bounds).\n\
# TYPE bmb_cluster_fed_epoch_skew gauge\n\
bmb_cluster_fed_epoch_skew{bound=\"min\"} 5\n\
bmb_cluster_fed_epoch_skew{bound=\"max\"} 7\n\
bmb_cluster_fed_epoch_skew{bound=\"spread\"} 2\n\
# HELP bmb_cluster_fed_shard_p99_us Per-shard request p99 (us) from merged latency histograms.\n\
# TYPE bmb_cluster_fed_shard_p99_us gauge\n\
bmb_cluster_fed_shard_p99_us{shard=\"0\"} 256\n\
bmb_cluster_fed_shard_p99_us{shard=\"1\"} 64\n";
        assert_eq!(federate(&inputs()), expected);
    }

    #[test]
    fn relabel_handles_labeled_unlabeled_and_empty_blocks() {
        assert_eq!(
            relabel("bmb_x_total 3", "n0", None),
            "bmb_x_total{node=\"n0\"} 3"
        );
        assert_eq!(
            relabel("bmb_x_total{} 3", "n0", Some(1)),
            "bmb_x_total{node=\"n0\",shard=\"1\"} 3"
        );
        assert_eq!(
            relabel("bmb_x_total{cmd=\"chi2\"} 3", "n0", Some(1)),
            "bmb_x_total{cmd=\"chi2\",node=\"n0\",shard=\"1\"} 3"
        );
    }

    /// Scrub counters federate into one summed rollup per outcome —
    /// and only when some node exposes them, so the golden layout
    /// above is untouched for clusters that never scrub.
    #[test]
    fn scrub_rollup_sums_across_nodes_and_is_conditional() {
        let mut nodes = inputs();
        assert!(
            !federate(&nodes).contains("bmb_cluster_fed_scrub_total"),
            "no scrub samples, no rollup"
        );
        nodes[1].text.push_str(
            "# HELP bmb_basket_scrub_corruptions_total At-rest corruptions detected.\n\
             # TYPE bmb_basket_scrub_corruptions_total counter\n\
             bmb_basket_scrub_corruptions_total 2\n\
             # HELP bmb_basket_scrub_repairs_total Artifacts repaired.\n\
             # TYPE bmb_basket_scrub_repairs_total counter\n\
             bmb_basket_scrub_repairs_total 2\n",
        );
        nodes[2].text.push_str(
            "# HELP bmb_basket_scrub_corruptions_total At-rest corruptions detected.\n\
             # TYPE bmb_basket_scrub_corruptions_total counter\n\
             bmb_basket_scrub_corruptions_total 3\n\
             # HELP bmb_basket_scrub_quarantines_total Damaged artifacts quarantined.\n\
             # TYPE bmb_basket_scrub_quarantines_total counter\n\
             bmb_basket_scrub_quarantines_total 1\n",
        );
        let text = federate(&nodes);
        assert!(text.contains("bmb_cluster_fed_scrub_total{outcome=\"corruptions\"} 5"));
        assert!(text.contains("bmb_cluster_fed_scrub_total{outcome=\"repairs\"} 2"));
        assert!(text.contains("bmb_cluster_fed_scrub_total{outcome=\"quarantined\"} 1"));
    }

    #[test]
    fn p99_saturates_to_largest_finite_bound() {
        // Every observation lands in +Inf: p99 reports the largest
        // finite bound rather than an unusable sentinel.
        let text = "\
bmb_serve_request_us_bucket{cmd=\"chi2\",le=\"1\"} 0\n\
bmb_serve_request_us_bucket{cmd=\"chi2\",le=\"+Inf\"} 10\n";
        assert_eq!(shard_p99_us(text), Some(1));
        assert_eq!(shard_p99_us(""), None);
    }
}

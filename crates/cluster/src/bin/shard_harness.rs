//! Child process for the cluster SIGKILL test (`tests/cluster_kill.rs`).
//!
//! One shard of a cluster: a checkpointed directory-mode durable store
//! serving the wire protocol (including `support_vec` and
//! `replicate_pull`) on an ephemeral port. Prints `ADDR <ip:port>` and
//! `RECOVERED <epoch> <checkpoint_epoch> <baskets_recovered>` on
//! stdout, then blocks in the accept loop until killed. The parent test
//! SIGKILLs it mid-query-storm and checks the coordinator degrades
//! gracefully and the revived shard rejoins at its recovered epoch.
//!
//! Usage: `shard_harness DIR N_ITEMS SEGMENT_BYTES CHECKPOINT_EVERY [ADDR]`
//!
//! `ADDR` pins the bind address — the kill test revives a shard on the
//! port the coordinator already routes to (default `127.0.0.1:0`).

use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::wal::{DurabilityConfig, DurableStore};
use bmb_basket::{FsDir, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::{Checkpointer, CheckpointerConfig, Server, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fixed, bind_addr) = match args.as_slice() {
        [a, b, c, d] => ([a, b, c, d], "127.0.0.1:0".to_string()),
        [a, b, c, d, addr] => ([a, b, c, d], addr.clone()),
        _ => {
            eprintln!("usage: shard_harness DIR N_ITEMS SEGMENT_BYTES CHECKPOINT_EVERY [ADDR]");
            std::process::exit(2);
        }
    };
    let [dir, n_items, segment_bytes, checkpoint_every] = fixed;
    let n_items: usize = n_items.parse().expect("N_ITEMS must be an integer");
    let segment_bytes: u64 = segment_bytes
        .parse()
        .expect("SEGMENT_BYTES must be an integer");
    let checkpoint_every: u64 = checkpoint_every
        .parse()
        .expect("CHECKPOINT_EVERY must be an integer");

    let fs = FsDir::open(Path::new(dir)).expect("open shard dir");
    let (durable, report) = DurableStore::open_dir(
        Box::new(fs),
        n_items,
        StoreConfig {
            segment_capacity: 3,
        },
        DurabilityConfig {
            segment_bytes,
            retain_checkpoints: 2,
        },
    )
    .expect("recover shard store");
    let durable = Arc::new(durable);

    let engine = Arc::new(QueryEngine::new(
        Arc::clone(durable.store()),
        EngineConfig::default(),
    ));
    let config = ServerConfig {
        addr: bind_addr,
        ..ServerConfig::default()
    };
    let server = Server::bind(engine, config)
        .expect("bind")
        .with_durable_store(Arc::clone(&durable));
    let addr = server.local_addr();

    let _checkpointer = Checkpointer::spawn(
        Arc::clone(&durable),
        CheckpointerConfig {
            interval: None,
            every_records: Some(checkpoint_every),
            poll_interval: Duration::from_millis(2),
        },
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "ADDR {addr}").expect("stdout");
    writeln!(
        out,
        "RECOVERED {} {} {}",
        report.epoch, report.checkpoint_epoch, report.baskets_recovered
    )
    .expect("stdout");
    out.flush().expect("stdout flush");
    drop(out);

    server.run().expect("accept loop");
}

//! The coordinator: scatter support requests, gather integer vectors,
//! evaluate statistics centrally.
//!
//! The coordinator speaks the same line-delimited JSON protocol as a
//! standalone server — clients cannot tell the difference — but owns no
//! baskets. Every query becomes one `support_vec` scatter: each shard
//! pins a single snapshot and answers raw integer supports for the
//! query's subset lattice (in [`bmb_core::subset_itemsets`] mask
//! order). Supports are *additive* over any partition of the baskets,
//! so the gathered vectors merge by plain `u64` addition, and the
//! merged vector feeds the exact Möbius inversion and `Chi2Test` code
//! path a single store uses ([`bmb_core::table_from_subset_supports`]).
//! That is the whole bit-identity argument: integers merge exactly, and
//! all floating-point work happens once, centrally, in the same order.
//!
//! Every response carries an **epoch vector** `[e0, …, eN-1]` — the
//! per-shard epochs the answer was computed at — alongside the scalar
//! `epoch`, which is their sum (so a 1-shard cluster's scalar epoch
//! matches a plain server's byte for byte).
//!
//! Failure handling: a shard whose transport dies (after the retry
//! client's backoff) is **marked down**; if a follower is configured it
//! is **promoted** and reads route to it; otherwise queries answer a
//! retryable error. A marked-down primary is re-probed after a
//! cooldown and **rejoins** when it answers again.
//!
//! Generation fencing (on by default): the coordinator tracks the
//! highest generation it has observed per shard slot and stamps it as
//! `"gen"` on every request. A shard at a newer generation fences the
//! request (the coordinator adopts the newer generation and retries);
//! a *response* carrying an older generation than the slot's is
//! rejected as stale — a partitioned-away old primary can never get an
//! answer accepted. After a promotion, the coordinator periodically
//! sends the old primary a `demote` naming the promoted follower; a
//! healed old primary adopts the newer generation, tails the new
//! primary's WAL, and only serves again once caught up.
//!
//! Lock discipline: `health` (per-shard state), `addr` (endpoint
//! address) and `client` (per-endpoint retry client) are never held
//! together; requests hold only the one `client` lock of the endpoint
//! they speak to. The declared order is a contract for future code
//! that ever needs to nest them.
//! // lock:order(health < addr < client)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use bmb_basket::{ContingencyTable, ItemId, Itemset};
use bmb_core::{
    merge_support_vectors, mine_with_counter, subset_itemsets, table_from_subset_supports,
    Chi2Answer, EngineConfig, EngineError, InterestAnswer, Marginals, MinerConfig, PairCorrelation,
    SupportSpec, MAX_QUERY_DIMS,
};
use bmb_obs::{Registry, SpanRecord, SpanRing, TraceId, DEFAULT_SPAN_CAPACITY};
use bmb_serve::json::Value;
use bmb_serve::protocol::{border_value, chi2_value, interest_value, pair_value, trace_value};
use bmb_serve::{
    ClientError, ErrorCategory, Request, RetryClient, RetryPolicy, ServerMetrics, Service,
    ServiceCtx, ServiceFailure,
};
use bmb_stats::{Chi2Test, InterestReport, SignificanceLevel};

use crate::clock::{Clock, SystemClock};
use crate::metrics::ClusterMetrics;
use crate::partition::{PartitionStrategy, Partitioner, DEFAULT_SEED};

/// One shard's endpoints: the primary, and an optional warm standby.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// The primary's `host:port`.
    pub addr: String,
    /// A follower replicating this shard's WAL, if provisioned.
    pub follower: Option<String>,
}

impl ShardSpec {
    /// A shard with no follower.
    pub fn primary(addr: impl Into<String>) -> ShardSpec {
        ShardSpec {
            addr: addr.into(),
            follower: None,
        }
    }

    /// Attaches a follower address.
    pub fn with_follower(mut self, addr: impl Into<String>) -> ShardSpec {
        self.follower = Some(addr.into());
        self
    }
}

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// The cluster's fixed item-space size (every shard is provisioned
    /// with the same one).
    pub n_items: usize,
    /// The shards, in partition order (index = shard id).
    pub shards: Vec<ShardSpec>,
    /// Hash seed for the partitioner (pin it so restarts route alike).
    pub seed: u64,
    /// Basket-to-shard routing strategy.
    pub strategy: PartitionStrategy,
    /// Statistical parameters — must mirror the shards' engines so the
    /// central `Chi2Test` is the one a single store would run.
    pub engine: EngineConfig,
    /// Retry pacing for shard requests.
    pub retry: RetryPolicy,
    /// Socket timeout on shard connections (zero disables).
    pub request_timeout: Duration,
    /// How long a marked-down primary rests before the next re-probe.
    pub probe_cooldown: Duration,
    /// Generation fencing: stamp requests with the slot's highest
    /// observed generation, reject stale responses, and demote healed
    /// old primaries. On by default; disable only to reproduce the
    /// split-brain failure mode in tests.
    pub fencing: bool,
}

impl CoordinatorConfig {
    /// A default-tuned config over primaries only.
    pub fn new(n_items: usize, shard_addrs: impl IntoIterator<Item = String>) -> Self {
        CoordinatorConfig {
            n_items,
            shards: shard_addrs.into_iter().map(ShardSpec::primary).collect(),
            seed: DEFAULT_SEED,
            strategy: PartitionStrategy::Hash,
            engine: EngineConfig::default(),
            retry: RetryPolicy::default(),
            request_timeout: Duration::from_secs(5),
            probe_cooldown: Duration::from_secs(1),
            fencing: true,
        }
    }
}

/// Mutable health state of one shard (guarded by the `health` lock).
#[derive(Debug, Default)]
struct Health {
    /// When the primary was marked down; `None` while healthy. After a
    /// promotion this doubles as the demote-probe pacing timer.
    down_since: Option<Instant>,
    /// Whether reads are routed to the promoted follower.
    promoted: bool,
    /// The highest generation observed for this slot (0 = unknown;
    /// requests are only stamped once a generation is known).
    generation: u64,
    /// Whether the one-time startup reconciliation probe has run.
    probed: bool,
    /// Whether the old primary has acked a `demote` since promotion.
    demoted: bool,
    /// The last transport/fence error from this shard, for stats.
    last_error: Option<String>,
    /// Primary failures since the last success, for stats.
    consecutive_failures: u32,
    /// Integrity totals absorbed from this slot's scrub reports.
    scrub: ScrubTotals,
}

/// Running totals from the scrub reports a slot's endpoints returned
/// (guarded by the `health` lock; surfaced per shard in `/stats`).
#[derive(Clone, Copy, Debug, Default)]
struct ScrubTotals {
    scrubbed: u64,
    corruptions: u64,
    repairs: u64,
    quarantined: u64,
}

impl ScrubTotals {
    fn absorb(&mut self, report: &Value) {
        let field = |key: &str| report.get(key).and_then(Value::as_u64).unwrap_or(0);
        self.scrubbed += field("scrubbed");
        self.corruptions += field("corruptions");
        self.repairs += field("repairs");
        self.quarantined += field("quarantined");
    }
}

/// One endpoint (primary or follower) with its own retry client. The
/// address is mutable so an operator can re-point a revived shard that
/// came back on a different port ([`CoordinatorService::reconnect_shard`]);
/// the `addr` and `client` locks are never held together.
struct Endpoint {
    addr: Mutex<String>,
    client: Mutex<RetryClient>,
}

impl Endpoint {
    fn new(addr: &str, retry: &RetryPolicy, timeout: Duration) -> Endpoint {
        Endpoint {
            addr: Mutex::new(addr.to_string()),
            client: Mutex::new(RetryClient::new(addr, retry.clone()).with_timeout(timeout)),
        }
    }

    fn addr(&self) -> String {
        lock(&self.addr).clone()
    }
}

/// One shard: endpoints plus health.
struct ShardState {
    primary: Endpoint,
    follower: Option<Endpoint>,
    health: Mutex<Health>,
}

/// The gathered result of one scatter round.
struct Gather {
    /// Merged (summed) supports, in the request's itemset order.
    supports: Vec<u64>,
    /// Total baskets across shards.
    n: u64,
    /// Per-shard epochs, in shard order.
    epochs: Vec<u64>,
}

impl Gather {
    fn epoch_sum(&self) -> u64 {
        self.epochs.iter().sum()
    }
}

/// The scatter-gather [`Service`]: serves the single-store wire
/// protocol over N shards.
pub struct CoordinatorService {
    config: CoordinatorConfig,
    partitioner: Partitioner,
    test: Chi2Test,
    shards: Vec<ShardState>,
    /// Monotonic basket-id source for the partitioner.
    next_basket: AtomicU64,
    /// Completed client spans: one `rpc:<cmd>` span per traced
    /// sub-request the coordinator sent a shard. Merged with the
    /// serving layer's own server spans by the `trace` command.
    client_spans: SpanRing,
    metrics: ClusterMetrics,
    /// Time source for mark-down/cooldown arithmetic (tests inject a
    /// [`crate::clock::TestClock`]).
    clock: Arc<dyn Clock>,
}

impl CoordinatorService {
    /// A coordinator over `config`'s shards. No connections are opened
    /// until the first request.
    pub fn new(config: CoordinatorConfig) -> CoordinatorService {
        let shards = config
            .shards
            .iter()
            .map(|spec| ShardState {
                primary: Endpoint::new(&spec.addr, &config.retry, config.request_timeout),
                follower: spec
                    .follower
                    .as_deref()
                    .map(|addr| Endpoint::new(addr, &config.retry, config.request_timeout)),
                health: Mutex::new(Health::default()),
            })
            .collect();
        let partitioner = match config.strategy {
            PartitionStrategy::Hash => Partitioner::with_seed(config.shards.len(), config.seed),
            PartitionStrategy::RoundRobin => Partitioner::round_robin(config.shards.len()),
        };
        let test = Chi2Test {
            level: SignificanceLevel::new(config.engine.alpha),
            df: config.engine.df,
            low_expectation_cutoff: config.engine.low_expectation_cutoff,
        };
        CoordinatorService {
            partitioner,
            test,
            shards,
            next_basket: AtomicU64::new(0),
            client_spans: SpanRing::new(DEFAULT_SPAN_CAPACITY),
            metrics: ClusterMetrics::new(),
            clock: Arc::new(SystemClock),
            config,
        }
    }

    /// Replaces the time source (tests drive cooldowns explicitly).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> CoordinatorService {
        self.clock = clock;
        self
    }

    /// The coordinator's metrics (scatters, mark-downs, promotions).
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The partitioner in force.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Re-points shard `index`'s primary at `addr` — the rejoin hook
    /// for a revived shard that came back on a different port. The
    /// mark-down state is deliberately left alone: the next probe (once
    /// the cooldown lapses) verifies the new address actually answers
    /// and counts the rejoin.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn reconnect_shard(&self, index: usize, addr: &str) {
        let endpoint = &self.shards[index].primary;
        *lock(&endpoint.addr) = addr.to_string();
        *lock(&endpoint.client) = RetryClient::new(addr, self.config.retry.clone())
            .with_timeout(self.config.request_timeout);
    }

    // ---- shard transport -------------------------------------------------

    /// Sends one request to an endpoint. I/O happens under the
    /// endpoint's own `client` lock (one lock, never nested).
    fn request_on(&self, endpoint: &Endpoint, request: &Value) -> Result<Value, ClientError> {
        self.metrics.fanout.inc();
        let mut client = lock(&endpoint.client);
        client.request(request) // lock:allow(io)
    }

    /// [`Self::request_on`] with generation fencing: the request is
    /// stamped with the slot's highest observed generation, and a
    /// response carrying an *older* generation is rejected as stale (a
    /// partitioned-away old primary can never get an answer accepted).
    /// Newer response generations are adopted into the slot.
    fn fenced_request_on(
        &self,
        endpoint: &Endpoint,
        shard: &ShardState,
        request: &Value,
    ) -> Result<Value, ClientError> {
        if !self.config.fencing {
            return self.request_on(endpoint, request);
        }
        let slot_gen = {
            let health = lock(&shard.health);
            health.generation
        };
        let value = if slot_gen > 0 {
            let stamped = request.clone().with("gen", Value::Int(slot_gen as i64));
            self.request_on(endpoint, &stamped)?
        } else {
            self.request_on(endpoint, request)?
        };
        if let Some(response_gen) = value.get("gen").and_then(Value::as_u64) {
            let stale = {
                let mut health = lock(&shard.health);
                if response_gen < health.generation {
                    true
                } else {
                    health.generation = response_gen;
                    false
                }
            };
            if stale {
                self.metrics.stale_responses.inc();
                self.event("stale shard response rejected", &endpoint.addr());
                return Err(ClientError::Protocol(format!(
                    "stale generation: response gen {response_gen} is below slot gen {slot_gen}"
                )));
            }
        }
        Ok(value)
    }

    /// One-time startup reconciliation for a slot with a follower: the
    /// coordinator restarts with amnesia, so before the first request
    /// it probes both endpoints, adopts the highest generation it sees,
    /// and routes reads to the follower if the follower answers as the
    /// slot's primary at the highest generation (a failover this
    /// coordinator never witnessed).
    fn reconcile_slot(&self, index: usize) {
        let shard = &self.shards[index];
        let Some(follower) = &shard.follower else {
            return;
        };
        {
            let mut health = lock(&shard.health);
            if health.probed {
                return;
            }
            health.probed = true;
        }
        let ping = Value::object().with("cmd", Value::Str("stats".to_string()));
        let view = |answer: Option<Value>| -> (u64, Option<String>) {
            match answer {
                Some(value) => (
                    value.get("gen").and_then(Value::as_u64).unwrap_or(0),
                    value
                        .get("role")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                ),
                None => (0, None),
            }
        };
        let (primary_gen, primary_role) = view(self.request_on(&shard.primary, &ping).ok());
        let (follower_gen, follower_role) = view(self.request_on(follower, &ping).ok());
        let adopted_promotion = {
            let mut health = lock(&shard.health);
            health.generation = health.generation.max(primary_gen).max(follower_gen);
            let follower_leads =
                follower_role.as_deref() == Some("primary") && follower_gen >= primary_gen;
            if follower_leads && !health.promoted {
                health.promoted = true;
                health.down_since = Some(self.clock.now());
                if primary_role.as_deref() == Some("follower") {
                    health.demoted = true;
                }
                true
            } else {
                false
            }
        };
        if adopted_promotion {
            self.event("adopted prior failover at startup", &follower.addr());
        }
    }

    /// After a promotion: periodically (paced by `probe_cooldown`) ask
    /// the old primary to demote itself to a follower of the promoted
    /// replacement. A healed old primary acks, adopts the newer
    /// generation, and catches up over `replicate_pull` before serving;
    /// a still-dead one is retried after the next cooldown.
    fn maybe_demote_stale_primary(&self, index: usize) {
        let shard = &self.shards[index];
        let Some(follower) = &shard.follower else {
            return;
        };
        let now = self.clock.now();
        let due = {
            let mut health = lock(&shard.health);
            if !health.promoted || health.demoted {
                false
            } else {
                let due = health.down_since.is_none_or(|since| {
                    now.saturating_duration_since(since) >= self.config.probe_cooldown
                });
                if due {
                    health.down_since = Some(now);
                }
                due
            }
        };
        if !due {
            return;
        }
        let request = Value::object()
            .with("cmd", Value::Str("demote".to_string()))
            .with("primary", Value::Str(follower.addr()));
        if self
            .fenced_request_on(&shard.primary, shard, &request)
            .is_ok()
        {
            lock(&shard.health).demoted = true;
            self.metrics.demotions.inc();
            self.event("stale primary demoted", &shard.primary.addr());
        }
    }

    /// Sends one request to a shard, handling generation fencing,
    /// mark-down, follower promotion, demotion of healed old primaries,
    /// and re-probe rejoin. When the calling thread carries a trace
    /// context, the sub-request is stamped with `"trace"` and a fresh
    /// client span id as `"pspan"`, and the client span is recorded
    /// into [`Self::client_spans`] — the coordinator's half of the
    /// cross-node trace tree.
    fn shard_request(&self, index: usize, request: &Value) -> Result<Value, ServiceFailure> {
        let trace = bmb_obs::trace::current_trace();
        let cmd = request.get("cmd").and_then(Value::as_str).unwrap_or("?");
        // A `trace` sub-request's own "trace" field is the query
        // *target*; stamping the context over it would corrupt the
        // query, so trace fan-out travels unstamped.
        if !trace.is_set() || cmd == "trace" {
            return self.shard_request_inner(index, request);
        }
        let span_id = bmb_obs::next_span_id();
        let start_unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let start = Instant::now();
        let stamped = request
            .clone()
            .with("trace", Value::Str(trace.to_string()))
            .with("pspan", Value::Str(format!("{span_id:016x}")));
        let result = self.shard_request_inner(index, &stamped);
        let outcome = match &result {
            Ok(_) => "ok",
            Err(failure) => match failure.category {
                ErrorCategory::Overload | ErrorCategory::Deadline => "retryable",
                _ => "error",
            },
        };
        self.client_spans.record(SpanRecord {
            name: format!("rpc:{cmd}"),
            trace: trace.as_u64(),
            span: span_id,
            parent: bmb_obs::trace::current_span(),
            start_unix_us,
            duration_us: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
            node: "coordinator".to_string(),
            shard: index as i64,
            outcome: outcome.to_string(),
        });
        result
    }

    fn shard_request_inner(&self, index: usize, request: &Value) -> Result<Value, ServiceFailure> {
        let shard = &self.shards[index];
        if self.config.fencing {
            self.reconcile_slot(index);
        }
        let (promoted, resting) = {
            let health = lock(&shard.health);
            let resting = health.down_since.is_some_and(|since| {
                self.clock.now().saturating_duration_since(since) < self.config.probe_cooldown
            });
            (health.promoted, resting)
        };
        if !promoted && !resting {
            match self.fenced_request_on(&shard.primary, shard, request) {
                Ok(value) => {
                    let rejoined = {
                        let mut health = lock(&shard.health);
                        health.consecutive_failures = 0;
                        health.last_error = None;
                        health.down_since.take().is_some()
                    };
                    if rejoined {
                        self.metrics.rejoins.inc();
                        self.event("shard rejoined", &shard.primary.addr());
                    }
                    return Ok(value);
                }
                // The shard is alive but ahead of this coordinator:
                // adopt its generation and let the caller retry at it.
                Err(ClientError::Fenced {
                    generation,
                    message,
                }) => {
                    self.metrics.fenced_requests.inc();
                    {
                        let mut health = lock(&shard.health);
                        health.generation = health.generation.max(generation);
                        health.last_error = Some(message.clone());
                    }
                    return Err(ServiceFailure::unavailable(format!(
                        "shard {} fenced the request at generation {generation}: {message}",
                        shard.primary.addr()
                    )));
                }
                // The shard answered — it is alive; surface its verdict.
                Err(ClientError::Server(message)) => return Err(ServiceFailure::other(message)),
                Err(ClientError::Retryable(message)) => {
                    return Err(ServiceFailure::unavailable(message))
                }
                Err(e) => {
                    self.metrics.shard_errors.inc();
                    let fresh_markdown = {
                        let mut health = lock(&shard.health);
                        health.consecutive_failures = health.consecutive_failures.saturating_add(1);
                        health.last_error = Some(e.to_string());
                        if health.down_since.is_none() {
                            health.down_since = Some(self.clock.now());
                            true
                        } else {
                            false
                        }
                    };
                    if fresh_markdown {
                        self.metrics.markdowns.inc();
                        self.event("shard marked down", &shard.primary.addr());
                    }
                }
            }
        }
        // Primary is unusable: promote (once) and read from the follower.
        let Some(follower) = &shard.follower else {
            return Err(ServiceFailure::unavailable(format!(
                "shard {} unreachable and no follower configured",
                shard.primary.addr()
            )));
        };
        if !lock(&shard.health).promoted {
            // The fenced path stamps the slot's generation as the floor
            // the follower must bump past, and adopts the bumped
            // generation from the ack — from here on the old primary's
            // responses are stale by construction.
            let promote = Value::object().with("cmd", Value::Str("promote".to_string()));
            match self.fenced_request_on(follower, shard, &promote) {
                Ok(_) => {
                    let first = {
                        let mut health = lock(&shard.health);
                        let first = !health.promoted;
                        health.promoted = true;
                        first
                    };
                    if first {
                        self.metrics.promotions.inc();
                        self.event("follower promoted", &follower.addr());
                    }
                }
                Err(e) => {
                    return Err(ServiceFailure::unavailable(format!(
                        "shard {} down and follower {} not promotable: {e}",
                        shard.primary.addr(),
                        follower.addr()
                    )))
                }
            }
        }
        if self.config.fencing {
            self.maybe_demote_stale_primary(index);
        }
        match self.fenced_request_on(follower, shard, request) {
            Ok(value) => Ok(value),
            Err(ClientError::Server(message)) => Err(ServiceFailure::other(message)),
            Err(e) => Err(ServiceFailure::unavailable(format!(
                "promoted follower {} failed: {e}",
                follower.addr()
            ))),
        }
    }

    fn event(&self, message: &'static str, addr: &str) {
        bmb_obs::events().emit(bmb_obs::Severity::Warn, message, &[("addr", addr)]);
    }

    // ---- scatter-gather --------------------------------------------------

    /// One scatter round: every shard answers supports for `subsets`
    /// (in order) off a single pinned snapshot; the vectors are summed.
    fn scatter_supports(&self, subsets: &[Vec<ItemId>]) -> Result<Gather, ServiceFailure> {
        self.metrics.scatters.inc();
        let itemsets: Vec<Value> = subsets
            .iter()
            .map(|set| Value::Array(set.iter().map(|item| Value::Int(item.0 as i64)).collect()))
            .collect();
        let request = Value::object()
            .with("cmd", Value::Str("support_vec".to_string()))
            .with("itemsets", Value::Array(itemsets));
        // Thread-locals don't cross `scope.spawn`: capture the trace
        // context here and re-establish it inside each scatter thread
        // so per-shard client spans parent onto the server span.
        let trace = bmb_obs::trace::current_trace();
        let parent_span = bmb_obs::trace::current_span();
        let answers: Vec<Result<Value, ServiceFailure>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|index| {
                    let request = &request;
                    scope.spawn(move || {
                        bmb_obs::trace::set_current_trace(trace);
                        bmb_obs::trace::set_current_span(parent_span);
                        self.shard_request(index, request)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle
                        .join()
                        .unwrap_or_else(|_| Err(ServiceFailure::other("scatter worker panicked")))
                })
                .collect()
        });
        let mut supports = vec![0u64; subsets.len()];
        let mut n = 0u64;
        let mut epochs = Vec::with_capacity(self.shards.len());
        for answer in answers {
            let value = answer?;
            let shard = parse_support_answer(&value, subsets.len())?;
            merge_support_vectors(&mut supports, &shard.supports);
            n += shard.n;
            epochs.push(shard.epoch);
        }
        Ok(Gather {
            supports,
            n,
            epochs,
        })
    }

    // ---- central evaluation ----------------------------------------------

    /// Validates an itemset the way a shard engine would, up to the
    /// checks that need no snapshot (empty, oversized).
    fn local_validate(&self, set: &Itemset) -> Result<(), EngineError> {
        if set.is_empty() {
            return Err(EngineError::EmptyItemset);
        }
        if set.len() > MAX_QUERY_DIMS {
            return Err(EngineError::TooManyItems { len: set.len() });
        }
        Ok(())
    }

    /// The first out-of-range item of `set`, mirroring the engine's
    /// iteration order, or `None` when all are in range.
    fn out_of_range(&self, set: &Itemset) -> Option<ItemId> {
        set.items()
            .iter()
            .copied()
            .find(|item| item.index() >= self.config.n_items)
    }

    /// Post-scatter validation: the engine reports `EmptySnapshot`
    /// before `ItemOutOfRange`, so both wait until `n` is known.
    fn snapshot_validate(&self, set: &Itemset, n: u64) -> Result<(), EngineError> {
        if n == 0 {
            return Err(EngineError::EmptySnapshot);
        }
        if let Some(item) = self.out_of_range(set) {
            return Err(EngineError::ItemOutOfRange {
                item,
                n_items: self.config.n_items,
            });
        }
        Ok(())
    }

    /// Scatter + merge + Möbius for one itemset; the shared core of
    /// `chi2` and `interest`.
    fn gathered_table(&self, set: &Itemset) -> Result<(ContingencyTable, Gather), ServiceFailure> {
        self.local_validate(set).map_err(engine_failure)?;
        // Out-of-range items never reach the shards (their stores would
        // reject them); scatter an empty vector just to learn n/epochs.
        let subsets = if self.out_of_range(set).is_none() {
            subset_itemsets(set)
        } else {
            Vec::new()
        };
        let gather = self.scatter_supports(&subsets)?;
        self.snapshot_validate(set, gather.n)
            .map_err(engine_failure)?;
        let table = table_from_subset_supports(set, &gather.supports);
        Ok((table, gather))
    }

    /// Central chi-squared: identical statistic bits to a single store
    /// holding all baskets at the same epoch-vector cut.
    fn central_chi2(&self, items: Vec<u32>) -> Result<(Chi2Answer, Vec<u64>), ServiceFailure> {
        let set = Itemset::from_ids(items);
        let (table, gather) = self.gathered_table(&set)?;
        let full_cell = (1u32 << set.len()) - 1;
        let answer = Chi2Answer {
            epoch: gather.epoch_sum(),
            support: table.observed(full_cell),
            outcome: self.test.test_dense(&table),
            itemset: set,
        };
        Ok((answer, gather.epochs))
    }

    fn dispatch_chi2(
        &self,
        items: Vec<u32>,
        ctx: &ServiceCtx<'_>,
    ) -> Result<Value, ServiceFailure> {
        let (answer, epochs) = self.central_chi2(items)?;
        ctx.metrics.record_served_epoch(answer.epoch);
        Ok(chi2_value(&answer).with("epochs", epochs_value(&epochs)))
    }

    fn dispatch_chi2_batch(
        &self,
        itemsets: Vec<Vec<u32>>,
        ctx: &ServiceCtx<'_>,
    ) -> Result<Value, ServiceFailure> {
        // One scatter for the whole batch: concatenate every valid
        // itemset's subset lattice, then slice the merged vector back
        // apart. All answers share one epoch vector by construction.
        let sets: Vec<Result<Itemset, EngineError>> = itemsets
            .into_iter()
            .map(|items| {
                let set = Itemset::from_ids(items);
                self.local_validate(&set).map(|()| set)
            })
            .collect();
        let mut subsets: Vec<Vec<ItemId>> = Vec::new();
        let mut spans: Vec<Option<(usize, usize)>> = Vec::with_capacity(sets.len());
        for set in &sets {
            match set {
                Ok(set) if self.out_of_range(set).is_none() => {
                    let lattice = subset_itemsets(set);
                    let start = subsets.len();
                    subsets.extend(lattice);
                    spans.push(Some((start, subsets.len())));
                }
                _ => spans.push(None),
            }
        }
        let gather = self.scatter_supports(&subsets)?;
        if ctx.over_deadline() {
            return Err(ServiceFailure::deadline(ctx.config.request_deadline));
        }
        let epoch = gather.epoch_sum();
        ctx.metrics.record_served_epoch(epoch);
        let mut results: Vec<Value> = Vec::with_capacity(sets.len());
        for (set, span) in sets.into_iter().zip(spans) {
            results.push(match self.batch_entry(set, span, &gather) {
                Ok(answer) => chi2_value(&answer),
                Err(e) => Value::object().with("error", Value::Str(e.to_string())),
            });
        }
        Ok(Value::object()
            .with("epoch", Value::Int(epoch as i64))
            .with("results", Value::Array(results))
            .with("epochs", epochs_value(&gather.epochs)))
    }

    /// One `chi2_batch` entry, with the engine's error precedence.
    fn batch_entry(
        &self,
        set: Result<Itemset, EngineError>,
        span: Option<(usize, usize)>,
        gather: &Gather,
    ) -> Result<Chi2Answer, EngineError> {
        let set = set?;
        self.snapshot_validate(&set, gather.n)?;
        // In-range and validated, so a span exists; an empty slice only
        // arises for out-of-range sets, rejected just above.
        let supports = match span {
            Some((start, end)) => &gather.supports[start..end],
            None => &[],
        };
        let table = table_from_subset_supports(&set, supports);
        let full_cell = (1u32 << set.len()) - 1;
        Ok(Chi2Answer {
            epoch: gather.epoch_sum(),
            support: table.observed(full_cell),
            outcome: self.test.test_dense(&table),
            itemset: set,
        })
    }

    fn dispatch_interest(
        &self,
        items: Vec<u32>,
        cell: u32,
        ctx: &ServiceCtx<'_>,
    ) -> Result<Value, ServiceFailure> {
        let set = Itemset::from_ids(items);
        let (table, gather) = self.gathered_table(&set)?;
        if cell as usize >= table.n_cells() {
            return Err(engine_failure(EngineError::CellOutOfRange {
                cell,
                dims: table.dims(),
            }));
        }
        let epoch = gather.epoch_sum();
        ctx.metrics.record_served_epoch(epoch);
        let report = InterestReport::analyze(&table);
        let info = report.cells()[cell as usize];
        let answer = InterestAnswer {
            itemset: set,
            cell,
            epoch,
            observed: info.observed,
            expected: info.expected,
            interest: info.interest,
        };
        Ok(interest_value(&answer).with("epochs", epochs_value(&gather.epochs)))
    }

    fn dispatch_topk(&self, k: usize, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        // One scatter: all singletons, then all pairs in (a, b) order —
        // the same enumeration the engine's pair sweep uses.
        let n_items = self.config.n_items;
        let mut subsets: Vec<Vec<ItemId>> =
            (0..n_items).map(|item| vec![ItemId(item as u32)]).collect();
        for a in 0..n_items {
            for b in a + 1..n_items {
                subsets.push(vec![ItemId(a as u32), ItemId(b as u32)]);
            }
        }
        let gather = self.scatter_supports(&subsets)?;
        if gather.n == 0 {
            return Err(engine_failure(EngineError::EmptySnapshot));
        }
        let n = gather.n;
        let item_counts = &gather.supports[..n_items];
        let mut rows: Vec<PairCorrelation> = Vec::new();
        let mut next_pair = n_items;
        for a in 0..n_items {
            for b in a + 1..n_items {
                let set = Itemset::from_ids([a as u32, b as u32]);
                let s_ab = gather.supports[next_pair];
                next_pair += 1;
                let (o_a, o_b) = (item_counts[a], item_counts[b]);
                // Cell masks: bit0 = a present, bit1 = b present — the
                // engine's exact construction, on merged integers.
                let counts = vec![(n + s_ab) - o_a - o_b, o_a - s_ab, o_b - s_ab, s_ab];
                let table = ContingencyTable::from_counts(set, counts);
                rows.push(PairCorrelation::from_table(&table, &self.test));
            }
        }
        rows.sort_unstable_by(|x, y| {
            y.chi2
                .statistic
                .total_cmp(&x.chi2.statistic)
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        rows.truncate(k);
        let epoch = gather.epoch_sum();
        ctx.metrics.record_served_epoch(epoch);
        Ok(Value::object()
            .with("epoch", Value::Int(epoch as i64))
            .with("pairs", Value::Array(rows.iter().map(pair_value).collect()))
            .with("epochs", epochs_value(&gather.epochs)))
    }

    fn dispatch_border(
        &self,
        support: Option<f64>,
        support_fraction: Option<f64>,
        max_level: Option<usize>,
        ctx: &ServiceCtx<'_>,
    ) -> Result<Value, ServiceFailure> {
        // Argument validation mirrors the standalone server verbatim.
        let support = support.unwrap_or(0.01);
        if !(0.0..=1.0).contains(&support) {
            return Err(ServiceFailure::other(format!(
                "'support' must be in [0,1], got {support}"
            )));
        }
        let fraction = support_fraction.unwrap_or(0.3);
        if !(fraction > 0.25 && fraction <= 1.0) {
            return Err(ServiceFailure::other(format!(
                "'support_fraction' must be in (0.25,1], got {fraction}"
            )));
        }
        let config = MinerConfig {
            support: SupportSpec::Fraction(support),
            support_fraction: fraction,
            max_level: max_level.unwrap_or(usize::MAX),
            ..MinerConfig::default()
        };
        // Marginals from a singleton scatter; the level-wise miner then
        // counts each candidate level with one scatter per level. The
        // epoch vector must hold still across every scatter, or the
        // levels would mix inconsistent snapshots — gather-then-Möbius
        // is only exact at one cut.
        let singletons: Vec<Vec<ItemId>> = (0..self.config.n_items)
            .map(|item| vec![ItemId(item as u32)])
            .collect();
        let first = self.scatter_supports(&singletons)?;
        if first.n == 0 {
            return Err(engine_failure(EngineError::EmptySnapshot));
        }
        let epochs = first.epochs.clone();
        let marginals = Marginals {
            n_baskets: first.n,
            item_counts: first.supports,
        };
        let count = |candidates: &[Itemset]| -> Result<Vec<u64>, ServiceFailure> {
            let subsets: Vec<Vec<ItemId>> =
                candidates.iter().map(|set| set.items().to_vec()).collect();
            let level = self.scatter_supports(&subsets)?;
            if level.epochs != epochs {
                return Err(ServiceFailure::unavailable(
                    "snapshot moved during border evaluation (concurrent ingest); retry",
                ));
            }
            if ctx.over_deadline() {
                return Err(ServiceFailure::deadline(ctx.config.request_deadline));
            }
            Ok(level.supports)
        };
        let result = mine_with_counter(&marginals, count, &config)?;
        let epoch: u64 = epochs.iter().sum();
        ctx.metrics.record_served_epoch(epoch);
        Ok(border_value(&result, epoch).with("epochs", epochs_value(&epochs)))
    }

    fn dispatch_ingest(&self, baskets: Vec<Vec<u32>>) -> Result<Value, ServiceFailure> {
        let total = baskets.len();
        // With fencing, a promoted follower *is* the slot's primary at
        // a newer generation and accepts writes. Without fencing
        // (legacy one-way promote), it is a read-only survivor: reject
        // early rather than fork history.
        if !self.config.fencing {
            for (index, shard) in self.shards.iter().enumerate() {
                if lock(&shard.health).promoted {
                    return Err(ServiceFailure::unavailable(format!(
                        "shard {index} lost its primary; ingest is unavailable until it is restored"
                    )));
                }
            }
        }
        let first_id = self.next_basket.fetch_add(total as u64, Ordering::Relaxed);
        let mut per_shard: Vec<Vec<Value>> = vec![Vec::new(); self.shards.len()];
        for (offset, basket) in baskets.into_iter().enumerate() {
            let shard = self.partitioner.shard_of(first_id + offset as u64);
            per_shard[shard].push(Value::Array(
                basket.into_iter().map(|id| Value::Int(id as i64)).collect(),
            ));
        }
        for (index, routed) in per_shard.into_iter().enumerate() {
            if routed.is_empty() {
                continue;
            }
            let request = Value::object()
                .with("cmd", Value::Str("ingest".to_string()))
                .with("baskets", Value::Array(routed));
            // Sequential, and NOT retried past the client's own policy:
            // ingest is not idempotent, and a mid-batch failure must
            // surface as a hard error naming the partial application.
            self.shard_request(index, &request).map_err(|e| {
                ServiceFailure::io(format!(
                    "ingest partially applied: shard {index} failed ({})",
                    e.message
                ))
            })?;
        }
        // Fresh epoch vector after the writes landed.
        let gather = self.scatter_supports(&[])?;
        Ok(Value::object()
            .with("ingested", Value::Int(total as i64))
            .with("epoch", Value::Int(gather.epoch_sum() as i64))
            .with("epochs", epochs_value(&gather.epochs)))
    }

    fn dispatch_stats(&self, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        let metrics = ctx.metrics.snapshot();
        let ping = Value::object().with("cmd", Value::Str("stats".to_string()));
        let mut shard_rows: Vec<Value> = Vec::with_capacity(self.shards.len());
        let mut epoch_sum = 0u64;
        let mut epochs: Vec<Value> = Vec::with_capacity(self.shards.len());
        for (index, shard) in self.shards.iter().enumerate() {
            let answer = self.shard_request(index, &ping);
            let (up, epoch) = match &answer {
                Ok(value) => (true, value.get("epoch").and_then(Value::as_u64)),
                Err(_) => (false, None),
            };
            if let Some(epoch) = epoch {
                epoch_sum += epoch;
                epochs.push(Value::Int(epoch as i64));
            } else {
                epochs.push(Value::Null);
            }
            let (promoted, generation, last_error, consecutive_failures, scrub) = {
                let health = lock(&shard.health);
                (
                    health.promoted,
                    health.generation,
                    health.last_error.clone(),
                    health.consecutive_failures,
                    health.scrub,
                )
            };
            shard_rows.push(
                Value::object()
                    .with("addr", Value::Str(shard.primary.addr()))
                    .with("up", Value::Bool(up))
                    .with("promoted", Value::Bool(promoted))
                    .with("generation", Value::Int(generation as i64))
                    .with(
                        "last_error",
                        match last_error {
                            Some(message) => Value::Str(message),
                            None => Value::Null,
                        },
                    )
                    .with(
                        "consecutive_failures",
                        Value::Int(consecutive_failures as i64),
                    )
                    .with("scrubbed", Value::Int(scrub.scrubbed as i64))
                    .with("scrub_corruptions", Value::Int(scrub.corruptions as i64))
                    .with("scrub_repairs", Value::Int(scrub.repairs as i64))
                    .with("scrub_quarantined", Value::Int(scrub.quarantined as i64)),
            );
        }
        Ok(Value::object()
            .with("role", Value::Str("coordinator".to_string()))
            .with("requests", Value::Int(metrics.requests as i64))
            .with("errors", Value::Int(metrics.errors as i64))
            .with("p50_us", Value::Int(metrics.p50_us as i64))
            .with("p99_us", Value::Int(metrics.p99_us as i64))
            .with("scatters", Value::Int(self.metrics.scatters.get() as i64))
            .with("fanout", Value::Int(self.metrics.fanout.get() as i64))
            .with("markdowns", Value::Int(self.metrics.markdowns.get() as i64))
            .with("rejoins", Value::Int(self.metrics.rejoins.get() as i64))
            .with(
                "promotions",
                Value::Int(self.metrics.promotions.get() as i64),
            )
            .with("demotions", Value::Int(self.metrics.demotions.get() as i64))
            .with(
                "anti_entropy_rounds",
                Value::Int(self.metrics.anti_entropy_rounds.get() as i64),
            )
            .with(
                "digest_divergences",
                Value::Int(self.metrics.digest_divergences.get() as i64),
            )
            .with(
                "slow_exemplars",
                bmb_serve::slow_exemplars_value(ctx.metrics),
            )
            .with("shards", Value::Array(shard_rows))
            .with("epoch", Value::Int(epoch_sum as i64))
            .with("epochs", Value::Array(epochs)))
    }

    /// `trace`: reconstruct the cross-node tree for one trace id. Own
    /// server spans and client spans merge with every endpoint's ring
    /// (primary *and* follower — after a failover the spans of one
    /// trace can live on either side), queried best-effort: a down
    /// node simply contributes nothing.
    fn dispatch_trace(&self, trace: u64, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        let mut spans = ctx.metrics.spans().for_trace(trace);
        spans.extend(self.client_spans.for_trace(trace));
        let request = Value::object()
            .with("cmd", Value::Str("trace".to_string()))
            .with("trace", Value::Str(TraceId::from_u64(trace).to_string()));
        for shard in &self.shards {
            let endpoints = [Some(&shard.primary), shard.follower.as_ref()];
            for endpoint in endpoints.into_iter().flatten() {
                // Straight to the endpoint, not through shard_request:
                // a diagnostic read must not trigger mark-downs or
                // promotions, and must reach fenced/demoted nodes too.
                if let Ok(value) = self.request_on(endpoint, &request) {
                    spans.extend(spans_from_value(trace, &value));
                }
            }
        }
        Ok(trace_value(trace, spans))
    }

    /// The federated `/metrics` body: this process's own exposition
    /// plus every shard's, pulled over the `metrics` wire command
    /// (best-effort — a down shard is skipped) and re-labeled.
    fn federated_metrics(&self, metrics: &ServerMetrics) -> String {
        let mut inputs = vec![crate::federation::NodeExposition {
            node: "coordinator".to_string(),
            shard: None,
            text: bmb_serve::exposition(metrics, &self.registries()),
        }];
        let request = Value::object().with("cmd", Value::Str("metrics".to_string()));
        for index in 0..self.shards.len() {
            let Ok(value) = self.shard_request(index, &request) else {
                continue;
            };
            let Some(text) = value.get("text").and_then(Value::as_str) else {
                continue;
            };
            inputs.push(crate::federation::NodeExposition {
                node: format!("shard{index}"),
                shard: Some(index as i64),
                text: text.to_string(),
            });
        }
        crate::federation::federate(&inputs)
    }

    // ---- anti-entropy ----------------------------------------------------

    /// One anti-entropy round: for every slot with a follower, pull
    /// per-segment digests from both endpoints (the `integrity`
    /// command) and compare. Replicas that applied the same epochs
    /// answer bit-identical digests, so any mismatch on a shared
    /// segment is at-rest divergence — the coordinator then triggers a
    /// scrub-and-repair on the *follower*, pointed at the primary as
    /// its repair peer (the primary's acked history is the slot's
    /// authority), and a local scrub on the primary so damage on its
    /// side is detected and quarantined too. Follower lag (missing
    /// trailing segments) is not divergence; replication will close it.
    ///
    /// Endpoints are queried best-effort, straight past the mark-down
    /// machinery — like `trace`, a diagnostic must not cause failovers.
    pub fn anti_entropy_round(&self) -> Value {
        self.metrics.anti_entropy_rounds.inc();
        let request = Value::object().with("cmd", Value::Str("integrity".to_string()));
        let mut slots: Vec<Value> = Vec::with_capacity(self.shards.len());
        let mut divergent_slots = 0u64;
        for (index, shard) in self.shards.iter().enumerate() {
            let row = Value::object().with("shard", Value::Int(index as i64));
            let Some(follower) = &shard.follower else {
                slots.push(row.with("checked", Value::Bool(false)));
                continue;
            };
            let primary = self.request_on(&shard.primary, &request).ok();
            let standby = self.request_on(follower, &request).ok();
            let (Some(primary), Some(standby)) = (primary, standby) else {
                slots.push(row.with("checked", Value::Bool(false)));
                continue;
            };
            let divergent = digests_diverge(&primary, &standby);
            let mut row = row
                .with("checked", Value::Bool(true))
                .with("divergent", Value::Bool(divergent));
            if divergent {
                divergent_slots += 1;
                self.metrics.digest_divergences.inc();
                self.event("anti-entropy digest divergence", &follower.addr());
                let repair = Value::object()
                    .with("cmd", Value::Str("scrub".to_string()))
                    .with("peer", Value::Str(shard.primary.addr()));
                if let Ok(report) = self.request_on(follower, &repair) {
                    self.metrics.remote_scrubs.inc();
                    lock(&shard.health).scrub.absorb(&report);
                    row = row.with("follower_repairs", report_count(&report, "repairs"));
                }
                let local = Value::object().with("cmd", Value::Str("scrub".to_string()));
                if let Ok(report) = self.request_on(&shard.primary, &local) {
                    lock(&shard.health).scrub.absorb(&report);
                    row = row.with("primary_repairs", report_count(&report, "repairs"));
                }
            }
            slots.push(row);
        }
        Value::object()
            .with("slots", Value::Array(slots))
            .with("divergent", Value::Int(divergent_slots as i64))
    }

    /// `scrub` on the coordinator: fan the command out to every slot's
    /// read endpoint, pointing each primary at its follower as the
    /// repair peer (and falling back to local-only repair on promoted
    /// slots, where the follower *is* the read endpoint and must not
    /// dial itself). Totals are absorbed into the per-slot stats.
    fn dispatch_scrub(&self) -> Result<Value, ServiceFailure> {
        let mut rows: Vec<Value> = Vec::with_capacity(self.shards.len());
        let mut totals = ScrubTotals::default();
        for (index, shard) in self.shards.iter().enumerate() {
            let promoted = {
                let health = lock(&shard.health);
                health.promoted
            };
            let mut request = Value::object().with("cmd", Value::Str("scrub".to_string()));
            if !promoted {
                if let Some(follower) = &shard.follower {
                    request = request.with("peer", Value::Str(follower.addr()));
                }
            }
            match self.shard_request(index, &request) {
                Ok(report) => {
                    lock(&shard.health).scrub.absorb(&report);
                    totals.absorb(&report);
                    rows.push(report.with("shard", Value::Int(index as i64)));
                }
                Err(e) => rows.push(
                    Value::object()
                        .with("shard", Value::Int(index as i64))
                        .with("error", Value::Str(e.message.clone())),
                ),
            }
        }
        Ok(Value::object()
            .with("scrubbed", Value::Int(totals.scrubbed as i64))
            .with("corruptions", Value::Int(totals.corruptions as i64))
            .with("repairs", Value::Int(totals.repairs as i64))
            .with("quarantined", Value::Int(totals.quarantined as i64))
            .with("shards", Value::Array(rows)))
    }

    fn dispatch_support_vec(
        &self,
        itemsets: Vec<Vec<u32>>,
        ctx: &ServiceCtx<'_>,
    ) -> Result<Value, ServiceFailure> {
        let n_items = self.config.n_items;
        let mut subsets: Vec<Vec<ItemId>> = Vec::with_capacity(itemsets.len());
        for items in &itemsets {
            if let Some(&bad) = items.iter().find(|&&id| id as usize >= n_items) {
                return Err(ServiceFailure::other(format!(
                    "item id {bad} out of range (store has {n_items} items)"
                )));
            }
            let set = Itemset::from_ids(items.iter().copied());
            subsets.push(set.items().to_vec());
        }
        let gather = self.scatter_supports(&subsets)?;
        let epoch = gather.epoch_sum();
        ctx.metrics.record_served_epoch(epoch);
        Ok(Value::object()
            .with("epoch", Value::Int(epoch as i64))
            .with("n", Value::Int(gather.n as i64))
            .with(
                "supports",
                Value::Array(
                    gather
                        .supports
                        .iter()
                        .map(|&s| Value::Int(s as i64))
                        .collect(),
                ),
            )
            .with("epochs", epochs_value(&gather.epochs)))
    }
}

impl Service for CoordinatorService {
    fn registries(&self) -> Vec<Arc<Registry>> {
        vec![Arc::clone(self.metrics.registry())]
    }

    fn render_metrics(&self, metrics: &ServerMetrics) -> String {
        self.federated_metrics(metrics)
    }

    fn dispatch(&self, request: Request, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        match request {
            Request::Ping => Ok(Value::object().with("pong", Value::Bool(true))),
            Request::Shutdown => Ok(Value::object().with("stopping", Value::Bool(true))),
            Request::Chi2 { items } => self.dispatch_chi2(items, ctx),
            Request::Chi2Batch { itemsets } => self.dispatch_chi2_batch(itemsets, ctx),
            Request::Interest { items, cell } => self.dispatch_interest(items, cell, ctx),
            Request::TopK { k } => self.dispatch_topk(k, ctx),
            Request::Border {
                support,
                support_fraction,
                max_level,
            } => self.dispatch_border(support, support_fraction, max_level, ctx),
            Request::Ingest { baskets } => {
                let n = baskets.len() as u64;
                let response = self.dispatch_ingest(baskets)?;
                ctx.metrics.record_ingest(n);
                Ok(response)
            }
            Request::SupportVec { itemsets } => self.dispatch_support_vec(itemsets, ctx),
            Request::Stats => self.dispatch_stats(ctx),
            Request::Metrics => {
                Ok(Value::object().with("text", Value::Str(self.federated_metrics(ctx.metrics))))
            }
            Request::Trace { trace } => self.dispatch_trace(trace, ctx),
            Request::Events { since_us } => Ok(bmb_serve::events_value(since_us)),
            Request::Checkpoint => Err(ServiceFailure::other(
                "issue 'checkpoint' to each shard directly; the coordinator holds no baskets"
                    .to_string(),
            )),
            Request::ReplicatePull { .. } => Err(ServiceFailure::other(
                "not a shard: 'replicate_pull' reads a shard's WAL".to_string(),
            )),
            Request::Integrity { .. } => Ok(self.anti_entropy_round()),
            Request::Scrub { .. } => self.dispatch_scrub(),
            Request::Promote => Err(ServiceFailure::other(
                "not a follower: 'promote' is only valid on follower processes".to_string(),
            )),
            Request::Demote { .. } => Err(ServiceFailure::other(
                "not a shard node: 'demote' targets generation-fenced shard processes".to_string(),
            )),
        }
    }
}

/// One shard's decoded `support_vec` answer.
struct ShardAnswer {
    epoch: u64,
    n: u64,
    supports: Vec<u64>,
}

fn parse_support_answer(value: &Value, expected: usize) -> Result<ShardAnswer, ServiceFailure> {
    let epoch = value
        .get("epoch")
        .and_then(Value::as_u64)
        .ok_or_else(|| malformed("missing 'epoch'"))?;
    let n = value
        .get("n")
        .and_then(Value::as_u64)
        .ok_or_else(|| malformed("missing 'n'"))?;
    let raw = value
        .get("supports")
        .and_then(Value::as_array)
        .ok_or_else(|| malformed("missing 'supports'"))?;
    if raw.len() != expected {
        return Err(malformed("wrong support vector length"));
    }
    let supports = raw
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| malformed("non-integer support")))
        .collect::<Result<Vec<u64>, ServiceFailure>>()?;
    Ok(ShardAnswer { epoch, n, supports })
}

fn malformed(what: &str) -> ServiceFailure {
    ServiceFailure::io(format!("malformed shard support_vec response: {what}"))
}

/// An engine-shaped error, with the standalone server's exact message.
fn engine_failure(error: EngineError) -> ServiceFailure {
    ServiceFailure::other(error.to_string())
}

/// Decodes a remote node's `trace` response back into span records
/// (the inverse of [`bmb_serve::protocol::span_value`]); malformed
/// entries are skipped — the tree renders from whatever survives.
fn spans_from_value(trace: u64, value: &Value) -> Vec<SpanRecord> {
    let Some(raw) = value.get("spans").and_then(Value::as_array) else {
        return Vec::new();
    };
    raw.iter()
        .filter_map(|entry| {
            let hex = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_str)
                    .and_then(|text| u64::from_str_radix(text, 16).ok())
            };
            Some(SpanRecord {
                name: entry.get("name").and_then(Value::as_str)?.to_string(),
                trace,
                span: hex("span")?,
                parent: hex("parent").unwrap_or(0),
                start_unix_us: entry.get("start_us").and_then(Value::as_u64).unwrap_or(0),
                duration_us: entry
                    .get("duration_us")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
                node: entry
                    .get("node")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                shard: entry.get("shard").and_then(Value::as_i64).unwrap_or(-1),
                outcome: entry
                    .get("outcome")
                    .and_then(Value::as_str)
                    .unwrap_or("ok")
                    .to_string(),
            })
        })
        .collect()
}

/// The epoch vector as a JSON array, in shard order.
fn epochs_value(epochs: &[u64]) -> Value {
    Value::Array(epochs.iter().map(|&e| Value::Int(e as i64)).collect())
}

/// Decodes one endpoint's `integrity` answer into
/// `(segment, end_epoch, crc)` triples; malformed rows are skipped.
fn parse_digests(value: &Value) -> Vec<(u64, u64, u64)> {
    let Some(rows) = value.get("segments").and_then(Value::as_array) else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| {
            Some((
                row.get("segment").and_then(Value::as_u64)?,
                row.get("end_epoch").and_then(Value::as_u64)?,
                row.get("crc").and_then(Value::as_u64)?,
            ))
        })
        .collect()
}

/// Whether two `integrity` answers disagree on any segment both hold.
/// Segments only one side has sealed yet are replication lag, not
/// divergence.
fn digests_diverge(primary: &Value, follower: &Value) -> bool {
    let ours = parse_digests(primary);
    let theirs = parse_digests(follower);
    ours.iter().any(|&(segment, end_epoch, crc)| {
        theirs
            .iter()
            .any(|&(s, e, c)| s == segment && (e != end_epoch || c != crc))
    })
}

/// One numeric field of a scrub report, as a JSON value for the round
/// summary (0 when absent).
fn report_count(report: &Value, key: &str) -> Value {
    Value::Int(report.get(key).and_then(Value::as_i64).unwrap_or(0))
}

/// Acquires a mutex, recovering from poisoning (health flags and retry
/// clients are valid in any state).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

//! A generation-fenced cluster node: one process that can serve as a
//! shard primary or as a WAL-tailing follower, and can switch roles at
//! runtime without ever letting two nodes answer as primary for the
//! same shard.
//!
//! The fencing protocol is a single monotonic `u64` generation,
//! persisted in the node's durable directory (see
//! [`bmb_basket::DurableStore::set_generation`]):
//!
//! - Every request the coordinator sends carries `"gen"`, the highest
//!   generation it has observed for the slot. The serving layer
//!   rejects any request stamped *below* the node's own generation
//!   with a `"fenced":true` error carrying the node's generation.
//! - `promote` bumps the node's generation to
//!   `max(own, request floor) + 1` and persists it *before* acking, so
//!   a promoted follower is always strictly ahead of the primary it
//!   replaces — even one that never saw the partition.
//! - A rejoining old primary is fenced by its own stale generation the
//!   moment the coordinator stamps requests at the new one. The
//!   coordinator then sends `demote`, and the node adopts the newer
//!   generation, restarts the [`Replicator`] pull loop against the
//!   promoted replacement, and refuses queries with a retryable error
//!   until it has caught up — split-brain reads are impossible on both
//!   sides of the partition.

// The role guard is the outermost lock in this crate: nothing that
// holds any other cluster lock ever calls into a role change.
// lock:order(state < upstream)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use bmb_basket::DurableStore;
use bmb_obs::Registry;
use bmb_serve::json::Value;
use bmb_serve::{EngineService, Request, Service, ServiceCtx, ServiceFailure};

use crate::follower::{FollowerConfig, Replicator};
use crate::metrics::ClusterMetrics;

/// Which side of the replication pair this node currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Serving reads and writes; not tailing anyone.
    Primary,
    /// Tailing a primary's WAL; reads only once caught up, no writes.
    Follower,
}

/// A running replication pull loop and its control latches.
struct ReplHandle {
    /// Tells the loop to exit (checked via the `promoted` slot of
    /// [`Replicator`]; promotion and demotion both halt the old loop).
    halt: Arc<AtomicBool>,
    /// Set by the loop the first time it observes zero lag.
    caught_up: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReplHandle {
    /// Halts the loop and joins the thread.
    fn halt_and_join(mut self) {
        // ordering: Release — pairs with the loop's Acquire poll; the
        // join below is the real synchronization point.
        self.halt.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Mutable role state, guarded by one mutex.
struct RoleState {
    role: Role,
    /// True after a demotion until the new pull loop reports zero lag;
    /// queries are refused (retryable) while set.
    catching_up: bool,
    repl: Option<ReplHandle>,
}

/// The node's serving face: an [`EngineService`] over the local durable
/// store, wrapped with role switching and generation fencing.
pub struct NodeService {
    inner: EngineService,
    durable: Arc<DurableStore>,
    metrics: Arc<ClusterMetrics>,
    /// Template for pull loops spawned on demotion (the primary address
    /// is replaced per demote).
    repl_template: FollowerConfig,
    /// Host-process shutdown flag, shared with every pull loop.
    stop: Arc<AtomicBool>,
    state: Mutex<RoleState>,
    /// Test hook: when set, [`NodeService::generation`] reports `None`
    /// so the serving layer never fences — used to demonstrate that an
    /// unfenced cluster *does* split-brain under the torture harness.
    unfenced: bool,
}

impl NodeService {
    /// A node starting as a shard primary (no pull loop).
    ///
    /// `repl` supplies the tuning (poll interval, backoff, retry) used
    /// if this node is later demoted; its `primary_addr` is a
    /// placeholder replaced by the demote request.
    pub fn primary(
        inner: EngineService,
        durable: Arc<DurableStore>,
        repl: FollowerConfig,
        stop: Arc<AtomicBool>,
        metrics: Arc<ClusterMetrics>,
    ) -> NodeService {
        NodeService {
            inner,
            durable,
            metrics,
            repl_template: repl,
            stop,
            state: Mutex::new(RoleState {
                role: Role::Primary,
                catching_up: false,
                repl: None,
            }),
            unfenced: false,
        }
    }

    /// A node starting as a follower tailing `repl.primary_addr`; the
    /// pull loop is spawned immediately. A fresh follower serves reads
    /// without waiting for catch-up (it answers at its own epoch
    /// vector, which the coordinator accounts for) — only *demoted*
    /// nodes gate reads, because their store may be behind acked
    /// ingest.
    pub fn follower(
        inner: EngineService,
        durable: Arc<DurableStore>,
        repl: FollowerConfig,
        stop: Arc<AtomicBool>,
        metrics: Arc<ClusterMetrics>,
    ) -> std::io::Result<NodeService> {
        let node = NodeService {
            inner,
            durable,
            metrics,
            repl_template: repl.clone(),
            stop,
            state: Mutex::new(RoleState {
                role: Role::Follower,
                catching_up: false,
                repl: None,
            }),
            unfenced: false,
        };
        let handle = node.spawn_replicator(repl)?;
        lock(&node.state).repl = Some(handle);
        Ok(node)
    }

    /// Disables fencing: the node stops reporting a generation, so the
    /// serving layer never rejects stale-stamped requests. Test hook
    /// for demonstrating the split-brain failure mode fencing closes.
    pub fn with_fencing_disabled(mut self) -> NodeService {
        self.unfenced = true;
        self
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        lock(&self.state).role
    }

    /// The node's persisted fencing generation.
    pub fn current_generation(&self) -> u64 {
        self.durable.generation()
    }

    /// Spawns a pull loop tailing `config.primary_addr`.
    fn spawn_replicator(&self, config: FollowerConfig) -> std::io::Result<ReplHandle> {
        let halt = Arc::new(AtomicBool::new(false));
        let caught_up = Arc::new(AtomicBool::new(false));
        let replicator = Replicator::new(
            Arc::clone(&self.durable),
            config,
            Arc::clone(&halt),
            Arc::clone(&self.stop),
            Arc::clone(&self.metrics),
        )
        .with_caught_up(Arc::clone(&caught_up));
        let thread = std::thread::Builder::new()
            .name("bmb-replicator".to_string())
            .spawn(move || replicator.run())?;
        Ok(ReplHandle {
            halt,
            caught_up,
            thread: Some(thread),
        })
    }

    /// `promote`: bump the generation past the request floor, persist
    /// it, stop tailing, and start serving as primary.
    fn handle_promote(&self, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        // Serializes role changes; the generation write and thread join
        // below block under the guard on purpose. // lock:allow(io)
        let mut state = lock(&self.state);
        let already = state.role == Role::Primary;
        if !already {
            let floor = ctx.generation.unwrap_or(0);
            let target = self.durable.generation().max(floor) + 1;
            self.durable.set_generation(target).map_err(|e| {
                ServiceFailure::io(format!(
                    "promotion not durable: generation write failed: {e}"
                ))
            })?;
            if let Some(handle) = state.repl.take() {
                handle.halt_and_join();
            }
            state.role = Role::Primary;
            state.catching_up = false;
            self.metrics.promotions.inc();
            bmb_obs::events().emit(
                bmb_obs::Severity::Warn,
                "follower promoted",
                &[
                    ("generation", &target.to_string()),
                    ("epoch", &self.inner.engine().snapshot().epoch().to_string()),
                ],
            );
        }
        Ok(Value::object()
            .with("promoted", Value::Bool(true))
            .with(
                "epoch",
                Value::Int(self.inner.engine().snapshot().epoch() as i64),
            )
            .with("already", Value::Bool(already)))
    }

    /// `demote`: adopt the request's generation floor, restart the pull
    /// loop against the promoted replacement, and gate queries until
    /// caught up.
    fn handle_demote(&self, primary: &str, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        // Serializes role changes; the generation write and replicator
        // restart below block under the guard. // lock:allow(io)
        let mut state = lock(&self.state);
        if let Some(floor) = ctx.generation {
            self.durable.set_generation(floor).map_err(|e| {
                ServiceFailure::io(format!(
                    "demotion not durable: generation write failed: {e}"
                ))
            })?;
        }
        if let Some(handle) = state.repl.take() {
            handle.halt_and_join();
        }
        let mut config = self.repl_template.clone();
        config.primary_addr = primary.to_string();
        let handle = self.spawn_replicator(config).map_err(|e| {
            ServiceFailure::io(format!("demotion failed: cannot spawn pull loop: {e}"))
        })?;
        state.repl = Some(handle);
        let was_primary = state.role == Role::Primary;
        state.role = Role::Follower;
        state.catching_up = true;
        if was_primary {
            self.metrics.demotions.inc();
        }
        bmb_obs::events().emit(
            bmb_obs::Severity::Warn,
            "node demoted to follower",
            &[
                ("primary", primary),
                ("generation", &self.durable.generation().to_string()),
            ],
        );
        Ok(Value::object()
            .with("demoted", Value::Bool(true))
            .with("primary", Value::Str(primary.to_string()))
            .with(
                "epoch",
                Value::Int(self.inner.engine().snapshot().epoch() as i64),
            ))
    }

    /// Whether queries are still gated behind post-demotion catch-up;
    /// clears the gate once the pull loop has reported zero lag.
    fn still_catching_up(&self) -> bool {
        let mut state = lock(&self.state);
        if !state.catching_up {
            return false;
        }
        let caught_up = state
            .repl
            .as_ref()
            // ordering: Acquire — pairs with the pull loop's Release
            // store; observing the latch publishes the replayed store.
            .map(|h| h.caught_up.load(Ordering::Acquire))
            .unwrap_or(true);
        if caught_up {
            state.catching_up = false;
        }
        !caught_up
    }
}

impl Drop for NodeService {
    fn drop(&mut self) {
        let handle = lock(&self.state).repl.take();
        if let Some(handle) = handle {
            handle.halt_and_join();
        }
    }
}

impl Service for NodeService {
    fn registries(&self) -> Vec<Arc<Registry>> {
        let mut registries = self.inner.registries();
        registries.push(Arc::clone(self.metrics.registry()));
        registries
    }

    fn generation(&self) -> Option<u64> {
        if self.unfenced {
            None
        } else {
            Some(self.durable.generation())
        }
    }

    fn dispatch(&self, request: Request, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        match request {
            Request::Promote => self.handle_promote(ctx),
            Request::Demote { primary } => self.handle_demote(&primary, ctx),
            Request::Ingest { .. } => {
                if self.role() == Role::Follower {
                    return Err(ServiceFailure::other(
                        "follower does not accept ingest; write to the shard primary",
                    ));
                }
                self.inner.dispatch(request, ctx)
            }
            Request::ReplicatePull { .. } => self.inner.dispatch(request, ctx),
            // Observability and integrity requests bypass the catch-up
            // gate: a trace tree or event timeline is most needed
            // mid-failover, and anti-entropy must be able to compare
            // digests with (and scrub) a node that is busiest catching
            // up.
            Request::Trace { .. }
            | Request::Events { .. }
            | Request::Integrity { .. }
            | Request::Scrub { .. } => self.inner.dispatch(request, ctx),
            Request::Stats => {
                let catching_up = self.still_catching_up();
                let role = self.role();
                Ok(self
                    .inner
                    .dispatch(Request::Stats, ctx)?
                    .with(
                        "role",
                        Value::Str(
                            match role {
                                Role::Primary => "primary",
                                Role::Follower => "follower",
                            }
                            .to_string(),
                        ),
                    )
                    .with("promoted", Value::Bool(role == Role::Primary))
                    .with("catching_up", Value::Bool(catching_up))
                    .with(
                        "replication_lag",
                        Value::Int(self.metrics.replication_lag.get()),
                    ))
            }
            other => {
                if self.still_catching_up() {
                    return Err(ServiceFailure::unavailable(
                        "demoted; catching up with the new primary before serving reads",
                    ));
                }
                self.inner.dispatch(other, ctx)
            }
        }
    }
}

/// Acquires a mutex, recovering from poisoning (role state stays
/// consistent: every transition completes before the guard drops).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

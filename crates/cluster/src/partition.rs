//! Deterministic basket-to-shard routing.
//!
//! The coordinator assigns every ingested basket a monotonically
//! increasing id and routes it to a shard with a pure function of that
//! id — no routing table, no rebalancing state. Two strategies:
//!
//! * [`PartitionStrategy::Hash`] (the default) mixes the basket id with
//!   a pinned seed through a splitmix64 finalizer, so consecutive
//!   baskets scatter across shards and the assignment is stable across
//!   coordinator restarts for the same seed;
//! * [`PartitionStrategy::RoundRobin`] is the degenerate fallback —
//!   `id mod n_shards` — useful when reproducing a placement by hand.
//!
//! Because supports are additive across any partition of the baskets,
//! correctness never depends on the strategy; only balance does.

/// The pinned default hash seed. Changing it re-shuffles placement on
/// the next fresh cluster but never corrupts an existing one (placement
/// is only consulted at ingest time).
pub const DEFAULT_SEED: u64 = 0x5EED_BA5C_E7B1_D0C5;

/// How basket ids map to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// splitmix64(seed ^ id) mod n — scatters consecutive ids.
    Hash,
    /// id mod n — predictable by inspection.
    RoundRobin,
}

/// A deterministic basket-id → shard-index router.
#[derive(Clone, Copy, Debug)]
pub struct Partitioner {
    n_shards: usize,
    seed: u64,
    strategy: PartitionStrategy,
}

impl Partitioner {
    /// A hash partitioner over `n_shards` with the pinned default seed.
    pub fn hash(n_shards: usize) -> Partitioner {
        Partitioner::with_seed(n_shards, DEFAULT_SEED)
    }

    /// A hash partitioner with an explicit seed (pin it in configs so a
    /// restarted coordinator routes identically).
    pub fn with_seed(n_shards: usize, seed: u64) -> Partitioner {
        Partitioner {
            n_shards: n_shards.max(1),
            seed,
            strategy: PartitionStrategy::Hash,
        }
    }

    /// The round-robin fallback.
    pub fn round_robin(n_shards: usize) -> Partitioner {
        Partitioner {
            n_shards: n_shards.max(1),
            seed: 0,
            strategy: PartitionStrategy::RoundRobin,
        }
    }

    /// How many shards this partitioner routes across.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The strategy in force.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The shard index for one basket id; always `< n_shards`.
    pub fn shard_of(&self, basket_id: u64) -> usize {
        match self.strategy {
            PartitionStrategy::Hash => {
                (splitmix64(self.seed ^ basket_id) % self.n_shards as u64) as usize
            }
            PartitionStrategy::RoundRobin => (basket_id % self.n_shards as u64) as usize,
        }
    }
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mix, so adjacent
/// basket ids land on decorrelated shards.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_deterministic_and_in_range() {
        let p = Partitioner::hash(4);
        let q = Partitioner::hash(4);
        for id in 0..10_000u64 {
            let shard = p.shard_of(id);
            assert!(shard < 4);
            assert_eq!(shard, q.shard_of(id), "same seed, same placement");
        }
    }

    #[test]
    fn hash_routing_balances_reasonably() {
        let p = Partitioner::hash(4);
        let mut counts = [0usize; 4];
        for id in 0..40_000u64 {
            counts[p.shard_of(id)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (8_000..=12_000).contains(&count),
                "shard {shard} got {count} of 40000 — hash is badly skewed"
            );
        }
    }

    #[test]
    fn different_seeds_shuffle_placement() {
        let a = Partitioner::with_seed(8, 1);
        let b = Partitioner::with_seed(8, 2);
        let moved = (0..1000u64)
            .filter(|&id| a.shard_of(id) != b.shard_of(id))
            .count();
        assert!(moved > 500, "only {moved}/1000 ids moved between seeds");
    }

    #[test]
    fn round_robin_cycles() {
        let p = Partitioner::round_robin(3);
        let shards: Vec<usize> = (0..7u64).map(|id| p.shard_of(id)).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        assert_eq!(Partitioner::hash(0).n_shards(), 1);
        assert_eq!(Partitioner::round_robin(0).shard_of(99), 0);
    }
}

//! Sharded scatter-gather correlation serving.
//!
//! `bmb-cluster` turns N independent durable stores into one logical
//! correlation server:
//!
//! * [`Partitioner`] routes ingested baskets to shards with a pure,
//!   seeded hash of the basket id (round-robin as a fallback);
//! * [`CoordinatorService`] speaks the standalone server's protocol
//!   unchanged, scattering every query as a `support_vec` request,
//!   summing the shards' integer support vectors, and running the exact
//!   Möbius-inversion + χ² code path a single store uses — so answers
//!   are **bit-identical** (f64 bit patterns) to an unsharded store at
//!   the same epoch-vector cut;
//! * [`NodeService`] + [`Replicator`] implement WAL-shipping
//!   replication with **generation fencing**: a warm standby tails a
//!   primary's write-ahead log, meters its lag, and takes over on
//!   `promote` at a durably bumped generation; a rejoining stale
//!   primary is fenced, demoted, and catches up before serving again —
//!   two nodes never answer as primary for one shard;
//! * [`chaos`] is a deterministic TCP fault-injection proxy (seeded
//!   latency, drops, stalls, corruption, runtime partitions) used by
//!   the torture suite to prove the above under network chaos.
//!
//! Consistency model in one sentence: every response names the exact
//! per-shard epochs `[e0, …, eN-1]` it was computed at, and any two
//! responses with equal epoch vectors are answers over the same
//! logical database.

#![warn(missing_docs)]

/// Deterministic TCP fault-injection proxy with a runtime control socket.
pub mod chaos;
/// Injectable monotonic clock for endpoint state-transition tests.
pub mod clock;
/// Scatter-gather coordinator: central evaluation over shard supports.
pub mod coordinator;
/// Federated Prometheus exposition across cluster nodes.
pub mod federation;
/// WAL-shipping replication pull loop and its tuning.
pub mod follower;
/// Cluster-wide counters and gauges (`bmb_cluster_*`).
pub mod metrics;
/// Generation-fenced shard node: primary/follower role switching.
pub mod node;
/// Deterministic basket-id → shard routing.
pub mod partition;

pub use chaos::{ChaosConfig, ChaosHandle, ChaosProxy};
pub use clock::{Clock, SystemClock, TestClock};
pub use coordinator::{CoordinatorConfig, CoordinatorService, ShardSpec};
pub use federation::{federate, NodeExposition};
pub use follower::{FollowerConfig, Replicator};
pub use metrics::ClusterMetrics;
pub use node::{NodeService, Role};
pub use partition::{PartitionStrategy, Partitioner, DEFAULT_SEED};

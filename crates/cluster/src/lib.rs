//! Sharded scatter-gather correlation serving.
//!
//! `bmb-cluster` turns N independent durable stores into one logical
//! correlation server:
//!
//! * [`Partitioner`] routes ingested baskets to shards with a pure,
//!   seeded hash of the basket id (round-robin as a fallback);
//! * [`CoordinatorService`] speaks the standalone server's protocol
//!   unchanged, scattering every query as a `support_vec` request,
//!   summing the shards' integer support vectors, and running the exact
//!   Möbius-inversion + χ² code path a single store uses — so answers
//!   are **bit-identical** (f64 bit patterns) to an unsharded store at
//!   the same epoch-vector cut;
//! * [`FollowerService`] + [`Replicator`] implement WAL-shipping
//!   replication: a warm standby tails a primary's write-ahead log,
//!   meters its lag, and serves reads after a one-way `promote` when
//!   the coordinator marks the primary down.
//!
//! Consistency model in one sentence: every response names the exact
//! per-shard epochs `[e0, …, eN-1]` it was computed at, and any two
//! responses with equal epoch vectors are answers over the same
//! logical database.

#![warn(missing_docs)]

/// Scatter-gather coordinator: central evaluation over shard supports.
pub mod coordinator;
/// WAL-shipping follower: warm standby, lag metering, promotion.
pub mod follower;
/// Cluster-wide counters and gauges (`bmb_cluster_*`).
pub mod metrics;
/// Deterministic basket-id → shard routing.
pub mod partition;

pub use coordinator::{CoordinatorConfig, CoordinatorService, ShardSpec};
pub use follower::{FollowerConfig, FollowerService, Replicator};
pub use metrics::ClusterMetrics;
pub use partition::{PartitionStrategy, Partitioner, DEFAULT_SEED};

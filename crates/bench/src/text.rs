//! Text-corpus reports: Table 4 and the Section 5.2 statistics.

use bmb_basket::{BasketDatabase, ContingencyTable, Itemset};
use bmb_core::{mine, CorrelationRule, MinerConfig, SupportSpec};
use bmb_datasets::text::{generate, TextParams};
use bmb_stats::Chi2Test;

use crate::table::{num, TextTable};
use crate::timed;

/// Miner settings for the corpus: a low absolute support (the paper
/// already pruned at 10% document frequency, a "more severe" filter) and
/// the default α = 95%.
fn corpus_config() -> MinerConfig {
    MinerConfig {
        support: SupportSpec::Count(5),
        support_fraction: 0.26,
        max_level: 3,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        ..MinerConfig::default()
    }
}

/// Table 4: correlated word itemsets with their major dependence.
pub fn table4() -> String {
    table4_with(&TextParams::default())
}

/// Table 4 on a caller-supplied corpus parameterization.
pub fn table4_with(params: &TextParams) -> String {
    let (db, gen_secs) = timed(|| generate(params));
    let (result, mine_secs) = timed(|| mine(&db, &corpus_config()));
    // Pick the display set like the paper: the strongest pairs (the
    // planted collocations rank at the top) plus the strongest triples.
    let mut pairs: Vec<&CorrelationRule> = result
        .significant
        .iter()
        .filter(|r| r.itemset.len() == 2)
        .collect();
    pairs.sort_by(|a, b| b.chi2.statistic.partial_cmp(&a.chi2.statistic).unwrap());
    let mut triples: Vec<&CorrelationRule> = result
        .significant
        .iter()
        .filter(|r| r.itemset.len() == 3)
        .collect();
    triples.sort_by(|a, b| b.chi2.statistic.partial_cmp(&a.chi2.statistic).unwrap());

    let mut table = TextTable::new([
        "correlated words",
        "chi2",
        "dependence includes",
        "dependence omits",
    ]);
    for rule in pairs.iter().take(8).chain(triples.iter().take(4)) {
        let words: Vec<String> = rule
            .itemset
            .items()
            .iter()
            .map(|&i| db.catalog().unwrap().name(i).unwrap_or("?").to_string())
            .collect();
        let (includes, omits) = rule.major_dependence_words(&db);
        table.row([
            words.join(" "),
            num(rule.chi2.statistic, 3),
            includes.join(" "),
            omits.join(" "),
        ]);
    }
    format!(
        "Table 4 — word correlations in the synthetic news corpus\n\
         (91 documents, words at >= 10% document frequency, {} post-prune words)\n\n{}\n\
         corpus generation: {gen_secs:.2}s, mining: {mine_secs:.2}s\n",
        db.n_items(),
        table.render()
    )
}

/// Section 5.2's aggregate statistics: correlated-pair share, pair-vs-
/// triple χ² magnitudes.
pub fn corpus_stats() -> String {
    corpus_stats_with(&TextParams::default())
}

/// Section 5.2 statistics on a caller-supplied corpus parameterization.
pub fn corpus_stats_with(params: &TextParams) -> String {
    let (db, _) = timed(|| generate(params));
    let k = db.n_items();
    let n_pairs = k * (k - 1) / 2;
    let test = Chi2Test::default();
    let ((correlated, max_pair), pair_secs) = timed(|| {
        let mut correlated = 0usize;
        let mut max_pair: f64 = 0.0;
        for a in 0..k as u32 {
            for b in a + 1..k as u32 {
                let table = ContingencyTable::from_database(&db, &Itemset::from_ids([a, b]));
                let outcome = test.test_dense(&table);
                if outcome.significant {
                    correlated += 1;
                }
                max_pair = max_pair.max(outcome.statistic);
            }
        }
        (correlated, max_pair)
    });
    // Minimal triples come from the miner (supersets of correlated pairs
    // are not minimal and are skipped, exactly as the paper reports).
    let (result, _) = timed(|| mine(&db, &corpus_config()));
    let max_minimal_triple = result
        .significant
        .iter()
        .filter(|r| r.itemset.len() == 3)
        .map(|r| r.chi2.statistic)
        .fold(0.0f64, f64::max);
    let n_triples = result
        .levels
        .iter()
        .find(|l| l.level == 3)
        .map_or(0, |l| l.significant);
    format!(
        "Section 5.2 — corpus statistics\n\n\
         distinct words after 10% df-pruning: {k} (paper: 416)\n\
         word pairs: {n_pairs} (paper: 86,320)\n\
         correlated pairs at 95%: {correlated} ({:.1}% — paper: 8,329 = ~10%)\n\
         largest pair chi2: {:.1} (paper: 91.0 for nelson/mandela)\n\
         minimal correlated triples found: {n_triples}\n\
         largest minimal-triple chi2: {:.2} (paper: no triple above 10)\n\
         pair scan: {pair_secs:.2}s\n",
        100.0 * correlated as f64 / n_pairs as f64,
        max_pair,
        max_minimal_triple,
    )
}

/// The planted ground truth, verified — the corpus's answer key.
pub fn planted_check(db: &BasketDatabase) -> String {
    let test = Chi2Test::default();
    let mut out = String::from("Planted-structure check\n\n");
    for (a, b) in bmb_datasets::text::planted_pairs() {
        let (Some(ia), Some(ib)) = (db.catalog().unwrap().get(a), db.catalog().unwrap().get(b))
        else {
            out.push_str(&format!("  {a}/{b}: pruned (df too low)\n"));
            continue;
        };
        let table = ContingencyTable::from_database(db, &Itemset::from_items([ia, ib]));
        let outcome = test.test_dense(&table);
        out.push_str(&format!(
            "  {a}/{b}: chi2 = {:.1}, significant: {}\n",
            outcome.statistic, outcome.significant
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A light corpus for tests: far fewer filler words so the level-3
    /// candidate space stays small under `cargo test` (debug).
    fn small_params() -> TextParams {
        TextParams {
            vocabulary: 12_000,
            min_tokens: 120,
            max_tokens: 250,
            ..TextParams::default()
        }
    }

    #[test]
    fn table4_surfaces_planted_collocations() {
        let t = table4_with(&small_params());
        assert!(t.contains("mandela"), "{t}");
        assert!(t.contains("nelson"), "{t}");
    }

    #[test]
    fn corpus_stats_report_the_shape() {
        let s = corpus_stats_with(&small_params());
        assert!(s.contains("correlated pairs at 95%"));
        assert!(s.contains("minimal correlated triples found"));
    }

    #[test]
    fn planted_check_runs() {
        let db = generate(&small_params());
        let c = planted_check(&db);
        assert!(c.contains("mandela/nelson"));
        assert!(c.contains("significant: true"));
    }
}

//! Census reports: Tables 1, 2, 3 and Examples 4–5.

use bmb_apriori::{all_pair_reports, ALL_PAIR_RULES};
use bmb_basket::{ContingencyTable, ItemId, Itemset};
use bmb_core::{mine, pairs_report, MinerConfig, SupportSpec};
use bmb_datasets::census::schema::CENSUS_ATTRIBUTES;
use bmb_datasets::census::targets::{target_for, PAIR_TARGETS};
use bmb_datasets::{generate_census, paper_sample};
use bmb_stats::{Chi2Test, InterestReport};

use crate::table::{num, starred, TextTable};
use crate::timed;

/// Table 1: the item schema and the 9-person sample.
pub fn table1() -> String {
    let mut out = String::from("Table 1 — census item space I and sample of B\n\n");
    let mut schema = TextTable::new(["item", "attribute", "possible non-attribute values"]);
    for attr in &CENSUS_ATTRIBUTES {
        schema.row([attr.id, attr.present, attr.absent]);
    }
    out.push_str(&schema.render());
    out.push_str("\nFirst 9 baskets (reconstruction consistent with Example 3):\n\n");
    let sample = paper_sample();
    let mut baskets = TextTable::new(["basket", "items"]);
    for (i, basket) in sample.baskets().enumerate() {
        let items: Vec<String> = basket.iter().map(|it| format!("i{}", it.0)).collect();
        baskets.row([format!("{}", i + 1), items.join(" ")]);
    }
    out.push_str(&baskets.render());
    out
}

/// Table 2: χ² and interest values for all 45 pairs, side by side with the
/// paper's published values.
pub fn table2() -> String {
    let (db, gen_secs) = timed(generate_census);
    let test = Chi2Test::default();
    let (rows, mine_secs) = timed(|| pairs_report(&db, &test));
    let mut table = TextTable::new([
        "a b", "chi2", "paper", "I(ab)", "I(!ab)", "I(a!b)", "I(!a!b)", "extreme",
    ]);
    let mut verdict_matches = 0usize;
    for row in &rows {
        let target = target_for(row.a.index(), row.b.index()).expect("pair target");
        if row.chi2.significant == target.paper_significant() {
            verdict_matches += 1;
        }
        let labels = ["ab", "!ab", "a!b", "!a!b"];
        table.row([
            format!("i{} i{}", row.a.0, row.b.0),
            starred(num(row.chi2.statistic, 2), row.chi2.significant),
            starred(num(target.paper_chi2, 2), target.paper_significant()),
            num(row.interests[0], 3),
            num(row.interests[1], 3),
            num(row.interests[2], 3),
            num(row.interests[3], 3),
            if row.chi2.significant {
                labels[row.most_extreme].to_string()
            } else {
                "-".into()
            },
        ]);
    }
    format!(
        "Table 2 — chi-squared and interest for all census pairs\n\
         (n = {}, alpha = 95%, cutoff = 3.84; '*' marks significance — the paper's bold)\n\n{}\n\
         significance verdicts matching the paper: {}/45\n\
         dataset generation: {:.2}s, pair analysis: {:.3}s\n",
        db.len(),
        table.render(),
        verdict_matches,
        gen_secs,
        mine_secs,
    )
}

/// Table 3: the support-confidence framework on the same 45 pairs.
pub fn table3() -> String {
    let (db, _) = timed(generate_census);
    let n = db.len() as u64;
    let support_cutoff = 0.01;
    let confidence_cutoff = 0.5;
    let (reports, secs) = timed(|| all_pair_reports(&db));
    let mut table = TextTable::new([
        "a b", "s(ab)", "s(!ab)", "s(a!b)", "s(!a!b)", "a>b", "!a>b", "a>!b", "!a>!b", "b>a",
        "b>!a", "!b>a", "!b>!a",
    ]);
    for r in &reports {
        let supports = r.supports_in_table_order();
        let mut cells: Vec<String> = vec![format!("i{} i{}", r.a.0, r.b.0)];
        for s in supports {
            cells.push(starred(num(s * 100.0, 1), s + 1e-12 >= support_cutoff));
        }
        for rule in ALL_PAIR_RULES {
            let conf = r.confidence(rule);
            let passes = r.rule_passes(rule, support_cutoff, confidence_cutoff);
            cells.push(match conf {
                Some(c) => starred(num(c, 2), passes),
                None => "-".into(),
            });
        }
        table.row(cells);
    }
    format!(
        "Table 3 — support-confidence on all census pairs\n\
         (n = {n}, support cutoff 1%, confidence cutoff 0.5; '*' marks values passing\n\
         their cutoff — confidences additionally require their cell's support)\n\n{}\n\
         analysis: {secs:.3}s\n",
        table.render()
    )
}

/// Examples 4 and 5: military service vs. age, both frameworks.
pub fn examples_4_and_5() -> String {
    let db = generate_census();
    let set = Itemset::from_ids([2, 7]);
    let table = ContingencyTable::from_database(&db, &set);
    let outcome = Chi2Test::default().test_dense(&table);
    let interest = InterestReport::analyze(&table);

    let mut out = String::from("Example 4 — military service (i2) vs age (i7)\n\n");
    let mut counts = TextTable::new(["", "i2 (never served)", "!i2 (veteran)", "row sum"]);
    // Paper layout: rows = age, columns = military service.
    let o = |mask: u32| table.observed(mask);
    counts.row([
        "i7 (<= 40)".to_string(),
        o(0b11).to_string(),
        o(0b10).to_string(),
        (o(0b11) + o(0b10)).to_string(),
    ]);
    counts.row([
        "!i7 (> 40)".to_string(),
        o(0b01).to_string(),
        o(0b00).to_string(),
        (o(0b01) + o(0b00)).to_string(),
    ]);
    out.push_str(&counts.render());
    out.push_str(&format!(
        "\nchi-squared = {:.2} (paper: 2006.34), significant at 95%: {}\n",
        outcome.statistic, outcome.significant
    ));
    let major = interest.major_dependence();
    out.push_str(&format!(
        "largest chi2 contribution: cell mask {:#04b} (veteran and over 40 = 0b00), contribution {:.1}\n",
        major.cell, major.chi2_contribution
    ));

    out.push_str("\nSupport-confidence on the same pair (support 1%, confidence 50%):\n");
    let report = bmb_apriori::PairReport::from_database(&db, ItemId(2), ItemId(7));
    for rule in ALL_PAIR_RULES {
        if report.rule_passes(rule, 0.01, 0.5) {
            out.push_str(&format!(
                "  passes: {} (confidence {:.2})\n",
                rule.label(),
                report.confidence(rule).unwrap()
            ));
        }
    }
    out.push_str(
        "  (the chi-squared-dominant fact — veteran ∧ over-40 — ranks LAST among these\n   rules by support, the paper's Example 4 punchline)\n",
    );

    out.push_str("\nExample 5 — interest values for the same table\n\n");
    let mut interests = TextTable::new(["", "i2", "!i2"]);
    interests.row([
        "i7".to_string(),
        num(interest.interest(0b11), 2),
        num(interest.interest(0b10), 2),
    ]);
    interests.row([
        "!i7".to_string(),
        num(interest.interest(0b01), 2),
        num(interest.interest(0b00), 2),
    ]);
    out.push_str(&interests.render());
    out.push_str("\n(paper: 1.07 / 0.44 on the top row, 0.89 / 1.99 on the bottom)\n");
    out
}

/// Runs the full miner on the census data at the paper's settings and
/// summarizes — the Section 5.1 experiment.
pub fn census_mining_run() -> String {
    let (db, gen_secs) = timed(generate_census);
    let config = MinerConfig {
        support: SupportSpec::Fraction(0.01),
        support_fraction: 0.26,
        ..MinerConfig::default()
    };
    let (result, mine_secs) = timed(|| mine(&db, &config));
    let expected_sig = PAIR_TARGETS
        .iter()
        .filter(|t| t.paper_significant())
        .count();
    let mut out = format!(
        "Section 5.1 — full x2-support run on the census (n = {}, k = 10)\n\
         support s = 1% (count {}), p = 0.26, alpha = 95%\n\n",
        db.len(),
        result.support_count
    );
    let mut table = TextTable::new(["level", "itemsets", "CAND", "discards", "SIG", "NOTSIG"]);
    for l in &result.levels {
        table.row([
            l.level.to_string(),
            l.lattice_itemsets.to_string(),
            l.candidates.to_string(),
            l.discards.to_string(),
            l.significant.to_string(),
            l.not_significant.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nsignificant pairs found: {} (paper's Table 2 bolds {expected_sig} of 45)\n\
         mining wall-clock: {mine_secs:.3}s (paper: 3.6s CPU on a 90 MHz Pentium)\n\
         dataset generation: {gen_secs:.2}s\n",
        result.levels.first().map_or(0, |l| l.significant),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_schema_and_sample() {
        let t = table1();
        assert!(t.contains("drives alone"));
        assert!(t.contains("householder"));
        // 9 sample baskets.
        assert!(t.contains("\n9 "));
    }

    #[test]
    fn table2_matches_all_verdicts() {
        let t = table2();
        assert!(
            t.contains("significance verdicts matching the paper: 45/45"),
            "{t}"
        );
    }

    #[test]
    fn table3_has_45_rows() {
        let t = table3();
        let data_lines = t.lines().filter(|l| l.starts_with('i')).count();
        assert_eq!(data_lines, 45, "{t}");
    }

    #[test]
    fn examples_report_mentions_key_numbers() {
        let e = examples_4_and_5();
        assert!(e.contains("2006.34"));
        assert!(e.contains("significant at 95%: true"));
    }

    #[test]
    fn mining_run_finds_the_bolded_pairs() {
        let r = census_mining_run();
        assert!(
            r.contains("Table 2 bolds 38 of 45") || r.contains("of 45"),
            "{r}"
        );
    }
}

//! # bmb-bench — the table-regeneration harness
//!
//! One module per experiment of the paper; each returns its report as a
//! `String` so the thin binaries in `src/bin/` (and the all-in-one
//! `repro_all`) can print or collect them. Criterion micro-benchmarks for
//! the ablations called out in DESIGN.md live in `benches/`.

#![warn(missing_docs)]

pub mod census;
pub mod examples;
pub mod quest;
pub mod table;
pub mod text;

/// Runs a closure and returns its result with the wall-clock seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

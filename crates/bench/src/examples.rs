//! Examples 1–3: the worked examples of Sections 1–3.

use bmb_apriori::evaluate_rule;
use bmb_basket::{ContingencyTable, Itemset, ScanCounter, SupportCounter};
use bmb_datasets::{doughnuts, paper_sample, tea_coffee};
use bmb_stats::{dependence_ratio, Chi2Test};

use crate::table::{num, TextTable};

/// Example 1: tea ⇒ coffee looks good under support-confidence but the
/// items are negatively correlated.
pub fn example1() -> String {
    let db = tea_coffee();
    let catalog = db.catalog().expect("named items");
    let tea = catalog.get("tea").unwrap();
    let coffee = catalog.get("coffee").unwrap();
    let counter = ScanCounter::new(&db);
    let rule = evaluate_rule(
        &counter,
        &Itemset::singleton(tea),
        &Itemset::singleton(coffee),
    )
    .unwrap();
    let dep = dependence_ratio(
        db.len() as u64,
        db.item_count(tea),
        db.item_count(coffee),
        counter.support_count(&[tea, coffee]),
    )
    .unwrap();
    let mut t = TextTable::new(["", "c", "!c", "row"]);
    t.row(["t", "20", "5", "25"]);
    t.row(["!t", "70", "5", "75"]);
    t.row(["col", "90", "10", "100"]);
    format!(
        "Example 1 — tea and coffee (percentages of n = 100 baskets)\n\n{}\n\
         support(t => c)    = {:.0}%   (paper: 20%, \"fairly high\")\n\
         confidence(t => c) = {:.0}%   (paper: 80%, \"pretty high\")\n\
         P[t ∧ c]/(P[t]·P[c]) = {:.2}  (paper: 0.89 — less than 1: negative correlation)\n",
        t.render(),
        rule.support * 100.0,
        rule.confidence * 100.0,
        dep,
    )
}

/// Example 2: confidence is not upward closed.
pub fn example2() -> String {
    let db = doughnuts();
    let catalog = db.catalog().expect("named items");
    let c = Itemset::singleton(catalog.get("coffee").unwrap());
    let t = Itemset::singleton(catalog.get("tea").unwrap());
    let d = Itemset::singleton(catalog.get("doughnut").unwrap());
    let counter = ScanCounter::new(&db);
    let c_to_d = evaluate_rule(&counter, &c, &d).unwrap();
    let ct_to_d = evaluate_rule(&counter, &c.union(&t), &d).unwrap();
    format!(
        "Example 2 — confidence forms no border\n\n\
         confidence(c => d)    = {:.2}  (paper: 0.52)\n\
         confidence(c, t => d) = {:.2}  (paper: 0.44)\n\
         At a cutoff of 0.50, c => d passes but its superset rule fails:\n\
         confidence is not upward closed, so it cannot drive border search.\n",
        c_to_d.confidence, ct_to_d.confidence,
    )
}

/// Example 3: the 9-basket sample's (i8, i9) table and its χ² of 0.900.
pub fn example3() -> String {
    let db = paper_sample();
    let set = Itemset::from_ids([8, 9]);
    let table = ContingencyTable::from_database(&db, &set);
    let outcome = Chi2Test::default().test_dense(&table);
    let mut t = TextTable::new(["", "i8", "!i8", "row"]);
    t.row([
        "i9".to_string(),
        table.observed(0b11).to_string(),
        table.observed(0b10).to_string(),
        (table.observed(0b11) + table.observed(0b10)).to_string(),
    ]);
    t.row([
        "!i9".to_string(),
        table.observed(0b01).to_string(),
        table.observed(0b00).to_string(),
        (table.observed(0b01) + table.observed(0b00)).to_string(),
    ]);
    format!(
        "Example 3 — (i8, i9) over the 9-basket census sample\n\n{}\n\
         chi-squared = {}  (paper: 0.900 = 0.267 + 0.333 + 0.133 + 0.167)\n\
         cutoff at 95% = {:.2}; reject independence: {}\n\
         (0.900 < 3.84, so the independence assumption stands)\n",
        t.render(),
        num(outcome.statistic, 3),
        outcome.cutoff,
        outcome.significant,
    )
}

/// All three worked examples.
pub fn all() -> String {
    format!("{}\n{}\n{}", example1(), example2(), example3())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_reports_the_paradox() {
        let e = example1();
        assert!(e.contains("support(t => c)    = 20%"));
        assert!(e.contains("confidence(t => c) = 80%"));
        assert!(e.contains("= 0.89"));
    }

    #[test]
    fn example2_reports_non_closure() {
        let e = example2();
        assert!(e.contains("= 0.52"));
        assert!(e.contains("= 0.44"));
    }

    #[test]
    fn example3_reports_0_900() {
        let e = example3();
        assert!(e.contains("chi-squared = 0.900"), "{e}");
        assert!(e.contains("reject independence: false"));
    }
}

//! Quest reports: Table 5 (pruning effectiveness) and scaling sweeps.
//!
//! Calibration notes (full detail in EXPERIMENTS.md): the paper does not
//! print its absolute support threshold. We choose `s = 1.5%` because it
//! makes the level-2 row land on the published numbers almost exactly
//! (CAND₂ 8778 vs 8019, NOTSIG₂ 3584 vs 3582). The level-3 candidate count
//! is the one quantity the published description does not pin down — it
//! depends on the *triangle density* of the NOTSIG pair graph, a
//! microstructural property of the authors' Quest binary's output — so the
//! report prints our measured row next to the paper's and the discussion
//! lives in EXPERIMENTS.md. Both degrees-of-freedom conventions are run:
//! the paper's single-df everywhere, and the saturated-model df whose
//! deep-level behaviour (SIG₃ ≪ SIG₂, early termination) matches the
//! published shape.

use bmb_core::{mine, LevelStats, MinerConfig, MiningResult, SupportSpec};
use bmb_quest::{generate, QuestParams};
use bmb_stats::DfConvention;

use crate::table::TextTable;
use crate::timed;

/// The paper's Table 5 rows, for side-by-side display.
pub const PAPER_TABLE5: [LevelStats; 3] = [
    LevelStats {
        level: 2,
        lattice_itemsets: 378_015,
        candidates: 8019,
        discards: 323,
        significant: 4114,
        not_significant: 3582,
    },
    LevelStats {
        level: 3,
        lattice_itemsets: 109_372_340,
        candidates: 782,
        discards: 647,
        significant: 17,
        not_significant: 118,
    },
    LevelStats {
        level: 4,
        lattice_itemsets: 23_706_454_695,
        candidates: 0,
        discards: 0,
        significant: 0,
        not_significant: 0,
    },
];

/// Miner settings for the Quest workload (see module docs for the
/// calibration rationale).
pub fn quest_config(threads: usize) -> MinerConfig {
    MinerConfig {
        support: SupportSpec::Fraction(0.015),
        support_fraction: 0.45,
        low_expectation_cutoff: Some(1.0),
        max_level: 5,
        threads,
        ..MinerConfig::default()
    }
}

/// Renders measured level stats against the paper's Table 5.
pub fn render_table5(label: &str, result: &MiningResult, n: usize, k: usize) -> String {
    let mut table = TextTable::new([
        "level",
        "itemsets",
        "CAND",
        "discards",
        "SIG",
        "NOTSIG",
        "| paper CAND",
        "discards",
        "SIG",
        "NOTSIG",
    ]);
    let max_rows = result.levels.len().max(PAPER_TABLE5.len());
    for i in 0..max_rows {
        let level = i + 2;
        let measured = result.levels.get(i).copied().unwrap_or(LevelStats {
            level,
            lattice_itemsets: bmb_core::lattice_level_size(k, level),
            ..Default::default()
        });
        let paper = PAPER_TABLE5.get(i).copied().unwrap_or(LevelStats {
            level,
            ..Default::default()
        });
        table.row([
            level.to_string(),
            measured.lattice_itemsets.to_string(),
            measured.candidates.to_string(),
            measured.discards.to_string(),
            measured.significant.to_string(),
            measured.not_significant.to_string(),
            format!("| {}", paper.candidates),
            paper.discards.to_string(),
            paper.significant.to_string(),
            paper.not_significant.to_string(),
        ]);
    }
    format!(
        "Table 5 [{label}] — pruning effectiveness on Quest synthetic data\n\
         (n = {n}, k = {k}, |T| = 20, |I| = 4; s = 1.5%, p = 0.45, alpha = 95%,\n\
         cells with E < 1 ignored per Section 3.3; right columns = paper)\n\n{}",
        table.render()
    )
}

/// The full Table 5 experiment.
pub fn table5(threads: usize) -> String {
    table5_at(QuestParams::paper_table5(), threads)
}

/// A reduced-scale variant for quick runs and tests (10% of the baskets).
pub fn table5_small(threads: usize) -> String {
    table5_at(
        QuestParams {
            n_transactions: 10_000,
            ..QuestParams::paper_table5()
        },
        threads,
    )
}

fn table5_at(params: QuestParams, threads: usize) -> String {
    let (db, gen_secs) = timed(|| generate(&params));
    let (paper_df, paper_secs) = timed(|| mine(&db, &quest_config(threads)));
    let (saturated, saturated_secs) = timed(|| {
        mine(
            &db,
            &MinerConfig {
                df: DfConvention::Saturated,
                ..quest_config(threads)
            },
        )
    });
    let mut out = render_table5(
        "paper single-df convention",
        &paper_df,
        db.len(),
        db.n_items(),
    );
    out.push('\n');
    out.push_str(&render_table5(
        "saturated-df convention",
        &saturated,
        db.len(),
        db.n_items(),
    ));
    out.push_str(&format!(
        "\ngeneration: {gen_secs:.1}s; mining: {paper_secs:.1}s (single-df), {saturated_secs:.1}s (saturated)\n\
         (paper: 2349s CPU on a 166 MHz Pentium Pro)\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_are_internally_consistent() {
        for row in PAPER_TABLE5 {
            assert!(row.is_consistent(), "{row:?}");
        }
    }

    #[test]
    fn small_run_shows_the_pruning_shape() {
        // The qualitative claims of Section 5.3 at reduced scale: level-1
        // pruning cuts the lattice by orders of magnitude, and the search
        // terminates within the level cap.
        let params = QuestParams {
            n_transactions: 10_000,
            ..QuestParams::paper_table5()
        };
        let db = generate(&params);
        let result = mine(&db, &quest_config(4));
        let l2 = result.levels[0];
        assert!(l2.candidates > 0);
        assert!(
            (l2.candidates as u64) < l2.lattice_itemsets / 20,
            "level-1 pruning ineffective: {} of {}",
            l2.candidates,
            l2.lattice_itemsets
        );
        for level in &result.levels {
            assert!(level.is_consistent());
        }
        assert!(result.levels.len() <= 4, "level cap respected");
    }

    #[test]
    fn saturated_df_tames_deep_levels() {
        // Under the saturated convention, deep levels face cutoffs that
        // grow with 2^m, so level-3 significance falls below level-2 — the
        // direction of the paper's published rows (17 vs 4114; the full
        // 99,997-basket run in EXPERIMENTS.md shows a 5.8x collapse).
        let params = QuestParams {
            n_transactions: 6_000,
            ..QuestParams::paper_table5()
        };
        let db = generate(&params);
        let paper_df = mine(&db, &quest_config(1));
        let saturated = mine(
            &db,
            &MinerConfig {
                df: DfConvention::Saturated,
                ..quest_config(1)
            },
        );
        let sig2 = saturated.levels[0].significant;
        let sig3 = saturated.levels.get(1).map_or(0, |l| l.significant);
        assert!(sig2 > 0);
        assert!(
            sig3 < sig2,
            "saturated df should reduce level-3 significance: {sig3} vs {sig2}"
        );
        // And it is strictly more conservative than the paper convention.
        let paper_sig3 = paper_df.levels.get(1).map_or(0, |l| l.significant);
        assert!(sig3 <= paper_sig3);
    }

    #[test]
    fn render_includes_paper_columns() {
        let db = generate(&QuestParams {
            n_transactions: 1000,
            n_items: 50,
            n_patterns: 20,
            ..QuestParams::default()
        });
        let result = mine(&db, &quest_config(1));
        let rendered = render_table5("test", &result, db.len(), db.n_items());
        assert!(rendered.contains("| 8019"));
        assert!(rendered.contains("Table 5"));
    }
}

//! Cluster loadgen: the same read mix against a 1-shard and a 4-shard
//! in-process cluster, with a machine-readable report.
//!
//! Each configuration spins N shard servers plus a coordinator, ingests
//! a seeded Quest workload through the coordinator (so the partitioner
//! routes it), then replays a chi2 / batched-chi2 / topk mix from
//! several client connections. Per-configuration throughput and the
//! coordinator's latency percentiles land in `BENCH_<rev>.json`
//! (`<rev>` is the short git revision, `dev` outside a checkout) — a
//! comparison artifact, not a CI gate.
//!
//! Usage: `cluster_bench [--clients N] [--requests N] [--seed N]
//! [--out PATH]`

use std::sync::Arc;
use std::time::Instant;

use bmb_cluster::{CoordinatorConfig, CoordinatorService};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::{parse, Value};
use bmb_serve::server::RunningServer;
use bmb_serve::{Client, Server, ServerConfig, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: usize = 32;

/// One client's request: mostly point chi2 lookups, some batches and
/// top-k sweeps — the coordinator scatters every one of them.
fn request_line(rng: &mut StdRng, id: i64) -> String {
    match rng.gen_range(0..10u32) {
        0..=5 => {
            let a = rng.gen_range(0..N_ITEMS as u32);
            let b = (a + 1 + rng.gen_range(0..(N_ITEMS as u32 - 1))) % N_ITEMS as u32;
            format!(r#"{{"id":{id},"cmd":"chi2","items":[{a},{b}]}}"#)
        }
        6..=8 => {
            let sets: Vec<String> = (0..4)
                .map(|_| format!("[{}]", rng.gen_range(0..N_ITEMS as u32)))
                .collect();
            format!(
                r#"{{"id":{id},"cmd":"chi2_batch","itemsets":[{}]}}"#,
                sets.join(",")
            )
        }
        _ => format!(r#"{{"id":{id},"cmd":"topk","k":5}}"#),
    }
}

/// Boots `n_shards` plain in-memory shard servers plus a coordinator.
fn boot_cluster(n_shards: usize) -> (Vec<RunningServer>, RunningServer, String) {
    let mut shards = Vec::with_capacity(n_shards);
    let mut addrs = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let store = Arc::new(bmb_basket::IncrementalStore::new(
            N_ITEMS,
            bmb_basket::StoreConfig::default(),
        ));
        let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
        let server = Server::bind(engine, ServerConfig::default()).expect("bind shard");
        addrs.push(server.local_addr().to_string());
        shards.push(server.spawn());
    }
    let config = CoordinatorConfig::new(N_ITEMS, addrs);
    let service = Arc::new(CoordinatorService::new(config)) as Arc<dyn Service>;
    let server = Server::bind_service(service, ServerConfig::default()).expect("bind coordinator");
    let addr = server.local_addr().to_string();
    (shards, server.spawn(), addr)
}

/// Runs the read mix against one cluster size; returns the report row.
fn run_once(n_shards: usize, clients: usize, requests: usize, seed: u64) -> Value {
    let (shards, coordinator, addr) = boot_cluster(n_shards);

    // Seeded ingest through the coordinator, 100 baskets per line.
    let quest = bmb_quest::generate(&bmb_quest::QuestParams {
        n_transactions: 2000,
        n_items: N_ITEMS,
        avg_transaction_len: 5.0,
        n_patterns: 50,
        seed,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("ingest connect");
    for chunk in quest.baskets().collect::<Vec<_>>().chunks(100) {
        let baskets: Vec<String> = chunk
            .iter()
            .map(|b| {
                let ids: Vec<String> = b.iter().map(|i| i.0.to_string()).collect();
                format!("[{}]", ids.join(","))
            })
            .collect();
        client
            .request_line(&format!(
                r#"{{"cmd":"ingest","baskets":[{}]}}"#,
                baskets.join(",")
            ))
            .expect("ingest");
    }

    let start = Instant::now();
    let total: u64 = crossbeam::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64) << 32));
                    let mut client = Client::connect(addr).expect("client connect");
                    let mut ok = 0u64;
                    for r in 0..requests {
                        let line = request_line(&mut rng, r as i64);
                        let response = client.request_line(&line).expect("request");
                        let value = parse(&response).expect("response JSON");
                        assert_eq!(
                            value.get("ok").and_then(Value::as_bool),
                            Some(true),
                            "request failed: {response}"
                        );
                        ok += 1;
                    }
                    ok
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("worker")).sum()
    })
    .expect("scope");
    let elapsed = start.elapsed();

    let mut client = Client::connect(&addr).expect("stats connect");
    let stats = client
        .request(&parse(r#"{"cmd":"stats"}"#).expect("literal"))
        .expect("stats");
    let p50 = stats.get("p50_us").and_then(Value::as_i64).unwrap_or(0);
    let p99 = stats.get("p99_us").and_then(Value::as_i64).unwrap_or(0);

    coordinator.stop().expect("stop coordinator");
    for shard in shards {
        shard.stop().expect("stop shard");
    }

    let rps = total as f64 / elapsed.as_secs_f64();
    println!(
        "{n_shards} shard(s): {total} requests over {elapsed:?} \
         ({rps:.0} req/s, p50 {p50}us, p99 {p99}us)"
    );
    Value::object()
        .with("shards", Value::Int(n_shards as i64))
        .with("clients", Value::Int(clients as i64))
        .with("requests", Value::Int(total as i64))
        .with("elapsed_us", Value::Int(elapsed.as_micros() as i64))
        .with("req_per_sec", Value::float(rps))
        .with("p50_us", Value::Int(p50))
        .with("p99_us", Value::Int(p99))
}

/// The short git revision, or `dev` when git is unavailable.
fn short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "dev".to_string())
}

fn main() {
    let mut clients = 4usize;
    let mut requests = 250usize;
    let mut seed = 0xC1u64;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--clients" => clients = take("--clients").parse().expect("--clients"),
            "--requests" => requests = take("--requests").parse().expect("--requests"),
            "--seed" => seed = take("--seed").parse().expect("--seed"),
            "--out" => out_path = Some(take("--out")),
            other => panic!("unknown flag {other}"),
        }
    }

    let runs: Vec<Value> = [1usize, 4]
        .iter()
        .map(|&n| run_once(n, clients, requests, seed))
        .collect();
    let rev = short_rev();
    let report = Value::object()
        .with("bench", Value::Str("cluster_serve".to_string()))
        .with("rev", Value::Str(rev.clone()))
        .with("seed", Value::Int(seed as i64))
        .with("runs", Value::Array(runs));
    let path = out_path.unwrap_or_else(|| format!("BENCH_{rev}.json"));
    std::fs::write(&path, format!("{report}\n")).expect("write report");
    println!("wrote {path}");
}

//! Regenerates the paper's Table 1 (census schema + sample baskets).
fn main() {
    print!("{}", bmb_bench::census::table1());
}

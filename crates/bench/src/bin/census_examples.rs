//! Regenerates Examples 4 and 5 plus the Section 5.1 mining run.
fn main() {
    print!("{}", bmb_bench::census::examples_4_and_5());
    println!();
    print!("{}", bmb_bench::census::census_mining_run());
}

//! Load generator for the correlation-query server.
//!
//! Spins an in-process server seeded with the census database (or targets
//! a running one via `--addr HOST:PORT`), then replays a census point-query
//! mix (chi2 / interest / batched chi2 / topk) from several client
//! connections while one writer ingests Quest baskets concurrently — the
//! serving-layer workload DESIGN.md describes. Prints client-side
//! throughput and the server's own `/stats` counters at the end.
//!
//! Usage: `serve_loadgen [--addr HOST:PORT] [--clients N] [--requests N]
//! [--seed N]`

use std::sync::Arc;
use std::time::Instant;

use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::{parse, Value};
use bmb_serve::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One client's share of the mix: census item pairs the paper highlights
/// plus uniformly drawn pairs/triples.
fn request_line(rng: &mut StdRng, n_items: usize, id: i64) -> String {
    match rng.gen_range(0..10u32) {
        // Hot set: repeated point lookups that should hit the table cache.
        0..=3 => format!(r#"{{"id":{id},"cmd":"chi2","items":[2,7]}}"#),
        4..=5 => {
            let a = rng.gen_range(0..n_items as u32);
            let b = rng.gen_range(0..n_items as u32);
            if a == b {
                format!(r#"{{"id":{id},"cmd":"chi2","items":[{a}]}}"#)
            } else {
                format!(r#"{{"id":{id},"cmd":"chi2","items":[{a},{b}]}}"#)
            }
        }
        6 => {
            let a = rng.gen_range(0..n_items as u32);
            format!(r#"{{"id":{id},"cmd":"interest","items":[{a}],"cell":1}}"#)
        }
        7..=8 => {
            // Batched lookups: several itemsets against one snapshot.
            let sets: Vec<String> = (0..4)
                .map(|_| {
                    let a = rng.gen_range(0..n_items as u32);
                    format!("[{a}]")
                })
                .collect();
            format!(
                r#"{{"id":{id},"cmd":"chi2_batch","itemsets":[{}]}}"#,
                sets.join(",")
            )
        }
        _ => format!(r#"{{"id":{id},"cmd":"topk","k":5}}"#),
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut clients = 4usize;
    let mut requests = 250usize;
    let mut seed = 0x10adu64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(take("--addr")),
            "--clients" => clients = take("--clients").parse().expect("--clients"),
            "--requests" => requests = take("--requests").parse().expect("--requests"),
            "--seed" => seed = take("--seed").parse().expect("--seed"),
            other => panic!("unknown flag {other}"),
        }
    }

    // In-process server over the census data unless an address was given.
    let running = if addr.is_none() {
        let db = bmb_datasets::generate_census();
        println!(
            "seeding in-process server: census, {} baskets x {} items",
            db.len(),
            db.n_items()
        );
        let store = Arc::new(bmb_basket::IncrementalStore::from_database(
            &db,
            bmb_basket::StoreConfig::default(),
        ));
        let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
        let server = Server::bind(engine, ServerConfig::default()).expect("bind");
        let running = server.spawn();
        addr = Some(running.addr.to_string());
        Some(running)
    } else {
        None
    };
    let addr = addr.expect("resolved above");
    let n_items = 10usize; // census item space

    // One writer ingests Quest baskets (trimmed to the item space) while
    // the query mix runs: the ingest-vs-query scenario.
    let quest = bmb_quest::generate(&bmb_quest::QuestParams {
        n_transactions: 2000,
        n_items,
        avg_transaction_len: 4.0,
        n_patterns: 50,
        seed,
        ..Default::default()
    });
    let ingest_lines: Vec<String> = quest
        .baskets()
        .collect::<Vec<_>>()
        .chunks(100)
        .map(|chunk| {
            let baskets: Vec<String> = chunk
                .iter()
                .map(|b| {
                    let ids: Vec<String> = b.iter().map(|i| i.0.to_string()).collect();
                    format!("[{}]", ids.join(","))
                })
                .collect();
            format!(r#"{{"cmd":"ingest","baskets":[{}]}}"#, baskets.join(","))
        })
        .collect();

    let start = Instant::now();
    let total: u64 = crossbeam::thread::scope(|scope| {
        let writer = {
            let addr = addr.clone();
            let lines = &ingest_lines;
            scope.spawn(move |_| {
                let mut client = Client::connect(addr).expect("writer connect");
                for line in lines {
                    client.request_line(line).expect("ingest");
                }
                lines.len() as u64
            })
        };
        let readers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64) << 32);
                    let mut client = Client::connect(addr).expect("client connect");
                    let mut ok = 0u64;
                    for r in 0..requests {
                        let line = request_line(&mut rng, n_items, r as i64);
                        let response = client.request_line(&line).expect("request");
                        let value = parse(&response).expect("response JSON");
                        if value.get("ok").and_then(Value::as_bool) == Some(true) {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let mut total = writer.join().expect("writer");
        for reader in readers {
            total += reader.join().expect("reader");
        }
        total
    })
    .expect("scope");
    let elapsed = start.elapsed();

    let mut client = Client::connect(&addr).expect("stats connect");
    let stats = client
        .request(&parse(r#"{"cmd":"stats"}"#).expect("literal"))
        .expect("stats");
    println!(
        "{total} requests over {elapsed:?} ({:.0} req/s client-side)",
        total as f64 / elapsed.as_secs_f64()
    );
    for key in [
        "requests",
        "errors",
        "ingested_baskets",
        "epoch",
        "ingest_lag",
        "table_hit_rate",
        "p50_us",
        "p99_us",
    ] {
        if let Some(v) = stats.get(key) {
            println!("  {key}: {v}");
        }
    }
    if let Some(running) = running {
        running.stop().expect("shutdown");
    }
}

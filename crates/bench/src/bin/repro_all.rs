//! Runs every experiment of the paper in sequence — the single command
//! behind EXPERIMENTS.md. Pass `--small` to shrink the Quest run.
fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let sections: Vec<String> = vec![
        bmb_bench::examples::all(),
        bmb_bench::census::table1(),
        bmb_bench::census::table2(),
        bmb_bench::census::table3(),
        bmb_bench::census::examples_4_and_5(),
        bmb_bench::census::census_mining_run(),
        bmb_bench::text::table4(),
        bmb_bench::text::corpus_stats(),
        if small {
            bmb_bench::quest::table5_small(threads)
        } else {
            bmb_bench::quest::table5(threads)
        },
    ];
    for (i, s) in sections.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        print!("{s}");
    }
}

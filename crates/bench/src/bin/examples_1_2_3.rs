//! Regenerates the worked Examples 1, 2 and 3.
fn main() {
    print!("{}", bmb_bench::examples::all());
}

//! The non-collapsed census analysis — answering the question Section 5.1
//! says the binary collapse cannot: is the commute/marital dependence
//! about carpooling or about children?
fn main() {
    use bmb_core::categorical_pairs_report;
    use bmb_datasets::census::expanded::{attr, expanded_census};
    use bmb_stats::Chi2Test;

    let data = expanded_census(1997);
    println!("non-collapsed census: {} records, attributes:", data.len());
    for a in data.attributes() {
        println!(
            "  {} ({} values: {})",
            a.name,
            a.cardinality(),
            a.values.join(" / ")
        );
    }
    let rows = categorical_pairs_report(&data, &Chi2Test::default());
    println!("\npairwise chi-squared over multi-valued attributes:");
    println!(
        "{:<22} {:>12} {:>4} {:>9} {:>11}  major dependence",
        "pair", "chi2", "df", "cutoff", "Cramér's V"
    );
    for row in &rows {
        let names = data.attributes();
        let (av, bv, observed, expected) = row.major_dependence;
        println!(
            "{:<22} {:>12.1} {:>4} {:>9.2} {:>11.3}  {}={} & {}={} (O={}, E={:.0})",
            format!("{} x {}", names[row.a].name, names[row.b].name),
            row.chi2.statistic,
            row.chi2.df,
            row.chi2.cutoff,
            row.cramers_v,
            names[row.a].name,
            names[row.a].values[av],
            names[row.b].name,
            names[row.b].values[bv],
            observed,
            expected,
        );
    }
    let commute_age = rows
        .iter()
        .find(|r| (r.a, r.b) == (attr::COMMUTE, attr::AGE))
        .unwrap();
    let commute_marital = rows
        .iter()
        .find(|r| (r.a, r.b) == (attr::COMMUTE, attr::MARITAL))
        .unwrap();
    println!(
        "\nanswer to the paper's open question (in this simulated world):\n\
         V(commute, age) = {:.3} > V(commute, marital) = {:.3} — the marital\n\
         association rides on minors, who can neither drive nor marry.",
        commute_age.cramers_v, commute_marital.cramers_v
    );
}

//! Parameter sweep over the support knobs (s, p) on the Quest workload —
//! shows how the pruning shape of Table 5 responds to the thresholds.
//!
//! Usage: `quest_sweep [--n BASKETS]` (default 10,000).

use bmb_core::{mine, MinerConfig, SupportSpec};
use bmb_quest::{generate, QuestParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let params = QuestParams {
        n_transactions: n,
        ..QuestParams::paper_table5()
    };
    let db = generate(&params);
    println!(
        "Quest sweep: n = {}, k = {}, |T| = 20, |I| = 4\n",
        db.len(),
        db.n_items()
    );
    println!(
        "{:>7} {:>5} | {:>8} {:>8} {:>6} {:>8} | {:>8} {:>8} {:>6} {:>8} | {:>7} {:>6}",
        "s",
        "p",
        "CAND2",
        "disc2",
        "SIG2",
        "NOTSIG2",
        "CAND3",
        "disc3",
        "SIG3",
        "NOTSIG3",
        "levels",
        "secs"
    );
    for s in [0.015, 0.02, 0.03] {
        for (p, low_e) in [(0.26, None), (0.45, None), (0.45, Some(1.0))] {
            let config = MinerConfig {
                support: SupportSpec::Fraction(s),
                support_fraction: p,
                low_expectation_cutoff: low_e,
                max_level: 4,
                threads: std::thread::available_parallelism()
                    .map(|v| v.get())
                    .unwrap_or(1),
                ..MinerConfig::default()
            };
            let start = std::time::Instant::now();
            let result = mine(&db, &config);
            let secs = start.elapsed().as_secs_f64();
            let l2 = result.levels.first().copied().unwrap_or_default();
            let l3 = result.levels.get(1).copied().unwrap_or_default();
            println!(
                "{:>7} {:>5}/{:?} | {:>8} {:>8} {:>6} {:>8} | {:>8} {:>8} {:>6} {:>8} | {:>7} {:>6.1}",
                s,
                p,
                low_e,
                l2.candidates,
                l2.discards,
                l2.significant,
                l2.not_significant,
                l3.candidates,
                l3.discards,
                l3.significant,
                l3.not_significant,
                result.levels.len() + 1,
                secs
            );
        }
    }
}

//! Regenerates the paper's Table 4 (correlated words with major dependence).
fn main() {
    print!("{}", bmb_bench::text::table4());
}

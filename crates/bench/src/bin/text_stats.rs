//! Regenerates the Section 5.2 corpus statistics.
fn main() {
    print!("{}", bmb_bench::text::corpus_stats());
}

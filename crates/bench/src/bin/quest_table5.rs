//! Regenerates the paper's Table 5 (pruning effectiveness on Quest data).
//!
//! Pass `--small` for a 10k-basket quick run; default is the paper's
//! 99,997 baskets. Optional `--threads N` (default: available cores).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
    if args.iter().any(|a| a == "--small") {
        print!("{}", bmb_bench::quest::table5_small(threads));
    } else {
        print!("{}", bmb_bench::quest::table5(threads));
    }
}

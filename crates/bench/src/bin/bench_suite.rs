//! The committed perf trajectory: one fixed, bounded suite whose
//! timings land in `BENCH_<rev>.json` at the repo root, so every
//! revision's numbers are diffable in-repo.
//!
//! Five runs cover the stack end to end: Quest mining (the paper's
//! Table 5 workload at reduced scale), text-corpus mining to level 3,
//! the standalone server under a census query mix with a concurrent
//! writer, a 2-shard scatter-gather cluster under the same kind of mix,
//! and WAL+checkpoint crash recovery. All workloads are seeded, so
//! run-to-run variance is scheduling noise, not workload noise.
//!
//! With `--compare-dir DIR` the suite scans DIR for previously
//! committed `BENCH_*.json` files (other revisions only) and fails —
//! exit 1 — if any run regressed past the noise gate: slower than
//! `NOISE_FACTOR ×` the best committed time for that run *and* slower
//! by at least `MIN_DELTA_US` absolute. The gate is deliberately loose
//! (shared CI runners breathe); its job is catching order-of-magnitude
//! cliffs, not 10% drifts.
//!
//! Usage: `bench_suite [--out PATH] [--compare-dir DIR] [--seed N]`

use std::sync::Arc;
use std::time::Instant;

use bmb_core::{mine, EngineConfig, MinerConfig, QueryEngine, SupportSpec};
use bmb_serve::json::{parse, Value};
use bmb_serve::server::RunningServer;
use bmb_serve::{Client, Server, ServerConfig, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A run is a regression when it is slower than this factor times the
/// best committed baseline. CI machines are noisy; only cliffs fail.
const NOISE_FACTOR: u64 = 3;

/// ...and the absolute slowdown must also clear this floor: the suite's
/// runs are tens of milliseconds, where a scheduling hiccup can triple
/// a number without any code being slower. Both conditions must hold.
const MIN_DELTA_US: u64 = 250_000;

/// Fixed thread count for the mining runs, so the suite measures the
/// same parallelism on every machine.
const MINE_THREADS: usize = 2;

fn run_quest_mine(seed: u64) -> Value {
    // A scaled-down cousin of the Table 5 workload: the same shape
    // (Zipf item skew, planted patterns), sized so the run finishes in
    // about a second — a perf canary, not a fidelity experiment.
    let params = bmb_quest::QuestParams {
        n_transactions: 10_000,
        n_items: 300,
        avg_transaction_len: 10.0,
        avg_pattern_len: 4.0,
        n_patterns: 60,
        item_zipf_exponent: 1.1,
        seed,
        ..bmb_quest::QuestParams::default()
    };
    let config = MinerConfig {
        support: SupportSpec::Fraction(0.02),
        support_fraction: 0.4,
        low_expectation_cutoff: Some(1.0),
        max_level: 4,
        threads: MINE_THREADS,
        ..MinerConfig::default()
    };
    let db = bmb_quest::generate(&params);
    let start = Instant::now();
    let result = mine(&db, &config);
    let elapsed = start.elapsed();
    let candidates: u64 = result.levels.iter().map(|l| l.candidates as u64).sum();
    Value::object()
        .with("name", Value::Str("quest_mine".to_string()))
        .with("elapsed_us", Value::Int(elapsed.as_micros() as i64))
        .with("baskets", Value::Int(db.len() as i64))
        .with("candidates", Value::Int(candidates as i64))
        .with("significant", Value::Int(result.significant.len() as i64))
}

fn run_corpus_level3() -> Value {
    // A reduced corpus (fewer, shorter documents over a smaller
    // vocabulary) mined to level 3 with a harder support floor: the
    // full Table 4 corpus explodes into millions of level-3 candidates
    // and belongs in `repro_all`, not a per-revision canary.
    let db = bmb_datasets::text::generate(&bmb_datasets::text::TextParams {
        n_documents: 60,
        min_tokens: 80,
        max_tokens: 200,
        vocabulary: 1_500,
        ..bmb_datasets::text::TextParams::default()
    });
    let config = MinerConfig {
        support: SupportSpec::Count(12),
        support_fraction: 0.5,
        low_expectation_cutoff: Some(1.0),
        max_level: 3,
        threads: MINE_THREADS,
        ..MinerConfig::default()
    };
    let start = Instant::now();
    let result = mine(&db, &config);
    let elapsed = start.elapsed();
    Value::object()
        .with("name", Value::Str("corpus_level3".to_string()))
        .with("elapsed_us", Value::Int(elapsed.as_micros() as i64))
        .with("words", Value::Int(db.n_items() as i64))
        .with("significant", Value::Int(result.significant.len() as i64))
}

/// The standalone-server mix: point chi2 lookups (hot and uniform),
/// batches, and top-k, shared by the serve and cluster runs.
fn request_line(rng: &mut StdRng, n_items: usize, id: i64) -> String {
    match rng.gen_range(0..10u32) {
        0..=4 => {
            let a = rng.gen_range(0..n_items as u32);
            let b = rng.gen_range(0..n_items as u32);
            if a == b {
                format!(r#"{{"id":{id},"cmd":"chi2","items":[{a}]}}"#)
            } else {
                format!(r#"{{"id":{id},"cmd":"chi2","items":[{a},{b}]}}"#)
            }
        }
        5..=7 => {
            let sets: Vec<String> = (0..4)
                .map(|_| format!("[{}]", rng.gen_range(0..n_items as u32)))
                .collect();
            format!(
                r#"{{"id":{id},"cmd":"chi2_batch","itemsets":[{}]}}"#,
                sets.join(",")
            )
        }
        _ => format!(r#"{{"id":{id},"cmd":"topk","k":5}}"#),
    }
}

/// Replays the mix from `clients` connections, returning (requests, secs).
fn drive_mix(addr: &str, n_items: usize, clients: usize, requests: usize, seed: u64) -> (u64, f64) {
    let start = Instant::now();
    let total: u64 = crossbeam::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.to_string();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64) << 32));
                    let mut client = Client::connect(addr).expect("client connect");
                    for r in 0..requests {
                        let line = request_line(&mut rng, n_items, r as i64);
                        client.request_line(&line).expect("request");
                    }
                    requests as u64
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("worker")).sum()
    })
    .expect("scope");
    (total, start.elapsed().as_secs_f64())
}

fn run_serve_loadgen(seed: u64) -> Value {
    let db = bmb_datasets::generate_census();
    let n_items = db.n_items();
    let store = Arc::new(bmb_basket::IncrementalStore::from_database(
        &db,
        bmb_basket::StoreConfig::default(),
    ));
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
    let server = Server::bind(engine, ServerConfig::default()).expect("bind server");
    let addr = server.local_addr().to_string();
    let running = server.spawn();
    let (total, secs) = drive_mix(&addr, n_items, 2, 200, seed);
    running.stop().expect("stop server");
    Value::object()
        .with("name", Value::Str("serve_loadgen".to_string()))
        .with("elapsed_us", Value::Int((secs * 1e6) as i64))
        .with("requests", Value::Int(total as i64))
        .with("req_per_sec", Value::float(total as f64 / secs))
}

fn run_cluster_bench(seed: u64) -> Value {
    const N_ITEMS: usize = 32;
    let mut shards: Vec<RunningServer> = Vec::new();
    let mut shard_addrs = Vec::new();
    for _ in 0..2 {
        let store = Arc::new(bmb_basket::IncrementalStore::new(
            N_ITEMS,
            bmb_basket::StoreConfig::default(),
        ));
        let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
        let server = Server::bind(engine, ServerConfig::default()).expect("bind shard");
        shard_addrs.push(server.local_addr().to_string());
        shards.push(server.spawn());
    }
    let coordinator = Arc::new(bmb_cluster::CoordinatorService::new(
        bmb_cluster::CoordinatorConfig::new(N_ITEMS, shard_addrs),
    )) as Arc<dyn Service>;
    let server =
        Server::bind_service(coordinator, ServerConfig::default()).expect("bind coordinator");
    let addr = server.local_addr().to_string();
    let running = server.spawn();

    // Seed through the coordinator so the partitioner routes baskets.
    let quest = bmb_quest::generate(&bmb_quest::QuestParams {
        n_transactions: 1_000,
        n_items: N_ITEMS,
        avg_transaction_len: 4.0,
        n_patterns: 30,
        seed,
        ..bmb_quest::QuestParams::default()
    });
    let mut client = Client::connect(&addr).expect("ingest connect");
    for chunk in quest.baskets().collect::<Vec<_>>().chunks(100) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|b| {
                let ids: Vec<String> = b.iter().map(|i| i.0.to_string()).collect();
                format!("[{}]", ids.join(","))
            })
            .collect();
        client
            .request_line(&format!(
                r#"{{"cmd":"ingest","baskets":[{}]}}"#,
                rows.join(",")
            ))
            .expect("ingest");
    }

    let (total, secs) = drive_mix(&addr, N_ITEMS, 2, 150, seed);
    running.stop().expect("stop coordinator");
    for shard in shards {
        shard.stop().expect("stop shard");
    }
    Value::object()
        .with("name", Value::Str("cluster_bench".to_string()))
        .with("elapsed_us", Value::Int((secs * 1e6) as i64))
        .with("requests", Value::Int(total as i64))
        .with("req_per_sec", Value::float(total as f64 / secs))
}

fn run_recovery_bench(seed: u64) -> Value {
    const N_ITEMS: usize = 32;
    let mut dir = std::env::temp_dir();
    dir.push(format!("bmb_bench_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create recovery dir");

    let quest = bmb_quest::generate(&bmb_quest::QuestParams {
        n_transactions: 4_000,
        n_items: N_ITEMS,
        avg_transaction_len: 5.0,
        n_patterns: 30,
        seed,
        ..bmb_quest::QuestParams::default()
    });
    let baskets: Vec<Vec<bmb_basket::ItemId>> = quest.baskets().map(|b| b.to_vec()).collect();

    let open = || {
        bmb_basket::DurableStore::open_dir(
            Box::new(bmb_basket::FsDir::open(&dir).expect("open dir")),
            N_ITEMS,
            bmb_basket::StoreConfig::default(),
            bmb_basket::DurabilityConfig::default(),
        )
        .expect("open durable store")
    };
    let (store, _) = open();
    for chunk in baskets.chunks(200) {
        store.append_batch(chunk.to_vec()).expect("append");
    }
    // Checkpoint halfway through history is the interesting recovery
    // shape: a snapshot load plus a WAL tail replay.
    store.checkpoint().expect("checkpoint");
    for chunk in baskets.chunks(200) {
        store.append_batch(chunk.to_vec()).expect("append tail");
    }
    drop(store);

    let start = Instant::now();
    let (recovered, report) = open();
    let elapsed = start.elapsed();
    let epoch = recovered.epoch();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    Value::object()
        .with("name", Value::Str("recovery_bench".to_string()))
        .with("elapsed_us", Value::Int(elapsed.as_micros() as i64))
        .with("epoch", Value::Int(epoch as i64))
        .with(
            "replayed_baskets",
            Value::Int(report.baskets_recovered as i64),
        )
}

/// The short git revision, or `dev` when git is unavailable.
fn short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "dev".to_string())
}

/// Best (smallest) committed `elapsed_us` per run name across every
/// `BENCH_*.json` suite report in `dir` from other revisions.
fn committed_baselines(
    dir: &std::path::Path,
    current_rev: &str,
) -> std::collections::BTreeMap<String, (String, u64)> {
    let mut best: std::collections::BTreeMap<String, (String, u64)> =
        std::collections::BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return best;
    };
    for entry in entries.filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(report) = parse(&text) else {
            continue;
        };
        if report.get("bench").and_then(Value::as_str) != Some("suite") {
            continue;
        }
        let rev = report
            .get("rev")
            .and_then(Value::as_str)
            .unwrap_or("dev")
            .to_string();
        if rev == current_rev {
            continue;
        }
        let Some(runs) = report.get("runs").and_then(Value::as_array) else {
            continue;
        };
        for run in runs {
            let (Some(run_name), Some(elapsed)) = (
                run.get("name").and_then(Value::as_str),
                run.get("elapsed_us").and_then(Value::as_u64),
            ) else {
                continue;
            };
            let slot = best
                .entry(run_name.to_string())
                .or_insert_with(|| (rev.clone(), elapsed));
            if elapsed < slot.1 {
                *slot = (rev.clone(), elapsed);
            }
        }
    }
    best
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut compare_dir: Option<String> = None;
    let mut seed = 0xBE7Cu64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--out" => out_path = Some(take("--out")),
            "--compare-dir" => compare_dir = Some(take("--compare-dir")),
            "--seed" => seed = take("--seed").parse().expect("--seed"),
            other => panic!("unknown flag {other}"),
        }
    }

    let runs = vec![
        run_quest_mine(seed),
        run_corpus_level3(),
        run_serve_loadgen(seed),
        run_cluster_bench(seed),
        run_recovery_bench(seed),
    ];
    for run in &runs {
        let name = run.get("name").and_then(Value::as_str).unwrap_or("?");
        let elapsed = run.get("elapsed_us").and_then(Value::as_u64).unwrap_or(0);
        println!("{name}: {elapsed}us");
    }

    let rev = short_rev();
    let report = Value::object()
        .with("bench", Value::Str("suite".to_string()))
        .with("rev", Value::Str(rev.clone()))
        .with("seed", Value::Int(seed as i64))
        .with("noise_factor", Value::Int(NOISE_FACTOR as i64))
        .with("runs", Value::Array(runs.clone()));
    let path = out_path.unwrap_or_else(|| format!("BENCH_{rev}.json"));
    std::fs::write(&path, format!("{report}\n")).expect("write report");
    println!("wrote {path}");

    let Some(compare_dir) = compare_dir else {
        return;
    };
    let baselines = committed_baselines(std::path::Path::new(&compare_dir), &rev);
    if baselines.is_empty() {
        println!("no committed baseline in {compare_dir}; nothing to gate");
        return;
    }
    let mut regressions = Vec::new();
    for run in &runs {
        let name = run.get("name").and_then(Value::as_str).unwrap_or("?");
        let elapsed = run.get("elapsed_us").and_then(Value::as_u64).unwrap_or(0);
        let Some((base_rev, base)) = baselines.get(name) else {
            println!("{name}: no baseline (new run)");
            continue;
        };
        let gate = base
            .saturating_mul(NOISE_FACTOR)
            .max(base.saturating_add(MIN_DELTA_US));
        let verdict = if elapsed > gate { "REGRESSED" } else { "ok" };
        println!(
            "{name}: {elapsed}us vs best {base}us ({base_rev}), \
             gate {gate}us -> {verdict}"
        );
        if elapsed > gate {
            regressions.push(name.to_string());
        }
    }
    if !regressions.is_empty() {
        eprintln!(
            "perf regression past the {NOISE_FACTOR}x noise gate: {}",
            regressions.join(", ")
        );
        std::process::exit(1);
    }
}

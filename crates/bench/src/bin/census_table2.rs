//! Regenerates the paper's Table 2 (chi-squared + interest for all pairs).
fn main() {
    print!("{}", bmb_bench::census::table2());
}

//! Regenerates the paper's Table 3 (support-confidence for all pairs).
fn main() {
    print!("{}", bmb_bench::census::table3());
}

//! Minimal fixed-width text-table rendering for the reports.

/// A text table builder with right-aligned numeric columns.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; its arity must match the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w - cell.chars().count();
                // First column left-aligned (labels), the rest right-aligned.
                if i == 0 {
                    line.push_str(cell);
                    line.extend(std::iter::repeat_n(' ', pad));
                } else {
                    line.extend(std::iter::repeat_n(' ', pad));
                    line.push_str(cell);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals, rendering exact zero as "0".
pub fn num(value: f64, digits: usize) -> String {
    if value == 0.0 {
        "0".to_string()
    } else {
        format!("{value:.digits$}")
    }
}

/// Marks a value with `*` when `significant` (the report's stand-in for
/// the paper's bold face).
pub fn starred(text: String, significant: bool) -> String {
    if significant {
        format!("{text}*")
    } else {
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["pair", "chi2"]);
        t.row(["i0 i1", "37.15"]);
        t.row(["i10 i11", "0.9"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("pair"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("37.15"));
        assert!(lines[3].ends_with("  0.9"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(0.0, 3), "0");
        assert_eq!(num(1.2345, 2), "1.23");
        assert_eq!(starred("3.9".into(), true), "3.9*");
        assert_eq!(starred("3.9".into(), false), "3.9");
    }
}

//! Serving-layer micro-benchmarks: cached vs uncached chi-squared point
//! queries, ingest throughput, and a full TCP round trip (EXPERIMENTS.md
//! "Serving layer").

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use bmb_basket::{IncrementalStore, Itemset, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::parse;
use bmb_serve::{Client, Server, ServerConfig};

fn census_engine() -> (Arc<IncrementalStore>, QueryEngine) {
    let db = bmb_datasets::generate_census();
    let store = Arc::new(IncrementalStore::from_database(&db, StoreConfig::default()));
    let engine = QueryEngine::new(Arc::clone(&store), EngineConfig::default());
    (store, engine)
}

fn bench_serve(c: &mut Criterion) {
    let (_store, engine) = census_engine();
    let snap = engine.snapshot();
    let pair = Itemset::from_ids([2, 7]);
    let triple = Itemset::from_ids([1, 4, 8]);

    // Uncached: assemble the table from segment bitmaps every time.
    let mut group = c.benchmark_group("serve_chi2_census");
    group.bench_function("uncached_pair", |b| {
        b.iter(|| {
            let table = snap.contingency_table(&pair);
            engine.test().test_dense(&table)
        });
    });
    group.bench_function("uncached_triple", |b| {
        b.iter(|| {
            let table = snap.contingency_table(&triple);
            engine.test().test_dense(&table)
        });
    });
    // Cached: the first call warms the (itemset, epoch) entry; the rest
    // are the steady-state hit path a hot query sees.
    group.bench_function("cached_pair", |b| {
        b.iter(|| engine.chi2(&snap, &pair));
    });
    group.bench_function("cached_triple", |b| {
        b.iter(|| engine.chi2(&snap, &triple));
    });
    group.finish();

    // Ingest throughput: batches of synthetic baskets into a live store.
    let mut group = c.benchmark_group("serve_ingest");
    let batch: Vec<Vec<u32>> = (0..1000u32)
        .map(|i| vec![i % 10, (i * 7 + 3) % 10])
        .collect();
    group.bench_function("append_batch_1000", |b| {
        let store = Arc::new(IncrementalStore::new(10, StoreConfig::default()));
        b.iter(|| {
            store
                .append_batch(
                    batch
                        .iter()
                        .map(|ids| ids.iter().copied().map(bmb_basket::ItemId)),
                )
                .expect("in range")
        });
    });
    group.finish();

    // Full protocol round trip over loopback TCP.
    let (_store2, engine2) = census_engine();
    let server = Server::bind(Arc::new(engine2), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let running = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    let chi2 = parse(r#"{"cmd":"chi2","items":[2,7]}"#).expect("literal");
    let mut group = c.benchmark_group("serve_tcp_round_trip");
    group.bench_function("chi2_hot", |b| {
        b.iter(|| client.request(&chi2).expect("chi2"));
    });
    group.finish();
    drop(client);
    running.stop().expect("shutdown");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);

//! Ablation: bitmap-index vs horizontal-scan support counting, sequential
//! vs threaded (DESIGN.md "Bitmap vs. scan counting").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bmb_basket::{BasketDatabase, BitmapIndex, Itemset};
use bmb_core::counting::{count_with_bitmaps, count_with_scan};
use bmb_quest::{generate, QuestParams};

fn workload() -> (BasketDatabase, Vec<Itemset>) {
    let db = generate(&QuestParams {
        n_transactions: 20_000,
        n_items: 300,
        avg_transaction_len: 12.0,
        n_patterns: 100,
        seed: 5,
        ..QuestParams::default()
    });
    // Candidate pairs: the 2000 lexicographically-first frequent pairs.
    let mut candidates = Vec::new();
    'outer: for a in 0..300u32 {
        for b in a + 1..300 {
            candidates.push(Itemset::from_ids([a, b]));
            if candidates.len() == 2000 {
                break 'outer;
            }
        }
    }
    (db, candidates)
}

fn bench_counting(c: &mut Criterion) {
    let (db, candidates) = workload();
    let index = BitmapIndex::build(&db);
    let mut group = c.benchmark_group("counting_2000_pairs");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("bitmap", threads), &threads, |b, &t| {
            b.iter(|| count_with_bitmaps(&index, &candidates, t));
        });
        group.bench_with_input(BenchmarkId::new("scan", threads), &threads, |b, &t| {
            b.iter(|| count_with_scan(&db, &candidates, t));
        });
    }
    group.finish();

    c.bench_function("bitmap_index_build_20k_baskets", |b| {
        b.iter(|| BitmapIndex::build(&db));
    });
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);

//! End-to-end mining benchmarks and the remaining DESIGN.md ablations:
//! level-1 pruning on/off, walk vs level-wise, IPF calibration.

use criterion::{criterion_group, criterion_main, Criterion};

use bmb_core::{mine, mine_walk, Level1Prune, MinerConfig, SupportSpec};
use bmb_lattice::WalkConfig;
use bmb_quest::{generate, QuestParams};

fn quest_db() -> bmb_basket::BasketDatabase {
    generate(&QuestParams {
        n_transactions: 10_000,
        n_items: 200,
        avg_transaction_len: 10.0,
        n_patterns: 60,
        seed: 12,
        ..QuestParams::default()
    })
}

fn config() -> MinerConfig {
    MinerConfig {
        support: SupportSpec::Fraction(0.01),
        support_fraction: 0.26,
        ..MinerConfig::default()
    }
}

fn bench_mining(c: &mut Criterion) {
    let db = quest_db();

    let mut group = c.benchmark_group("mine_quest_10k");
    group.sample_size(10);
    group.bench_function("level1_prune_paper", |b| {
        b.iter(|| {
            mine(
                &db,
                &MinerConfig {
                    level1: Level1Prune::PaperBothFrequent,
                    ..config()
                },
            )
        });
    });
    group.bench_function("level1_prune_off", |b| {
        b.iter(|| {
            mine(
                &db,
                &MinerConfig {
                    level1: Level1Prune::Off,
                    ..config()
                },
            )
        });
    });
    group.bench_function("threads_4", |b| {
        b.iter(|| {
            mine(
                &db,
                &MinerConfig {
                    threads: 4,
                    ..config()
                },
            )
        });
    });
    group.finish();

    // Walk vs level-wise on a small universe where both find the border.
    let parity = bmb_datasets::parity_triple(2000, 10);
    let parity_config = MinerConfig {
        support: SupportSpec::Count(5),
        ..MinerConfig::default()
    };
    let mut group = c.benchmark_group("walk_vs_levelwise_parity");
    group.sample_size(10);
    group.bench_function("levelwise", |b| b.iter(|| mine(&parity, &parity_config)));
    group.bench_function("random_walk_200", |b| {
        b.iter(|| {
            mine_walk(
                &parity,
                &parity_config,
                WalkConfig {
                    walks: 200,
                    max_level: 10,
                    seed: 8,
                },
                None,
            )
        });
    });
    group.finish();

    // Census pipeline pieces.
    let mut group = c.benchmark_group("census");
    group.sample_size(10);
    group.bench_function("ipf_calibration", |b| {
        b.iter(bmb_datasets::calibrate);
    });
    let census = bmb_datasets::generate_census();
    group.bench_function("mine_census_pairs", |b| {
        b.iter(|| {
            mine(
                &census,
                &MinerConfig {
                    max_level: 2,
                    ..config()
                },
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);

//! Ablation: dense vs sparse chi-squared evaluation, plus the statistic's
//! building blocks (DESIGN.md "Sparse vs. dense x² computation").

use criterion::{criterion_group, criterion_main, Criterion};

use bmb_basket::{BasketDatabase, ContingencyTable, Itemset, SparseContingencyTable};
use bmb_stats::{Chi2Test, ChiSquared};

/// A database whose 14-item tables are sparse: 2^14 cells, 3000 baskets.
fn sparse_workload() -> (BasketDatabase, Itemset) {
    let db = bmb_datasets::independent(3000, 14, 0.3, 9);
    (db, Itemset::from_ids(0..14))
}

fn bench_chi2(c: &mut Criterion) {
    let (db, wide) = sparse_workload();
    let test = Chi2Test::default();

    let mut group = c.benchmark_group("chi2_14_items_3000_baskets");
    group.sample_size(20);
    group.bench_function("dense_build_and_test", |b| {
        b.iter(|| {
            let t = ContingencyTable::from_database(&db, &wide);
            test.test_dense(&t)
        });
    });
    group.bench_function("sparse_build_and_test", |b| {
        b.iter(|| {
            let t = SparseContingencyTable::from_database(&db, &wide);
            test.test_sparse(&t)
        });
    });
    group.finish();

    // Pair-sized tables: the dominant case in practice.
    let pair = Itemset::from_ids([0, 1]);
    let table = ContingencyTable::from_database(&db, &pair);
    c.bench_function("chi2_test_2x2", |b| b.iter(|| test.test_dense(&table)));

    // Alternative statistics on the same 2x2 table.
    let mut group = c.benchmark_group("statistics_2x2");
    group.bench_function("pearson", |b| b.iter(|| bmb_stats::chi2_statistic(&table)));
    group.bench_function("g_test", |b| b.iter(|| bmb_stats::g_statistic(&table)));
    group.bench_function("yates", |b| b.iter(|| bmb_stats::yates_chi2(&table)));
    group.bench_function("phi", |b| b.iter(|| bmb_stats::phi_coefficient(&table)));
    group.finish();

    // The low-expectation cell policy's cost on a wide sparse table.
    let wide_table = ContingencyTable::from_database(&db, &wide);
    let with_policy = Chi2Test {
        low_expectation_cutoff: Some(1.0),
        ..Chi2Test::default()
    };
    let mut group = c.benchmark_group("low_expectation_policy");
    group.sample_size(20);
    group.bench_function("off", |b| b.iter(|| test.test_dense(&wide_table)));
    group.bench_function("on", |b| b.iter(|| with_policy.test_dense(&wide_table)));
    group.finish();

    // Distribution machinery.
    let dist = ChiSquared::new(1.0);
    c.bench_function("chi2_quantile_95", |b| b.iter(|| dist.quantile(0.95)));
    c.bench_function("chi2_sf", |b| b.iter(|| dist.sf(7.3)));
}

criterion_group!(benches, bench_chi2);
criterion_main!(benches);

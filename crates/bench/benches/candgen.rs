//! Ablation: prefix-join candidate generation vs naive enumeration
//! (DESIGN.md "Candidate generation").

use criterion::{criterion_group, criterion_main, Criterion};

use bmb_basket::Itemset;
use bmb_lattice::levelwise::{generate_candidates, generate_candidates_naive};
use bmb_lattice::ItemsetTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random NOTSIG-like survivor set of pairs over `k` items.
fn survivors(k: u32, keep: f64, seed: u64) -> ItemsetTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = ItemsetTable::new();
    for a in 0..k {
        for b in a + 1..k {
            if rng.gen_bool(keep) {
                table.insert(Itemset::from_ids([a, b]));
            }
        }
    }
    table
}

fn bench_candgen(c: &mut Criterion) {
    // The realistic regime: thousands of surviving pairs, like the paper's
    // NOTSIG(2) = 3582.
    let big = survivors(120, 0.5, 3);
    c.bench_function("candgen_join_3500_pairs", |b| {
        b.iter(|| generate_candidates(&big));
    });

    // Naive enumeration is only feasible over a small universe; compare on
    // matching input.
    let small = survivors(24, 0.5, 4);
    let mut group = c.benchmark_group("candgen_small_universe");
    group.bench_function("prefix_join", |b| b.iter(|| generate_candidates(&small)));
    group.bench_function("naive_enumeration", |b| {
        b.iter(|| generate_candidates_naive(&small, 24));
    });
    group.finish();
}

criterion_group!(benches, bench_candgen);
criterion_main!(benches);

//! Level-wise candidate generation (the paper's Step 8).
//!
//! Given the level-`i` itemsets that survived (NOTSIG in the correlation
//! miner; the frequent sets in Apriori), the candidates at level `i+1` are
//! the sets all of whose size-`i` subsets survived. We generate them the
//! way the paper describes: join pairs of surviving sets whose union has
//! size `i+1`, then verify the remaining `i − 1` subsets by hash lookups.
//! The join is restricted to pairs sharing their first `i−1` items
//! (prefix join), which enumerates each candidate exactly once.

use bmb_basket::Itemset;

use crate::itemset_table::ItemsetTable;

/// Generates the level-`(i+1)` candidates from the surviving level-`i` sets.
///
/// `survivors` must all have the same size `i >= 1`. The result is sorted
/// and duplicate-free. Every returned set has *all* of its `i+1` facets in
/// `survivors`.
///
/// # Panics
///
/// Panics in debug builds if the survivors' sizes are inconsistent.
pub fn generate_candidates(survivors: &ItemsetTable) -> Vec<Itemset> {
    let mut sorted: Vec<&Itemset> = survivors.iter().collect();
    if sorted.is_empty() {
        return Vec::new();
    }
    sorted.sort_unstable();
    let level = sorted[0].len();
    debug_assert!(
        sorted.iter().all(|s| s.len() == level),
        "survivors must share one level"
    );
    debug_assert!(level >= 1, "candidate generation starts from level 1");

    let mut candidates = Vec::new();
    // Sorted order groups sets by shared prefix; join within each group.
    let mut group_start = 0;
    while group_start < sorted.len() {
        let prefix = sorted[group_start].prefix();
        let mut group_end = group_start + 1;
        while group_end < sorted.len() && sorted[group_end].prefix() == prefix {
            group_end += 1;
        }
        for a in group_start..group_end {
            for b in a + 1..group_end {
                // Same prefix, different last items: union has size i+1.
                let candidate = sorted[a].union(sorted[b]);
                debug_assert_eq!(candidate.len(), level + 1);
                if all_facets_present(&candidate, survivors) {
                    candidates.push(candidate);
                }
            }
        }
        group_start = group_end;
    }
    candidates.sort_unstable();
    candidates
}

/// Whether every size-`len−1` subset of `candidate` is in `survivors`.
pub fn all_facets_present(candidate: &Itemset, survivors: &ItemsetTable) -> bool {
    candidate.facets().all(|f| survivors.contains(&f))
}

/// Reference implementation: enumerate every size-`i+1` subset of the item
/// universe and keep the ones whose facets all survive. Exponential — used
/// only to cross-check [`generate_candidates`] in tests and benches.
pub fn generate_candidates_naive(survivors: &ItemsetTable, n_items: u32) -> Vec<Itemset> {
    let Some(level) = survivors.iter().next().map(Itemset::len) else {
        return Vec::new();
    };
    let universe = Itemset::from_items((0..n_items).map(bmb_basket::ItemId));
    let mut out: Vec<Itemset> = universe
        .subsets_of_size(level + 1)
        .into_iter()
        .filter(|c| all_facets_present(c, survivors))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(sets: &[&[u32]]) -> ItemsetTable {
        sets.iter()
            .map(|ids| Itemset::from_ids(ids.iter().copied()))
            .collect()
    }

    #[test]
    fn pairs_from_singletons() {
        let survivors = table(&[&[0], &[1], &[2]]);
        let cands = generate_candidates(&survivors);
        assert_eq!(
            cands,
            vec![
                Itemset::from_ids([0, 1]),
                Itemset::from_ids([0, 2]),
                Itemset::from_ids([1, 2]),
            ]
        );
    }

    #[test]
    fn triples_require_all_three_pairs() {
        // {0,1}, {0,2} alone cannot make {0,1,2}: {1,2} is missing.
        let survivors = table(&[&[0, 1], &[0, 2]]);
        assert!(generate_candidates(&survivors).is_empty());
        // Adding {1,2} completes the facets.
        let survivors = table(&[&[0, 1], &[0, 2], &[1, 2]]);
        assert_eq!(
            generate_candidates(&survivors),
            vec![Itemset::from_ids([0, 1, 2])]
        );
    }

    #[test]
    fn join_only_on_shared_prefix() {
        // {0,1} and {2,3} share no prefix; their union has size 4 and must
        // not appear among size-3 candidates.
        let survivors = table(&[&[0, 1], &[2, 3]]);
        assert!(generate_candidates(&survivors).is_empty());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(generate_candidates(&ItemsetTable::new()).is_empty());
    }

    #[test]
    fn matches_naive_on_random_survivor_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let n_items = 8u32;
            // Random set of level-2 survivors.
            let mut survivors = ItemsetTable::new();
            for a in 0..n_items {
                for b in a + 1..n_items {
                    if rng.gen_bool(0.45) {
                        survivors.insert(Itemset::from_ids([a, b]));
                    }
                }
            }
            let fast = generate_candidates(&survivors);
            let slow = generate_candidates_naive(&survivors, n_items);
            assert_eq!(fast, slow, "trial {trial} diverged");
        }
    }

    #[test]
    fn deep_levels() {
        // All C(5,3) triples survive → all C(5,4) quadruples are candidates.
        let universe = Itemset::from_ids(0..5);
        let survivors: ItemsetTable = universe.subsets_of_size(3).into_iter().collect();
        let cands = generate_candidates(&survivors);
        assert_eq!(cands.len(), 5);
        for c in &cands {
            assert_eq!(c.len(), 4);
        }
    }
}

//! A fast membership table for itemsets.
//!
//! The paper's Step 8 implementation stores NOTSIG and CAND "in perfect hash
//! tables ... insertion, deletion, and lookup all take constant time". We
//! use open addressing with an FNV-1a hash over the item ids — not a true
//! FKS perfect hash, but collision handling is in-table probing with the
//! same amortized O(1) operations and none of the two-level construction
//! cost. (The paper's remark that collisions would break the algorithm
//! refers to *lossy* bucket counting à la Park–Chen–Yu, where distinct sets
//! share a counter; a probing table is exact.)

use bmb_basket::Itemset;

/// FNV-1a over the little-endian bytes of the item ids.
#[inline]
fn fnv1a(items: &Itemset) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for item in items {
        for byte in item.0.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// An insert-and-lookup hash set of itemsets with open addressing.
///
/// # Examples
///
/// ```
/// use bmb_basket::Itemset;
/// use bmb_lattice::ItemsetTable;
///
/// let mut table = ItemsetTable::new();
/// table.insert(Itemset::from_ids([1, 2]));
/// assert!(table.contains(&Itemset::from_ids([2, 1])));
/// assert!(!table.contains(&Itemset::from_ids([1, 3])));
/// ```
#[derive(Clone, Debug)]
pub struct ItemsetTable {
    /// Power-of-two sized slot array; `None` is an empty slot.
    slots: Vec<Option<Itemset>>,
    len: usize,
}

impl Default for ItemsetTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ItemsetTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// An empty table pre-sized for `capacity` itemsets.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity * 2).next_power_of_two().max(16);
        ItemsetTable {
            slots: vec![None; slots],
            len: 0,
        }
    }

    /// Number of stored itemsets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `set`; returns true if it was newly added.
    pub fn insert(&mut self, set: Itemset) -> bool {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = (fnv1a(&set) as usize) & mask;
        loop {
            match &self.slots[idx] {
                None => {
                    self.slots[idx] = Some(set);
                    self.len += 1;
                    return true;
                }
                Some(existing) if *existing == set => return false,
                Some(_) => idx = (idx + 1) & mask,
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, set: &Itemset) -> bool {
        let mask = self.slots.len() - 1;
        let mut idx = (fnv1a(set) as usize) & mask;
        loop {
            match &self.slots[idx] {
                None => return false,
                Some(existing) if existing == set => return true,
                Some(_) => idx = (idx + 1) & mask,
            }
        }
    }

    /// Iterates stored itemsets in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Itemset> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Drains the table into a sorted vector (lexicographic itemset order).
    pub fn into_sorted_vec(self) -> Vec<Itemset> {
        let mut v: Vec<Itemset> = self.slots.into_iter().flatten().collect();
        v.sort_unstable();
        v
    }

    fn grow(&mut self) {
        let new_size = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_size]);
        self.len = 0;
        for set in old.into_iter().flatten() {
            self.insert(set);
        }
    }
}

impl FromIterator<Itemset> for ItemsetTable {
    fn from_iter<I: IntoIterator<Item = Itemset>>(iter: I) -> Self {
        let mut table = ItemsetTable::new();
        for set in iter {
            table.insert(set);
        }
        table
    }
}

impl Extend<Itemset> for ItemsetTable {
    fn extend<I: IntoIterator<Item = Itemset>>(&mut self, iter: I) {
        for set in iter {
            self.insert(set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = ItemsetTable::new();
        assert!(t.insert(Itemset::from_ids([1, 2, 3])));
        assert!(!t.insert(Itemset::from_ids([3, 2, 1]))); // same set
        assert_eq!(t.len(), 1);
        assert!(t.contains(&Itemset::from_ids([1, 2, 3])));
        assert!(!t.contains(&Itemset::from_ids([1, 2])));
    }

    #[test]
    fn growth_preserves_members() {
        let mut t = ItemsetTable::with_capacity(4);
        let sets: Vec<Itemset> = (0..1000u32)
            .map(|i| Itemset::from_ids([i, i + 1, i * 7 % 999]))
            .collect();
        for s in &sets {
            t.insert(s.clone());
        }
        for s in &sets {
            assert!(t.contains(s), "lost {s} after growth");
        }
    }

    #[test]
    fn empty_itemset_is_storable() {
        let mut t = ItemsetTable::new();
        assert!(t.insert(Itemset::empty()));
        assert!(t.contains(&Itemset::empty()));
    }

    #[test]
    fn iteration_and_sorted_drain() {
        let t: ItemsetTable = vec![
            Itemset::from_ids([5]),
            Itemset::from_ids([1]),
            Itemset::from_ids([3]),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.iter().count(), 3);
        let sorted = t.into_sorted_vec();
        assert_eq!(
            sorted,
            vec![
                Itemset::from_ids([1]),
                Itemset::from_ids([3]),
                Itemset::from_ids([5])
            ]
        );
    }

    #[test]
    fn extend_merges() {
        let mut t = ItemsetTable::new();
        t.extend([Itemset::from_ids([1]), Itemset::from_ids([2])]);
        t.extend([Itemset::from_ids([2]), Itemset::from_ids([3])]);
        assert_eq!(t.len(), 3);
    }
}

//! Closure properties over the itemset lattice (Section 2.1 of the paper).
//!
//! *Downward closed*: if a set has the property, so does every subset
//! (support). *Upward closed*: if a set has it, so does every superset
//! (correlation at a fixed significance level — Theorem 1). This module
//! checks either property exhaustively over a small item universe, which is
//! how the reproduction's property tests validate Theorem 1 empirically,
//! and derives borders from arbitrary predicates.

use bmb_basket::{ItemId, Itemset};

use crate::border::Border;

/// Exhaustively enumerates all non-empty subsets of `0..n_items`.
///
/// Sizes are capped by `max_size` to keep enumeration affordable.
pub fn enumerate_itemsets(n_items: u32, max_size: usize) -> Vec<Itemset> {
    let universe = Itemset::from_items((0..n_items).map(ItemId));
    let mut out = Vec::new();
    for size in 1..=max_size.min(n_items as usize) {
        out.extend(universe.subsets_of_size(size));
    }
    out
}

/// A counterexample to a closure claim: `small ⊂ large` where the property
/// holds on one side but not the other.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosureViolation {
    /// The subset.
    pub small: Itemset,
    /// The superset (exactly one item larger).
    pub large: Itemset,
}

/// Checks that `property` is upward closed on all itemsets over `0..n_items`
/// up to `max_size` items: whenever it holds on a set it holds on every
/// one-item extension. Returns the first violation found.
pub fn check_upward_closed<F>(
    n_items: u32,
    max_size: usize,
    mut property: F,
) -> Option<ClosureViolation>
where
    F: FnMut(&Itemset) -> bool,
{
    for set in enumerate_itemsets(n_items, max_size.saturating_sub(1)) {
        if !property(&set) {
            continue;
        }
        for next in 0..n_items {
            let id = ItemId(next);
            if set.contains(id) {
                continue;
            }
            let bigger = set.with_item(id);
            if !property(&bigger) {
                return Some(ClosureViolation {
                    small: set,
                    large: bigger,
                });
            }
        }
    }
    None
}

/// Checks that `property` is downward closed: whenever it holds on a set it
/// holds on every facet. Returns the first violation found.
pub fn check_downward_closed<F>(
    n_items: u32,
    max_size: usize,
    mut property: F,
) -> Option<ClosureViolation>
where
    F: FnMut(&Itemset) -> bool,
{
    for set in enumerate_itemsets(n_items, max_size) {
        if set.len() < 2 || !property(&set) {
            continue;
        }
        let facets: Vec<Itemset> = set.facets().collect();
        for facet in facets {
            if !property(&facet) {
                return Some(ClosureViolation {
                    small: facet,
                    large: set,
                });
            }
        }
    }
    None
}

/// Computes the exact border of an upward-closed predicate by exhaustive
/// enumeration — the ground truth the mining algorithms are tested against.
pub fn exhaustive_border<F>(n_items: u32, max_size: usize, mut property: F) -> Border
where
    F: FnMut(&Itemset) -> bool,
{
    let holders = enumerate_itemsets(n_items, max_size)
        .into_iter()
        .filter(|s| property(s));
    Border::from_holders(holders)
}

/// The *negative border* of an upward-closed predicate: the maximal
/// itemsets that do **not** hold it (within `max_size`). Together with
/// [`exhaustive_border`] this partitions the lattice — a set holds the
/// property iff it is above the positive border, iff it is not below the
/// negative one. (For the dual notion over downward-closed properties see
/// Mannila & Toivonen; the paper's SIG/NOTSIG split is exactly this
/// positive/negative boundary restricted to supported sets.)
pub fn exhaustive_negative_border<F>(n_items: u32, max_size: usize, mut property: F) -> Vec<Itemset>
where
    F: FnMut(&Itemset) -> bool,
{
    let non_holders: Vec<Itemset> = enumerate_itemsets(n_items, max_size)
        .into_iter()
        .filter(|s| !property(s))
        .collect();
    // Maximal elements: no other non-holder strictly contains them.
    let mut maximal: Vec<Itemset> = Vec::new();
    'outer: for s in &non_holders {
        for t in &non_holders {
            if s != t && s.is_subset_of(t) {
                continue 'outer;
            }
        }
        maximal.push(s.clone());
    }
    maximal.sort_unstable();
    maximal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_counts() {
        // Σ C(5, i) for i in 1..=5 is 31.
        assert_eq!(enumerate_itemsets(5, 5).len(), 31);
        assert_eq!(enumerate_itemsets(5, 2).len(), 15);
        assert_eq!(enumerate_itemsets(0, 3).len(), 0);
    }

    #[test]
    fn size_threshold_is_upward_closed() {
        assert_eq!(check_upward_closed(6, 4, |s| s.len() >= 3), None);
    }

    #[test]
    fn size_threshold_is_downward_open() {
        let violation = check_downward_closed(6, 4, |s| s.len() >= 3).unwrap();
        assert_eq!(violation.large.len(), 3);
        assert_eq!(violation.small.len(), 2);
    }

    #[test]
    fn membership_cap_is_downward_closed() {
        // "contains no item above 3" survives subsetting.
        assert_eq!(
            check_downward_closed(6, 4, |s| s.items().iter().all(|i| i.0 <= 3)),
            None
        );
    }

    #[test]
    fn non_monotone_property_caught_both_ways() {
        // "even size" is closed in neither direction.
        assert!(check_upward_closed(5, 4, |s| s.len() % 2 == 0).is_some());
        assert!(check_downward_closed(5, 4, |s| s.len() % 2 == 0).is_some());
    }

    #[test]
    fn negative_border_complements_the_positive() {
        // Property: contains item 0. Positive border = {{0}}; negative
        // border = the full complement set {1,2,3,4} (every non-holder is
        // below it).
        let positive = exhaustive_border(5, 5, |s| s.contains(ItemId(0)));
        let negative = exhaustive_negative_border(5, 5, |s| s.contains(ItemId(0)));
        assert_eq!(positive.minimal_sets(), &[Itemset::from_ids([0])]);
        assert_eq!(negative, vec![Itemset::from_ids([1, 2, 3, 4])]);
        // Partition check over the whole (truncated) lattice.
        for set in enumerate_itemsets(5, 5) {
            let holds = set.contains(ItemId(0));
            assert_eq!(positive.covers(&set), holds, "{set}");
            let below_negative = negative.iter().any(|m| set.is_subset_of(m));
            assert_eq!(below_negative, !holds, "{set}");
        }
    }

    #[test]
    fn negative_border_of_size_property() {
        // Property: size >= 3 over 4 items. Non-holders are all sets of
        // size <= 2; the maximal ones are exactly the C(4,2) = 6 pairs.
        let negative = exhaustive_negative_border(4, 4, |s| s.len() >= 3);
        assert_eq!(negative.len(), 6);
        assert!(negative.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn everything_holds_means_empty_negative_border() {
        let negative = exhaustive_negative_border(4, 4, |_| true);
        assert!(negative.is_empty());
    }

    #[test]
    fn exhaustive_border_of_membership_property() {
        // Property: contains item 0 or contains both 2 and 3.
        let border = exhaustive_border(5, 5, |s| {
            s.contains(ItemId(0)) || (s.contains(ItemId(2)) && s.contains(ItemId(3)))
        });
        assert_eq!(
            border.minimal_sets(),
            &[Itemset::from_ids([0]), Itemset::from_ids([2, 3])]
        );
    }
}

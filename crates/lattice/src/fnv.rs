//! A minimal FNV-1a `Hasher` for itemset-keyed maps.
//!
//! The miner's support store is consulted several times per candidate;
//! std's SipHash is needlessly defensive for that internal workload (keys
//! are our own itemsets, not attacker input). FNV-1a over the item bytes
//! is the same function the [`crate::ItemsetTable`] probing table uses.

use std::hash::{BuildHasherDefault, Hasher};

/// An FNV-1a streaming hasher.
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`]; plug into `HashMap::with_hasher`.
pub type BuildFnv = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed with FNV-1a.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, BuildFnv>;

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::Itemset;

    #[test]
    fn deterministic_and_spread() {
        let mut map: FnvHashMap<Itemset, u64> = FnvHashMap::default();
        for i in 0..1000u32 {
            map.insert(Itemset::from_ids([i, i + 1]), u64::from(i));
        }
        for i in 0..1000u32 {
            assert_eq!(map.get(&Itemset::from_ids([i, i + 1])), Some(&u64::from(i)));
        }
        assert_eq!(map.len(), 1000);
    }

    #[test]
    fn hasher_distinguishes_permuted_bytes() {
        use std::hash::Hash;
        let hash = |s: &Itemset| {
            let mut h = FnvHasher::default();
            s.hash(&mut h);
            h.finish()
        };
        assert_ne!(
            hash(&Itemset::from_ids([1, 2])),
            hash(&Itemset::from_ids([2, 3]))
        );
        // Canonical ordering makes permutations identical inputs.
        assert_eq!(
            hash(&Itemset::from_ids([2, 1])),
            hash(&Itemset::from_ids([1, 2]))
        );
    }
}

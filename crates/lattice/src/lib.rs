//! # bmb-lattice — itemset lattice machinery
//!
//! The lattice-algorithm substrate of the *Beyond Market Baskets*
//! reproduction:
//!
//! * [`ItemsetTable`] — the constant-time membership table behind the
//!   paper's SIG/NOTSIG/CAND bookkeeping (Figure 1, Step 8);
//! * [`levelwise`] — candidate generation by prefix join + facet check;
//! * [`Border`] — antichains of minimal itemsets for upward-closed
//!   properties (Section 2.2);
//! * [`closure`] — exhaustive upward/downward closure checking and ground-
//!   truth borders for small universes;
//! * [`walk`] — the random-walk border sampler the paper sketches as future
//!   work (Sections 2.1 and 6);
//! * [`datacube`] — contingency tables served from a one-scan count cube,
//!   the "natural implementation" the paper mentions for walks.

#![warn(missing_docs)]

/// The border of an upward-closed property (Section 2.2).
pub mod border;
/// Closure properties over the itemset lattice (Section 2.1).
pub mod closure;
/// A count datacube over a small item sub-universe.
pub mod datacube;
/// A minimal FNV-1a `Hasher` for itemset-keyed maps.
pub mod fnv;
/// A fast membership table for itemsets.
pub mod itemset_table;
/// Level-wise candidate generation (the paper's Step 8).
pub mod levelwise;
/// Random walks on the itemset lattice.
pub mod walk;

pub use border::{is_antichain, Border};
pub use closure::{
    check_downward_closed, check_upward_closed, exhaustive_border, exhaustive_negative_border,
};
pub use datacube::{CountCube, MAX_CUBE_DIMS};
pub use fnv::{BuildFnv, FnvHashMap, FnvHasher};
pub use itemset_table::ItemsetTable;
pub use levelwise::{all_facets_present, generate_candidates};
pub use walk::{random_walk_border, WalkConfig, WalkOutcome, WalkStats};

//! Random walks on the itemset lattice.
//!
//! The paper (Sections 2.1, 4, 6) repeatedly points at the random-walk
//! algorithm of Gunopulos, Mannila & Saluja as the natural companion to
//! level-wise search for upward-closed properties: "a given walk can stop
//! as soon as it crosses the border. It can then do a local analysis of the
//! border near the crossing." This module implements that idea: walk up
//! from the empty set adding random items until the property first holds,
//! then walk back down (greedy item removal) to a *minimal* holder. Many
//! walks collect a sample of the border; on lattices whose border is small
//! the sample converges to the whole border quickly.

use bmb_basket::{ItemId, Itemset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::border::Border;

/// Configuration of a border random walk.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Number of independent walks to run.
    pub walks: usize,
    /// Abandon a walk that reaches this many items without the property.
    pub max_level: usize,
    /// RNG seed; walks are deterministic given the seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks: 64,
            max_level: usize::MAX,
            seed: 0x5eed,
        }
    }
}

/// Statistics from a batch of walks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Walks that crossed the border.
    pub crossings: usize,
    /// Walks abandoned at `max_level`.
    pub abandoned: usize,
    /// Total property evaluations performed.
    pub evaluations: usize,
}

/// Result of [`random_walk_border`]: a sampled border plus walk statistics.
#[derive(Clone, Debug)]
pub struct WalkOutcome {
    /// Border elements discovered (always genuinely minimal holders).
    pub border: Border,
    /// Walk accounting.
    pub stats: WalkStats,
}

/// Samples the border of an upward-closed `property` over items
/// `0..n_items` by repeated random walks.
///
/// The property is assumed upward closed; minimality of the returned sets
/// is guaranteed only under that assumption (each result is verified to
/// hold, with no holding facet).
pub fn random_walk_border<F>(n_items: u32, config: WalkConfig, mut property: F) -> WalkOutcome
where
    F: FnMut(&Itemset) -> bool,
{
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = WalkStats::default();
    let mut found: Vec<Itemset> = Vec::new();
    let mut order: Vec<ItemId> = (0..n_items).map(ItemId).collect();

    for _ in 0..config.walks {
        order.shuffle(&mut rng);
        // Walk up until the property first holds.
        let mut current = Itemset::empty();
        let mut crossed = None;
        for &item in order.iter().take(config.max_level.min(order.len())) {
            current = current.with_item(item);
            stats.evaluations += 1;
            if property(&current) {
                crossed = Some(current.clone());
                break;
            }
        }
        match crossed {
            None => stats.abandoned += 1,
            Some(holder) => {
                stats.crossings += 1;
                let minimal = minimize(holder, &mut property, &mut stats);
                found.push(minimal);
            }
        }
    }
    WalkOutcome {
        border: Border::from_holders(found),
        stats,
    }
}

/// Greedy descent: removes items one at a time while the property still
/// holds, yielding a minimal holder (for an upward-closed property).
fn minimize<F>(mut set: Itemset, property: &mut F, stats: &mut WalkStats) -> Itemset
where
    F: FnMut(&Itemset) -> bool,
{
    loop {
        let mut shrunk = false;
        for item in set.items().to_vec() {
            if set.len() == 1 {
                break;
            }
            let smaller = set.without_item(item);
            stats.evaluations += 1;
            if property(&smaller) {
                set = smaller;
                shrunk = true;
            }
        }
        if !shrunk {
            return set;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::exhaustive_border;

    #[test]
    fn finds_simple_membership_border() {
        // Property: contains item 3, or contains both 0 and 1.
        let property =
            |s: &Itemset| s.contains(ItemId(3)) || (s.contains(ItemId(0)) && s.contains(ItemId(1)));
        let outcome = random_walk_border(
            6,
            WalkConfig {
                walks: 200,
                ..Default::default()
            },
            property,
        );
        let exact = exhaustive_border(6, 6, property);
        assert_eq!(outcome.border, exact);
        assert_eq!(outcome.stats.crossings, 200);
        assert_eq!(outcome.stats.abandoned, 0);
    }

    #[test]
    fn results_are_genuinely_minimal() {
        let property = |s: &Itemset| s.len() >= 3;
        let outcome = random_walk_border(
            7,
            WalkConfig {
                walks: 100,
                ..Default::default()
            },
            property,
        );
        for m in outcome.border.minimal_sets() {
            assert_eq!(m.len(), 3);
            assert!(property(m));
            for facet in m.facets() {
                assert!(!property(&facet), "facet {facet} also holds — not minimal");
            }
        }
    }

    #[test]
    fn empty_property_abandons_all_walks() {
        let outcome = random_walk_border(
            5,
            WalkConfig {
                walks: 10,
                ..Default::default()
            },
            |_| false,
        );
        assert!(outcome.border.is_empty());
        assert_eq!(outcome.stats.abandoned, 10);
        assert_eq!(outcome.stats.crossings, 0);
    }

    #[test]
    fn max_level_caps_walk_depth() {
        // Property only holds at size 4, but walks stop at 2.
        let outcome = random_walk_border(
            6,
            WalkConfig {
                walks: 20,
                max_level: 2,
                seed: 1,
            },
            |s: &Itemset| s.len() >= 4,
        );
        assert!(outcome.border.is_empty());
        assert_eq!(outcome.stats.abandoned, 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let property = |s: &Itemset| s.contains(ItemId(2));
        let cfg = WalkConfig {
            walks: 16,
            max_level: 8,
            seed: 99,
        };
        let a = random_walk_border(8, cfg, property);
        let b = random_walk_border(8, cfg, property);
        assert_eq!(a.border, b.border);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn high_chi2_ceiling_style_pruning_composes() {
        // The paper suggests walks suit non-downward-closed pruning like
        // "ignore absurdly obvious correlations". Model that as a property
        // window: holds iff it contains {0,1} but NOT item 5 (the "too
        // obvious" marker). The walk still finds the windowed border
        // because the predicate is evaluated directly.
        let property =
            |s: &Itemset| s.contains(ItemId(0)) && s.contains(ItemId(1)) && !s.contains(ItemId(5));
        let outcome = random_walk_border(
            6,
            WalkConfig {
                walks: 400,
                ..Default::default()
            },
            property,
        );
        // Some walks pick item 5 early and never satisfy the property; the
        // rest cross at {0,1}.
        assert!(outcome.border.covers(&Itemset::from_ids([0, 1])));
    }
}

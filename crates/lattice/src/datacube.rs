//! A count datacube over a small item sub-universe.
//!
//! The paper observes (Sections 2.1 and 6) that "the random walk algorithm
//! has a natural implementation in terms of a datacube of the count values
//! for contingency tables". This module is that implementation detail: one
//! database scan materializes the exact cell counts over up to
//! [`MAX_CUBE_DIMS`] items, a zeta transform derives every group-by support,
//! and from then on *any* contingency table over a subset of those items is
//! answered from the cube without touching the database — exactly what a
//! walk needs while it probes sets near the border.

use bmb_basket::contingency::cell_mask_of;
use bmb_basket::{BasketDatabase, ContingencyTable, Itemset};

/// Largest sub-universe a cube will materialize (2^20 cells ≈ 8 MB).
pub const MAX_CUBE_DIMS: usize = 20;

/// Dense cell counts plus group-by supports over a fixed item subset.
#[derive(Clone, Debug)]
pub struct CountCube {
    items: Itemset,
    n: u64,
    /// `O(r)`: exact contingency cell counts, indexed by presence mask.
    cells: Vec<u64>,
    /// `supp(mask)`: baskets containing all items of `mask` (don't-care on
    /// the rest) — the cube's group-by rollup.
    supports: Vec<u64>,
}

impl CountCube {
    /// Builds the cube with one scan over `db`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or exceeds [`MAX_CUBE_DIMS`].
    pub fn build(db: &BasketDatabase, items: &Itemset) -> Self {
        let m = items.len();
        assert!(m > 0, "cube needs at least one item");
        assert!(m <= MAX_CUBE_DIMS, "cube limited to {MAX_CUBE_DIMS} items");
        let mut cells = vec![0u64; 1 << m];
        for basket in db.baskets() {
            cells[cell_mask_of(basket, items) as usize] += 1;
        }
        // Zeta transform: supports[mask] = Σ_{c ⊇ mask} cells[c].
        let mut supports = cells.clone();
        for bit in 0..m {
            for mask in 0..(1usize << m) {
                if mask & (1 << bit) == 0 {
                    supports[mask] += supports[mask | (1 << bit)];
                }
            }
        }
        CountCube {
            items: items.clone(),
            n: db.len() as u64,
            cells,
            supports,
        }
    }

    /// The cube's item sub-universe.
    pub fn items(&self) -> &Itemset {
        &self.items
    }

    /// Total baskets.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exact cell count `O(r)` for a presence mask over the cube's items.
    pub fn cell(&self, mask: u32) -> u64 {
        self.cells[mask as usize]
    }

    /// Group-by support: baskets containing every item selected by `mask`.
    pub fn support(&self, mask: u32) -> u64 {
        self.supports[mask as usize]
    }

    /// Support of an arbitrary sub-itemset of the cube.
    ///
    /// # Panics
    ///
    /// Panics if `set` contains items outside the cube.
    pub fn itemset_support(&self, set: &Itemset) -> u64 {
        self.support(self.mask_of(set))
    }

    /// Builds the full contingency table for any non-empty subset of the
    /// cube's items, marginalizing the remaining dimensions out — no
    /// database access.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty or not a subset of the cube's items.
    pub fn contingency(&self, set: &Itemset) -> ContingencyTable {
        assert!(!set.is_empty(), "contingency table needs at least one item");
        let positions: Vec<usize> = set
            .items()
            .iter()
            .map(|&item| self.require_position(item))
            .collect();
        let mut counts = vec![0u64; 1 << positions.len()];
        for (full_mask, &count) in self.cells.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let mut sub_mask = 0usize;
            for (j, &pos) in positions.iter().enumerate() {
                if full_mask & (1 << pos) != 0 {
                    sub_mask |= 1 << j;
                }
            }
            counts[sub_mask] += count;
        }
        ContingencyTable::from_counts(set.clone(), counts)
    }

    fn mask_of(&self, set: &Itemset) -> u32 {
        let mut mask = 0u32;
        for &item in set.items() {
            mask |= 1 << self.require_position(item);
        }
        mask
    }

    /// The cube-internal position of `item`.
    ///
    /// # Panics
    ///
    /// Panics when `item` is not among the cube's items — the documented
    /// contract of every subset-taking method on the cube.
    fn require_position(&self, item: bmb_basket::ItemId) -> usize {
        match self.items.position(item) {
            Some(pos) => pos,
            // Documented contract shared by `contingency`/`count`:
            // callers pass subsets of the cube's items.
            // lint:allow(panic)
            None => panic!("item {item} is not in the cube"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::{BitmapIndex, ItemId, SupportCounter};

    fn db() -> BasketDatabase {
        BasketDatabase::from_id_baskets(
            5,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![0, 2, 4],
                vec![],
                vec![3, 4],
                vec![0, 1, 2, 3, 4],
                vec![2],
            ],
        )
    }

    #[test]
    fn cells_sum_to_n_and_match_scan() {
        let db = db();
        let items = Itemset::from_ids([0, 1, 2]);
        let cube = CountCube::build(&db, &items);
        assert_eq!(cube.cells.iter().sum::<u64>(), 8);
        let direct = ContingencyTable::from_database(&db, &items);
        for (mask, c) in direct.cells() {
            assert_eq!(cube.cell(mask), c);
        }
    }

    #[test]
    fn supports_match_bitmap_index() {
        let db = db();
        let items = Itemset::from_ids([0, 1, 2, 3]);
        let cube = CountCube::build(&db, &items);
        let idx = BitmapIndex::build(&db);
        for mask in 0u32..16 {
            let query: Vec<ItemId> = (0..4)
                .filter(|&j| mask & (1 << j) != 0)
                .map(|j| items.items()[j])
                .collect();
            assert_eq!(
                cube.support(mask),
                idx.support_count(&query),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn empty_mask_support_is_n() {
        let db = db();
        let cube = CountCube::build(&db, &Itemset::from_ids([0, 1]));
        assert_eq!(cube.support(0), 8);
    }

    #[test]
    fn marginalized_contingency_matches_direct() {
        let db = db();
        let cube = CountCube::build(&db, &Itemset::from_ids([0, 1, 2, 3, 4]));
        for sub in [
            Itemset::from_ids([0]),
            Itemset::from_ids([1, 3]),
            Itemset::from_ids([0, 2, 4]),
            Itemset::from_ids([0, 1, 2, 3, 4]),
        ] {
            let from_cube = cube.contingency(&sub);
            let direct = ContingencyTable::from_database(&db, &sub);
            assert_eq!(from_cube, direct, "mismatch for {sub}");
        }
    }

    #[test]
    fn itemset_support_helper() {
        let db = db();
        let cube = CountCube::build(&db, &Itemset::from_ids([0, 1, 2]));
        let counter = bmb_basket::BitmapCounter::build(&db);
        let probe = Itemset::from_ids([0, 2]);
        assert_eq!(
            cube.itemset_support(&probe),
            counter.itemset_support(&probe)
        );
    }

    #[test]
    #[should_panic(expected = "not in the cube")]
    fn foreign_item_panics() {
        let db = db();
        let cube = CountCube::build(&db, &Itemset::from_ids([0, 1]));
        cube.contingency(&Itemset::from_ids([4]));
    }
}

//! The border of an upward-closed property (Section 2.2 of the paper).
//!
//! For an upward-closed property (like chi-squared correlation at a fixed
//! significance level), the minimal itemsets possessing it form an
//! *antichain* that encodes the whole property: a set has the property iff
//! it is a superset of some border element. This module stores such borders
//! and answers above/below queries.

use bmb_basket::Itemset;

/// A border: an antichain of minimal itemsets possessing an upward-closed
/// property.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Border {
    /// Minimal elements, sorted lexicographically.
    minimal: Vec<Itemset>,
}

impl Border {
    /// An empty border: no itemset has the property.
    pub fn empty() -> Self {
        Border::default()
    }

    /// Builds a border from arbitrary property-holders, discarding
    /// non-minimal elements so the result is an antichain.
    pub fn from_holders<I: IntoIterator<Item = Itemset>>(holders: I) -> Self {
        let mut sets: Vec<Itemset> = holders.into_iter().collect();
        // Sorting by size lets each set be checked only against smaller ones.
        sets.sort_unstable_by_key(|s| (s.len(), s.clone()));
        sets.dedup();
        let mut minimal: Vec<Itemset> = Vec::new();
        'outer: for s in sets {
            for m in &minimal {
                if m.is_subset_of(&s) {
                    continue 'outer;
                }
            }
            minimal.push(s);
        }
        minimal.sort_unstable();
        Border { minimal }
    }

    /// Builds directly from elements already known to be minimal.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the elements are not an antichain.
    pub fn from_minimal(mut minimal: Vec<Itemset>) -> Self {
        minimal.sort_unstable();
        minimal.dedup();
        debug_assert!(
            is_antichain(&minimal),
            "border elements must be mutually incomparable"
        );
        Border { minimal }
    }

    /// The minimal elements, sorted.
    pub fn minimal_sets(&self) -> &[Itemset] {
        &self.minimal
    }

    /// Number of minimal elements.
    pub fn len(&self) -> usize {
        self.minimal.len()
    }

    /// Whether the border is empty (property holds nowhere).
    pub fn is_empty(&self) -> bool {
        self.minimal.is_empty()
    }

    /// Whether `set` is at or above the border, i.e. has the property.
    pub fn covers(&self, set: &Itemset) -> bool {
        self.minimal.iter().any(|m| m.is_subset_of(set))
    }

    /// Whether `set` is itself a minimal property-holder.
    pub fn is_minimal(&self, set: &Itemset) -> bool {
        self.minimal.binary_search(set).is_ok()
    }

    /// The lowest level (itemset size) at which the property appears.
    pub fn lowest_level(&self) -> Option<usize> {
        self.minimal.iter().map(|s| s.len()).min()
    }

    /// The highest level among minimal elements (where the border "peaks").
    pub fn highest_level(&self) -> Option<usize> {
        self.minimal.iter().map(|s| s.len()).max()
    }

    /// Merges two borders: the border of the union of the two properties'
    /// holder sets (property holds if either held).
    pub fn union(&self, other: &Border) -> Border {
        Border::from_holders(self.minimal.iter().chain(other.minimal.iter()).cloned())
    }
}

/// Whether a sorted, deduplicated list of itemsets is an antichain.
pub fn is_antichain(sets: &[Itemset]) -> bool {
    for (i, a) in sets.iter().enumerate() {
        for b in &sets[i + 1..] {
            if a.is_subset_of(b) || b.is_subset_of(a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn from_holders_discards_non_minimal() {
        let border = Border::from_holders(vec![
            s(&[1, 2]),
            s(&[1, 2, 3]), // superset of {1,2} — not minimal
            s(&[4]),
            s(&[4, 5]), // superset of {4}
            s(&[2, 3]),
        ]);
        assert_eq!(border.minimal_sets(), &[s(&[1, 2]), s(&[2, 3]), s(&[4])]);
    }

    #[test]
    fn covers_follows_upward_closure() {
        let border = Border::from_minimal(vec![s(&[1, 2]), s(&[3])]);
        assert!(border.covers(&s(&[1, 2])));
        assert!(border.covers(&s(&[1, 2, 9])));
        assert!(border.covers(&s(&[3])));
        assert!(border.covers(&s(&[0, 3])));
        assert!(!border.covers(&s(&[1])));
        assert!(!border.covers(&s(&[2, 9])));
        assert!(!border.covers(&Itemset::empty()));
    }

    #[test]
    fn minimality_queries() {
        let border = Border::from_minimal(vec![s(&[1, 2]), s(&[3])]);
        assert!(border.is_minimal(&s(&[1, 2])));
        assert!(!border.is_minimal(&s(&[1, 2, 3])));
        assert_eq!(border.lowest_level(), Some(1));
        assert_eq!(border.highest_level(), Some(2));
    }

    #[test]
    fn empty_border_covers_nothing() {
        let border = Border::empty();
        assert!(!border.covers(&s(&[1])));
        assert!(border.is_empty());
        assert_eq!(border.lowest_level(), None);
    }

    #[test]
    fn union_re_minimizes() {
        let a = Border::from_minimal(vec![s(&[1, 2])]);
        let b = Border::from_minimal(vec![s(&[1])]);
        let u = a.union(&b);
        // {1} subsumes {1,2}.
        assert_eq!(u.minimal_sets(), &[s(&[1])]);
    }

    #[test]
    fn antichain_check() {
        assert!(is_antichain(&[s(&[1]), s(&[2, 3])]));
        assert!(!is_antichain(&[s(&[1]), s(&[1, 2])]));
        assert!(is_antichain(&[]));
    }

    #[test]
    fn duplicate_holders_collapse() {
        let border = Border::from_holders(vec![s(&[7]), s(&[7]), s(&[7, 8])]);
        assert_eq!(border.len(), 1);
    }
}

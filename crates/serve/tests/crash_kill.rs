//! Real process-kill crash test: SIGKILL a child server mid-ingest,
//! ten times in a row, and prove the durability contract end-to-end.
//!
//! Each round spawns the `crash_harness` binary (a full server over a
//! checkpointed directory-mode [`DurableStore`] with an aggressive
//! background checkpointer), drives acknowledged `ingest` requests at
//! it from a loadgen thread, and `kill(9)`s the process at an
//! arbitrary moment — torn segment tails, half-written snapshots and
//! unsynced directory entries included. After every kill the directory
//! is recovered in-process and checked:
//!
//! * every **acknowledged** append is present (`epoch >= acked`), and
//!   nothing phantom appeared (`epoch <= sent`);
//! * recovery is **bounded**: `baskets_recovered` equals
//!   `epoch - checkpoint_epoch`, pinned by the recovery gauges — once
//!   checkpoints exist, a crash never replays the whole history;
//! * chi-squared and border answers are **bit-identical**
//!   (`f64::to_bits`) to a never-crashed in-memory store fed the same
//!   basket sequence.
//!
//! The randomized in-memory counterpart (hundreds of planned fault
//! points) lives in `bmb-core`'s `checkpoint_torture` test; this one
//! trades coverage for realism — real processes, real files, real
//! `SIGKILL`.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::wal::{DurabilityConfig, DurableStore, RecoveryReport};
use bmb_basket::{FsDir, IncrementalStore, ItemId, Itemset, StoreConfig};
use bmb_core::{EngineConfig, MinerConfig, QueryEngine, SupportSpec};
use bmb_serve::json::Value;
use bmb_serve::Client;

const N_ITEMS: usize = 12;
const SEGMENT_BYTES: u64 = 512;
const CHECKPOINT_EVERY: u64 = 16;
const ROUNDS: usize = 10;

/// Deterministic basket for global append index `i`, so a reference
/// store can be rebuilt from the recovered epoch alone.
fn basket(i: u64) -> Vec<u64> {
    let a = i % N_ITEMS as u64;
    let b = (i * 7 + 3) % N_ITEMS as u64;
    if a == b {
        vec![a]
    } else {
        vec![a, b]
    }
}

fn scratch_dir() -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("bmb-crash-kill-{pid}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// SIGKILLs the child if the test panics before doing so itself.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

struct Harness {
    child: KillOnDrop,
    addr: SocketAddr,
    report: (u64, u64, u64), // epoch, checkpoint_epoch, baskets_recovered
}

/// Spawns the harness server over `dir` and reads its announcements.
fn spawn_harness(dir: &Path) -> Harness {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crash_harness"))
        .arg(dir)
        .arg(N_ITEMS.to_string())
        .arg(SEGMENT_BYTES.to_string())
        .arg(CHECKPOINT_EVERY.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash_harness");
    let stdout = child.stdout.take().expect("piped stdout");
    let child = KillOnDrop(child);
    let mut lines = BufReader::new(stdout).lines();
    let addr_line = lines
        .next()
        .expect("ADDR line")
        .expect("read harness stdout");
    let addr: SocketAddr = addr_line
        .strip_prefix("ADDR ")
        .expect("ADDR prefix")
        .parse()
        .expect("harness address");
    let recovered_line = lines
        .next()
        .expect("RECOVERED line")
        .expect("read harness stdout");
    let fields: Vec<u64> = recovered_line
        .strip_prefix("RECOVERED ")
        .expect("RECOVERED prefix")
        .split(' ')
        .map(|f| f.parse().expect("RECOVERED field"))
        .collect();
    Harness {
        child,
        addr,
        report: (fields[0], fields[1], fields[2]),
    }
}

/// Ingests deterministic baskets one per request starting at global
/// index `start` until the connection dies (the parent killed the
/// server). Returns `(sent, acked)` — acked only counts requests whose
/// response line arrived.
fn loadgen(addr: SocketAddr, start: u64, sent: &AtomicU64, acked: &AtomicU64) {
    let Ok(mut client) = Client::connect(addr) else {
        return;
    };
    let mut i = start;
    loop {
        let items: Vec<Value> = basket(i)
            .into_iter()
            .map(|id| Value::Int(id as i64))
            .collect();
        let request = Value::object()
            .with("cmd", Value::Str("ingest".to_string()))
            .with("baskets", Value::Array(vec![Value::Array(items)]));
        sent.store(i + 1, Ordering::SeqCst);
        match client.request(&request) {
            Ok(result) => {
                let epoch = result.get("epoch").and_then(Value::as_u64).expect("epoch");
                assert_eq!(epoch, i + 1, "acks are sequential");
                acked.store(epoch, Ordering::SeqCst);
                i += 1;
            }
            Err(_) => return, // server killed mid-request
        }
    }
}

/// Recovers the directory in-process and checks the whole contract.
fn verify_recovery(dir: &Path, acked: u64, sent: u64) -> RecoveryReport {
    let fs = FsDir::open(dir).expect("open dir for verification");
    let (durable, report) = DurableStore::open_dir(
        Box::new(fs),
        N_ITEMS,
        StoreConfig {
            segment_capacity: 3,
        },
        DurabilityConfig {
            segment_bytes: SEGMENT_BYTES,
            retain_checkpoints: 2,
        },
    )
    .expect("SIGKILL survivors must recover");
    assert!(
        report.epoch >= acked,
        "acked append lost: epoch {} < acked {acked} ({report:?})",
        report.epoch
    );
    assert!(
        report.epoch <= sent,
        "phantom baskets: epoch {} > sent {sent} ({report:?})",
        report.epoch
    );
    assert_eq!(
        report.baskets_recovered,
        report.epoch - report.checkpoint_epoch,
        "recovery must replay exactly the post-checkpoint suffix: {report:?}"
    );
    let obs = durable.observability().snapshot();
    assert_eq!(
        obs.gauge_value("bmb_basket_ckpt_recovery_epoch", &[]) as u64,
        report.checkpoint_epoch
    );
    assert_eq!(
        obs.gauge_value("bmb_basket_wal_recovered_baskets", &[]) as u64,
        report.baskets_recovered
    );

    // Bit-identical answers against a never-crashed store fed the same
    // basket sequence.
    let reference = Arc::new(IncrementalStore::new(
        N_ITEMS,
        StoreConfig {
            segment_capacity: 3,
        },
    ));
    for i in 0..report.epoch {
        let items: Vec<ItemId> = basket(i).into_iter().map(|id| ItemId(id as u32)).collect();
        reference.append_batch([items]).expect("reference ingest");
    }
    assert_bit_identical(durable.store(), &reference);
    report
}

fn assert_bit_identical(recovered: &Arc<IncrementalStore>, reference: &Arc<IncrementalStore>) {
    assert_eq!(recovered.epoch(), reference.epoch(), "epochs diverge");
    if recovered.epoch() == 0 {
        return;
    }
    let got = QueryEngine::new(Arc::clone(recovered), EngineConfig::default());
    let want = QueryEngine::new(Arc::clone(reference), EngineConfig::default());
    let got_snap = got.snapshot();
    let want_snap = want.snapshot();
    let mut probes: Vec<Itemset> = (0..N_ITEMS as u32)
        .map(|i| Itemset::from_ids([i]))
        .collect();
    for i in 0..N_ITEMS as u32 {
        probes.push(Itemset::from_ids([i, (i + 1) % N_ITEMS as u32]));
    }
    for set in &probes {
        let a = got.chi2(&got_snap, set).expect("recovered chi2");
        let b = want.chi2(&want_snap, set).expect("reference chi2");
        assert_eq!(a.support, b.support, "support diverges for {set:?}");
        assert_eq!(
            a.outcome.statistic.to_bits(),
            b.outcome.statistic.to_bits(),
            "chi2 bits diverge for {set:?}"
        );
    }
    let miner = MinerConfig {
        support: SupportSpec::Fraction(0.05),
        support_fraction: 0.3,
        max_level: 3,
        ..MinerConfig::default()
    };
    let a = got.border(&got_snap, &miner).expect("recovered border");
    let b = want.border(&want_snap, &miner).expect("reference border");
    assert_eq!(a.support_count, b.support_count);
    assert_eq!(a.chi2_cutoff.to_bits(), b.chi2_cutoff.to_bits());
    assert_eq!(a.significant.len(), b.significant.len(), "border size");
    for (ra, rb) in a.significant.iter().zip(&b.significant) {
        assert_eq!(ra.itemset, rb.itemset);
        assert_eq!(ra.chi2.statistic.to_bits(), rb.chi2.statistic.to_bits());
    }
}

#[test]
fn sigkill_mid_ingest_never_loses_acked_appends() {
    let dir = scratch_dir();
    let mut epoch = 0u64; // recovered epoch after the previous round
    let mut saw_bounded_replay = false;

    for round in 0..ROUNDS {
        let mut harness = spawn_harness(&dir);
        let (child_epoch, child_ckpt, child_replayed) = harness.report;
        assert_eq!(
            child_epoch, epoch,
            "round {round}: child recovery disagrees with in-process recovery"
        );
        assert_eq!(child_replayed, child_epoch - child_ckpt);

        let sent = AtomicU64::new(epoch);
        let acked = AtomicU64::new(epoch);
        // Vary the kill point: ack-count thresholds keep the timing
        // deterministic-ish across machine speeds while still landing
        // inside an ingest burst.
        let kill_after_acks = 5 + (round as u64 * 7) % 23;
        std::thread::scope(|scope| {
            let addr = harness.addr;
            let start = epoch;
            let sent = &sent;
            let acked = &acked;
            let load = scope.spawn(move || loadgen(addr, start, sent, acked));
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            while acked.load(Ordering::SeqCst) < epoch + kill_after_acks
                && std::time::Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            // A real SIGKILL, mid-ingest: the loadgen thread is still
            // firing requests when the process dies.
            harness.child.0.kill().expect("SIGKILL child");
            harness.child.0.wait().expect("reap child");
            load.join().expect("loadgen thread");
        });

        let acked = acked.load(Ordering::SeqCst);
        let sent = sent.load(Ordering::SeqCst);
        assert!(
            acked >= epoch + 5,
            "round {round}: loadgen made no progress (acked {acked})"
        );
        let report = verify_recovery(&dir, acked, sent);
        epoch = report.epoch;
        if report.checkpoint_epoch > 0 {
            saw_bounded_replay = true;
            assert!(
                report.baskets_recovered < report.epoch,
                "a checkpoint must bound replay below full history: {report:?}"
            );
        }
    }

    assert!(
        saw_bounded_replay,
        "no round recovered from a checkpoint — checkpointer never fired"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

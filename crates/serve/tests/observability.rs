//! Observability integration tests: the `metrics` wire command, the
//! HTTP `/metrics` exposition listener, per-request trace ids, and the
//! `/stats` derived-ratio edge cases (0.0, never NaN/null, before any
//! traffic).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::{IncrementalStore, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::{parse, Value};
use bmb_serve::{Client, Server, ServerConfig};

fn test_store() -> Arc<IncrementalStore> {
    let store = Arc::new(IncrementalStore::new(
        4,
        StoreConfig {
            segment_capacity: 4,
        },
    ));
    let baskets: [&[u32]; 6] = [&[0, 1], &[0, 1, 2], &[2], &[0, 1], &[1, 2, 3], &[0]];
    for basket in baskets {
        store.append_ids(basket.iter().copied()).expect("in range");
    }
    store
}

fn spawn_server(config: ServerConfig) -> bmb_serve::server::RunningServer {
    let engine = Arc::new(QueryEngine::new(test_store(), EngineConfig::default()));
    Server::bind(engine, config).expect("bind").spawn()
}

#[test]
fn stats_ratios_are_zero_before_any_traffic() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    // The very first request is `stats` itself: its snapshot is taken
    // before the request is recorded, so every ratio sees zero traffic.
    let stats = client
        .request(&parse(r#"{"cmd":"stats"}"#).expect("req"))
        .expect("stats");
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(0));
    // Derived ratios are exactly 0.0 — a float, not null (NaN serializes
    // to null in our JSON) and not a missing field.
    let error_rate = stats.get("error_rate").and_then(Value::as_f64);
    assert_eq!(error_rate.map(f64::to_bits), Some(0u64));
    let hit_rate = stats.get("table_hit_rate").and_then(Value::as_f64);
    assert_eq!(hit_rate.map(f64::to_bits), Some(0u64));
    // Empty latency histograms quantile to 0, not garbage.
    assert_eq!(stats.get("p50_us").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("p99_us").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("slow_requests").and_then(Value::as_u64), Some(0));
    running.stop().expect("clean stop");
}

#[test]
fn responses_carry_distinct_trace_ids() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    let a = client
        .request_line(r#"{"cmd":"ping"}"#)
        .expect("first ping");
    let b = client
        .request_line(r#"{"cmd":"ping"}"#)
        .expect("second ping");
    let trace_of = |line: &str| -> String {
        let value = parse(line).expect("response json");
        value
            .get("trace")
            .and_then(Value::as_str)
            .expect("trace field present")
            .to_string()
    };
    let (ta, tb) = (trace_of(&a), trace_of(&b));
    assert_eq!(ta.len(), 16, "trace ids are 16 hex chars: {ta}");
    assert_ne!(ta, tb, "each request gets its own trace id");
    running.stop().expect("clean stop");
}

#[test]
fn metrics_command_returns_exposition_text() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    client
        .request(&parse(r#"{"cmd":"chi2","items":[0,1]}"#).expect("req"))
        .expect("warm a query");
    let metrics = client
        .request(&parse(r#"{"cmd":"metrics"}"#).expect("req"))
        .expect("metrics");
    let text = metrics
        .get("text")
        .and_then(Value::as_str)
        .expect("text payload");
    for family in [
        "bmb_serve_requests_total",
        "bmb_serve_request_us",
        "bmb_core_cache_hits_total",
        "bmb_core_cache_misses_total",
    ] {
        assert!(
            text.contains(family),
            "exposition missing {family}:\n{text}"
        );
    }
    // The chi2 request this server already served is visible.
    assert!(
        text.contains(r#"bmb_serve_request_us_count{cmd="chi2"} 1"#),
        "per-command histogram count missing:\n{text}"
    );
    running.stop().expect("clean stop");
}

/// One plain-HTTP GET against the metrics listener.
fn http_get_metrics(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect /metrics");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn http_metrics_listener_serves_prometheus_text() {
    let running = spawn_server(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    });
    let metrics_addr = running.metrics_addr.expect("metrics listener bound");
    let mut client = Client::connect(running.addr).expect("connect");
    client
        .request(&parse(r#"{"cmd":"topk","k":2}"#).expect("req"))
        .expect("warm a query");

    let response = http_get_metrics(metrics_addr);
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http head/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "content type: {head}"
    );
    for family in [
        "bmb_serve_requests_total",
        "bmb_serve_request_us",
        "bmb_core_cache_hits_total",
    ] {
        assert!(body.contains(family), "body missing {family}:\n{body}");
    }
    // Histogram buckets are cumulative and end at +Inf == _count.
    let mut last: Option<u64> = None;
    let mut inf: Option<u64> = None;
    for line in body.lines() {
        if line.starts_with(r#"bmb_serve_request_us_bucket{cmd="topk""#) {
            let value: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("bucket value");
            if let Some(prev) = last {
                assert!(value >= prev, "buckets must be cumulative: {line}");
            }
            last = Some(value);
            if line.contains(r#"le="+Inf""#) {
                inf = Some(value);
            }
        }
        if line.starts_with(r#"bmb_serve_request_us_count{cmd="topk"}"#) {
            let count: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("count value");
            assert_eq!(Some(count), inf, "+Inf bucket must equal _count");
        }
    }
    assert!(inf.is_some(), "topk histogram must appear in:\n{body}");

    // A second scrape still answers (the listener loops).
    assert!(http_get_metrics(metrics_addr).contains("bmb_serve_requests_total"));
    running.stop().expect("clean stop");
}

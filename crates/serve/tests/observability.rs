//! Observability integration tests: the `metrics` wire command, the
//! HTTP `/metrics` exposition listener, per-request trace ids, and the
//! `/stats` derived-ratio edge cases (0.0, never NaN/null, before any
//! traffic).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::{IncrementalStore, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::{parse, Value};
use bmb_serve::{Client, Server, ServerConfig};

fn test_store() -> Arc<IncrementalStore> {
    let store = Arc::new(IncrementalStore::new(
        4,
        StoreConfig {
            segment_capacity: 4,
        },
    ));
    let baskets: [&[u32]; 6] = [&[0, 1], &[0, 1, 2], &[2], &[0, 1], &[1, 2, 3], &[0]];
    for basket in baskets {
        store.append_ids(basket.iter().copied()).expect("in range");
    }
    store
}

fn spawn_server(config: ServerConfig) -> bmb_serve::server::RunningServer {
    let engine = Arc::new(QueryEngine::new(test_store(), EngineConfig::default()));
    Server::bind(engine, config).expect("bind").spawn()
}

#[test]
fn stats_ratios_are_zero_before_any_traffic() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    // The very first request is `stats` itself: its snapshot is taken
    // before the request is recorded, so every ratio sees zero traffic.
    let stats = client
        .request(&parse(r#"{"cmd":"stats"}"#).expect("req"))
        .expect("stats");
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(0));
    // Derived ratios are exactly 0.0 — a float, not null (NaN serializes
    // to null in our JSON) and not a missing field.
    let error_rate = stats.get("error_rate").and_then(Value::as_f64);
    assert_eq!(error_rate.map(f64::to_bits), Some(0u64));
    let hit_rate = stats.get("table_hit_rate").and_then(Value::as_f64);
    assert_eq!(hit_rate.map(f64::to_bits), Some(0u64));
    // Empty latency histograms quantile to 0, not garbage.
    assert_eq!(stats.get("p50_us").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("p99_us").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("slow_requests").and_then(Value::as_u64), Some(0));
    running.stop().expect("clean stop");
}

#[test]
fn responses_carry_distinct_trace_ids() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    let a = client
        .request_line(r#"{"cmd":"ping"}"#)
        .expect("first ping");
    let b = client
        .request_line(r#"{"cmd":"ping"}"#)
        .expect("second ping");
    let trace_of = |line: &str| -> String {
        let value = parse(line).expect("response json");
        value
            .get("trace")
            .and_then(Value::as_str)
            .expect("trace field present")
            .to_string()
    };
    let (ta, tb) = (trace_of(&a), trace_of(&b));
    assert_eq!(ta.len(), 16, "trace ids are 16 hex chars: {ta}");
    assert_ne!(ta, tb, "each request gets its own trace id");
    running.stop().expect("clean stop");
}

#[test]
fn client_supplied_trace_is_adopted_and_consumes_no_sequence() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    let trace_of = |line: &str| -> String {
        parse(line)
            .expect("response json")
            .get("trace")
            .and_then(Value::as_str)
            .expect("trace field present")
            .to_string()
    };
    let before = client.request_line(r#"{"cmd":"ping"}"#).expect("minted");
    let adopted = client
        .request_line(r#"{"cmd":"ping","trace":"00000000deadbeef"}"#)
        .expect("adopted");
    let after = client.request_line(r#"{"cmd":"ping"}"#).expect("minted");
    assert_eq!(
        trace_of(&adopted),
        "00000000deadbeef",
        "a valid inbound trace is echoed verbatim"
    );
    let seq = |line: &str| u64::from_str_radix(&trace_of(line), 16).expect("hex trace");
    assert_eq!(
        seq(&after),
        seq(&before) + 1,
        "adopting a trace must not consume a server sequence number"
    );
    running.stop().expect("clean stop");
}

#[test]
fn malformed_inbound_traces_are_rejected() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    for bad in [
        r#"{"cmd":"ping","trace":"DEADBEEF"}"#,
        r#"{"cmd":"ping","trace":"0000000000000000"}"#,
        r#"{"cmd":"ping","trace":"123"}"#,
        r#"{"cmd":"ping","trace":42}"#,
    ] {
        let line = client.request_line(bad).expect("response line");
        let value = parse(&line).expect("response json");
        assert_eq!(
            value.get("ok").and_then(Value::as_bool),
            Some(false),
            "malformed trace must be rejected: {line}"
        );
        let error = value
            .get("error")
            .and_then(Value::as_str)
            .expect("error message");
        assert!(error.contains("trace"), "error names the field: {error}");
        // The rejection itself still carries a minted trace id.
        assert!(value.get("trace").and_then(Value::as_str).is_some());
    }
    running.stop().expect("clean stop");
}

#[test]
fn trace_command_returns_recorded_server_spans() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    client
        .request_line(r#"{"cmd":"chi2","items":[0,1],"trace":"00000000000000aa"}"#)
        .expect("traced query");
    let tree = client
        .request(&parse(r#"{"cmd":"trace","trace":"00000000000000aa"}"#).expect("req"))
        .expect("trace lookup");
    assert_eq!(
        tree.get("trace").and_then(Value::as_str),
        Some("00000000000000aa")
    );
    let spans = tree
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans array");
    assert_eq!(spans.len(), 1, "one server span recorded: {tree}");
    let span = &spans[0];
    assert_eq!(span.get("name").and_then(Value::as_str), Some("serve:chi2"));
    assert_eq!(span.get("node").and_then(Value::as_str), Some("server"));
    assert_eq!(span.get("outcome").and_then(Value::as_str), Some("ok"));
    assert!(span.get("parent").is_none(), "root span has no parent");
    running.stop().expect("clean stop");
}

#[test]
fn slow_requests_surface_trace_exemplars_in_stats() {
    // A zero threshold makes every request "slow", so the exemplar
    // ring fills deterministically.
    let running = spawn_server(ServerConfig {
        slow_request_threshold: Duration::from_secs(0),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(running.addr).expect("connect");
    client
        .request_line(r#"{"cmd":"chi2","items":[0,1],"trace":"00000000000000bb"}"#)
        .expect("traced query");
    let stats = client
        .request(&parse(r#"{"cmd":"stats"}"#).expect("req"))
        .expect("stats");
    let exemplars = stats
        .get("slow_exemplars")
        .and_then(Value::as_array)
        .expect("slow_exemplars array");
    assert!(!exemplars.is_empty(), "exemplars recorded: {stats}");
    let chi2 = exemplars
        .iter()
        .find(|e| e.get("cmd").and_then(Value::as_str) == Some("chi2"))
        .expect("chi2 exemplar present");
    assert_eq!(
        chi2.get("trace").and_then(Value::as_str),
        Some("00000000000000bb"),
        "the exemplar names the trace to pull its tree"
    );
    assert!(chi2.get("elapsed_us").and_then(Value::as_u64).is_some());
    running.stop().expect("clean stop");
}

#[test]
fn events_command_reports_ring_events() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    let events = client
        .request(&parse(r#"{"cmd":"events"}"#).expect("req"))
        .expect("events");
    // No ledger attached in this process: the source is the in-memory
    // ring, and the shape is stable even when it holds no events.
    assert_eq!(events.get("source").and_then(Value::as_str), Some("ring"));
    assert!(events.get("count").and_then(Value::as_u64).is_some());
    assert!(events.get("events").and_then(Value::as_array).is_some());
    running.stop().expect("clean stop");
}

#[test]
fn metrics_command_returns_exposition_text() {
    let running = spawn_server(ServerConfig::default());
    let mut client = Client::connect(running.addr).expect("connect");
    client
        .request(&parse(r#"{"cmd":"chi2","items":[0,1]}"#).expect("req"))
        .expect("warm a query");
    let metrics = client
        .request(&parse(r#"{"cmd":"metrics"}"#).expect("req"))
        .expect("metrics");
    let text = metrics
        .get("text")
        .and_then(Value::as_str)
        .expect("text payload");
    for family in [
        "bmb_serve_requests_total",
        "bmb_serve_request_us",
        "bmb_core_cache_hits_total",
        "bmb_core_cache_misses_total",
    ] {
        assert!(
            text.contains(family),
            "exposition missing {family}:\n{text}"
        );
    }
    // The chi2 request this server already served is visible.
    assert!(
        text.contains(r#"bmb_serve_request_us_count{cmd="chi2"} 1"#),
        "per-command histogram count missing:\n{text}"
    );
    running.stop().expect("clean stop");
}

/// One plain-HTTP GET against the metrics listener.
fn http_get_metrics(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect /metrics");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn http_metrics_listener_serves_prometheus_text() {
    let running = spawn_server(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    });
    let metrics_addr = running.metrics_addr.expect("metrics listener bound");
    let mut client = Client::connect(running.addr).expect("connect");
    client
        .request(&parse(r#"{"cmd":"topk","k":2}"#).expect("req"))
        .expect("warm a query");

    let response = http_get_metrics(metrics_addr);
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http head/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "content type: {head}"
    );
    for family in [
        "bmb_serve_requests_total",
        "bmb_serve_request_us",
        "bmb_core_cache_hits_total",
    ] {
        assert!(body.contains(family), "body missing {family}:\n{body}");
    }
    // Histogram buckets are cumulative and end at +Inf == _count.
    let mut last: Option<u64> = None;
    let mut inf: Option<u64> = None;
    for line in body.lines() {
        if line.starts_with(r#"bmb_serve_request_us_bucket{cmd="topk""#) {
            let value: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("bucket value");
            if let Some(prev) = last {
                assert!(value >= prev, "buckets must be cumulative: {line}");
            }
            last = Some(value);
            if line.contains(r#"le="+Inf""#) {
                inf = Some(value);
            }
        }
        if line.starts_with(r#"bmb_serve_request_us_count{cmd="topk"}"#) {
            let count: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("count value");
            assert_eq!(Some(count), inf, "+Inf bucket must equal _count");
        }
    }
    assert!(inf.is_some(), "topk histogram must appear in:\n{body}");

    // A second scrape still answers (the listener loops).
    assert!(http_get_metrics(metrics_addr).contains("bmb_serve_requests_total"));
    running.stop().expect("clean stop");
}

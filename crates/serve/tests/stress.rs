//! Concurrent ingest-vs-query stress test.
//!
//! N writer threads append seeded Quest baskets through the store while M
//! reader threads take snapshots and verify that every snapshot answer is
//! *bit-identical* to a serial recomputation over that snapshot's baskets
//! — the consistency contract of the serving layer: a snapshot is a fixed
//! epoch, no matter how much ingest races past it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bmb_basket::{ContingencyTable, IncrementalStore, ItemId, Itemset, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};

const N_ITEMS: usize = 12;
const WRITERS: usize = 3;
const READERS: usize = 3;
const BASKETS_PER_WRITER: usize = 1200;
const BATCH: usize = 24;

/// Deterministic Quest baskets for one writer.
fn writer_baskets(writer: usize) -> Vec<Vec<ItemId>> {
    let db = bmb_quest::generate(&bmb_quest::QuestParams {
        n_transactions: BASKETS_PER_WRITER,
        n_items: N_ITEMS,
        avg_transaction_len: 4.0,
        n_patterns: 40,
        seed: 0xbeef + writer as u64,
        ..Default::default()
    });
    db.baskets().map(<[ItemId]>::to_vec).collect()
}

#[test]
fn concurrent_ingest_and_queries_agree_with_serial_recomputation() {
    let store = Arc::new(IncrementalStore::new(
        N_ITEMS,
        StoreConfig {
            segment_capacity: 256, // many seals during the run
        },
    ));
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        EngineConfig::default(),
    ));
    let done = AtomicBool::new(false);
    let queried_sets: Vec<Itemset> = vec![
        Itemset::from_ids([0]),
        Itemset::from_ids([0, 1]),
        Itemset::from_ids([2, 5, 7]),
        Itemset::from_ids([1, 3, 8, 11]),
    ];

    crossbeam::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let store = Arc::clone(&store);
                scope.spawn(move |_| {
                    let baskets = writer_baskets(w);
                    for chunk in baskets.chunks(BATCH) {
                        store
                            .append_batch(chunk.iter().map(|b| b.iter().copied()))
                            .expect("quest ids are in range");
                    }
                })
            })
            .collect();
        let mut readers = Vec::new();
        for r in 0..READERS {
            let engine = &engine;
            let done = &done;
            let sets = &queried_sets;
            readers.push(scope.spawn(move |_| {
                let test = *engine.test();
                let mut checks = 0u64;
                let mut last_epoch = 0u64;
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let snap = engine.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epochs must be monotonic per reader"
                    );
                    last_epoch = snap.epoch();
                    if !snap.is_empty() {
                        // Serial ground truth over exactly this epoch's
                        // baskets, via the plain batch pipeline.
                        let flat = snap.to_database();
                        assert_eq!(flat.len() as u64, snap.epoch());
                        let set = &sets[(r + checks as usize) % sets.len()];
                        let answer = engine.chi2(&snap, set).expect("valid query");
                        let serial_table = ContingencyTable::from_database(&flat, set);
                        let serial = test.test_dense(&serial_table);
                        assert_eq!(
                            answer.outcome.statistic.to_bits(),
                            serial.statistic.to_bits(),
                            "snapshot chi2 diverged from serial recomputation \
                             at epoch {} for {set}",
                            snap.epoch()
                        );
                        assert_eq!(answer.outcome.significant, serial.significant);
                        let full_mask = (1u32 << set.len()) - 1;
                        assert_eq!(answer.support, serial_table.observed(full_mask));
                        checks += 1;
                    }
                    if finished {
                        return checks;
                    }
                    std::thread::yield_now();
                }
            }));
        }
        for writer in writers {
            writer.join().expect("writer finished");
        }
        done.store(true, Ordering::SeqCst);
        let total_checks: u64 = readers
            .into_iter()
            .map(|r| r.join().expect("reader finished"))
            .sum();
        assert!(
            total_checks >= READERS as u64,
            "readers must have verified at least one epoch each"
        );
    })
    .expect("no thread panicked");

    // Final state: every basket landed exactly once, and the last
    // snapshot answers match a from-scratch batch recomputation.
    let snap = store.snapshot();
    assert_eq!(snap.epoch(), (WRITERS * BASKETS_PER_WRITER) as u64);
    let flat = snap.to_database();
    let test = *engine.test();
    for set in &queried_sets {
        let answer = engine.chi2(&snap, set).expect("valid query");
        let serial = test.test_dense(&ContingencyTable::from_database(&flat, set));
        assert_eq!(
            answer.outcome.statistic.to_bits(),
            serial.statistic.to_bits()
        );
    }
}

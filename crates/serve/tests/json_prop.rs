//! Property tests and a rejection corpus for the hand-rolled JSON codec.
//!
//! The codec is the wire layer of the serving protocol, so its contract
//! is pinned from both sides:
//!
//! * **round-trip** — any [`Value`] the serializer can emit parses back
//!   to an equal value, and the serialization is a fixed point
//!   (serialize → parse → serialize is byte-stable);
//! * **no panics** — mutated documents (byte flips over valid JSON) are
//!   either parsed or rejected with an error, never a crash;
//! * **rejection corpus** — truncated documents, nested junk, numbers
//!   beyond `f64`, and invalid string escapes all fail loudly.

use bmb_serve::json::{parse, Value};
use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::TestRng;
use rand::Rng;

/// Generates arbitrary JSON values with bounded depth and width.
struct ArbValue {
    max_depth: usize,
}

impl Strategy for ArbValue {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        gen_value(&mut rng.0, self.max_depth)
    }
}

fn gen_value(rng: &mut rand::rngs::StdRng, depth: usize) -> Value {
    // Leaves only at the bottom; containers become rarer with depth.
    let top = if depth == 0 { 5 } else { 7 };
    match rng.gen_range(0..top) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0..2) == 0),
        2 => Value::Int(gen_int(rng)),
        3 => Value::Float(gen_finite_float(rng)),
        4 => Value::Str(gen_string(rng)),
        5 => Value::Array(
            (0..rng.gen_range(0..4))
                .map(|_| gen_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..rng.gen_range(0..4))
                .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

fn gen_int(rng: &mut rand::rngs::StdRng) -> i64 {
    match rng.gen_range(0..4) {
        0 => *[0i64, 1, -1, i64::MAX, i64::MIN]
            .get(rng.gen_range(0..5usize))
            .unwrap_or(&0),
        1 => rng.gen_range(-1000..1000),
        _ => {
            use rand::RngCore;
            rng.next_u64() as i64
        }
    }
}

fn gen_finite_float(rng: &mut rand::rngs::StdRng) -> f64 {
    use rand::RngCore;
    // Mix of small decimals and raw bit patterns (filtered to finite so
    // the value is JSON-representable at all).
    if rng.gen_range(0..2) == 0 {
        (rng.gen_range(-4000i64..4000) as f64) / 16.0
    } else {
        loop {
            let f = f64::from_bits(rng.next_u64());
            if f.is_finite() {
                return f;
            }
        }
    }
}

fn gen_string(rng: &mut rand::rngs::StdRng) -> String {
    // A palette that exercises every escape path: quotes, backslashes,
    // control characters, multi-byte UTF-8, and the replacement char.
    const PALETTE: &[char] = &[
        'a', 'B', '7', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '/', 'é', '∆', '🦀',
        '\u{FFFD}', '{', '}', '[', ']', ':',
    ];
    let len = rng.gen_range(0..8);
    (0..len)
        .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
        .collect()
}

proptest! {
    #[test]
    fn serialization_round_trips(value in ArbValue { max_depth: 4 }) {
        let text = value.to_string();
        let back = match parse(&text) {
            Ok(back) => back,
            Err(e) => return Err(TestCaseError::fail(format!(
                "serializer emitted unparseable JSON {text:?}: {e}"
            ))),
        };
        prop_assert_eq!(&back, &value, "value changed across round-trip: {}", text);
        // The serialization is a fixed point: no drift on re-encode.
        prop_assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parser_survives_byte_flips(value in ArbValue { max_depth: 3 }, salt in 0u64..u64::MAX) {
        let text = value.to_string();
        if text.is_empty() {
            return Ok(());
        }
        // Replace one whole character with a printable ASCII byte
        // (keeping the buffer valid UTF-8 so it parses as a &str at all).
        let pos = (salt as usize) % text.len();
        if !text.is_char_boundary(pos) {
            return Ok(());
        }
        let end = pos
            + text[pos..]
                .chars()
                .next()
                .map_or(1, char::len_utf8);
        let replacement = (b' ' + ((salt >> 32) % 95) as u8) as char;
        let mutated = format!("{}{}{}", &text[..pos], replacement, &text[end..]);
        // Parsing must terminate with a clean verdict, and anything it
        // accepts must itself round-trip.
        if let Ok(reparsed) = parse(&mutated) {
            let text2 = reparsed.to_string();
            let again = match parse(&text2) {
                Ok(again) => again,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "accepted {mutated:?} but re-serialization {text2:?} fails: {e}"
                ))),
            };
            prop_assert_eq!(again, reparsed);
        }
    }
}

/// Documents the parser rejects, grouped by failure family. Every entry
/// must produce an error (never a panic, never silent acceptance).
#[test]
fn rejection_corpus() {
    let corpus: &[(&str, &str)] = &[
        // Truncated documents.
        ("truncated", r#"{"a":"#),
        ("truncated", r#"{"a""#),
        ("truncated", r#"["#),
        ("truncated", r#"[1,2"#),
        ("truncated", r#"[1,"#),
        ("truncated", r#""abc"#),
        ("truncated", r#"{"#),
        ("truncated", "tru"),
        ("truncated", "-"),
        ("truncated", ""),
        // Structurally nested junk.
        ("nested junk", r#"{"a":[}]"#),
        ("nested junk", r#"[{]}"#),
        ("nested junk", r#"{"a" 1}"#),
        ("nested junk", r#"{1:2}"#),
        ("nested junk", r#"[1 2]"#),
        ("nested junk", r#"{"a":1,}"#),
        ("nested junk", r#"[1,]"#),
        ("nested junk", r#"{,}"#),
        // Numbers f64 cannot hold (would round to infinity) or cannot read.
        ("huge number", "1e999"),
        ("huge number", "-1e999"),
        ("huge number", "1e99999999999999999999"),
        ("huge number", "1.8e308"),
        ("bad number", "1e"),
        ("bad number", "1.2.3"),
        ("bad number", "--1"),
        ("bad number", "1e+-2"),
        // Invalid string escapes.
        ("bad escape", r#""\x""#),
        ("bad escape", r#""\u12""#),
        ("bad escape", r#""\u12G4""#),
        ("bad escape", r#""\"#),
        ("bad escape", "\"\u{1}\""), // raw control char in a string
        // Trailing garbage after a complete document.
        ("trailing", "1 2"),
        ("trailing", "{} {}"),
        ("trailing", "null,"),
    ];
    for (family, doc) in corpus {
        assert!(
            parse(doc).is_err(),
            "{family}: {doc:?} must be rejected, parsed as {:?}",
            parse(doc)
        );
    }
    // Depth bombs: past the recursion guard the parser errors instead of
    // blowing the stack.
    let deep = format!("{}1{}", "[".repeat(1000), "]".repeat(1000));
    assert!(parse(&deep).is_err(), "1000-deep nesting must be rejected");
}

/// The documented accept-side edge cases stay accepted (so the corpus
/// above can't silently over-tighten the parser).
#[test]
fn acceptance_edges() {
    // Lone surrogates degrade to U+FFFD rather than erroring.
    assert_eq!(
        parse(r#""\ud800x""#).expect("lone surrogate accepted"),
        Value::Str("\u{FFFD}x".to_string())
    );
    // Surrogate pairs combine into one scalar.
    assert_eq!(
        parse(r#""\ud83e\udd80""#).expect("surrogate pair accepted"),
        Value::Str("🦀".to_string())
    );
    // The largest exactly representable magnitudes still parse.
    assert_eq!(
        parse("1.7976931348623157e308").expect("f64::MAX parses"),
        Value::Float(f64::MAX)
    );
    assert_eq!(
        parse("9223372036854775807").expect("i64::MAX parses"),
        Value::Int(i64::MAX)
    );
    // Integer overflow beyond i64 falls back to float, not an error.
    assert_eq!(
        parse("9223372036854775808").expect("i64::MAX+1 parses as float"),
        Value::Float(9.223372036854776e18)
    );
}

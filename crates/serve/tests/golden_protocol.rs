//! Golden-file regression for the wire protocol.
//!
//! A fixed request script (`tests/fixtures/golden_requests.jsonl`) is
//! replayed through a real server on an ephemeral port over a fixed
//! 10-basket store; every response line must match
//! `tests/fixtures/golden_responses.jsonl` byte-for-byte. All arithmetic
//! behind the responses is deterministic (integer counts, IEEE f64, our
//! own chi-squared quantiles), so the fixture is stable across runs and
//! platforms.
//!
//! To regenerate after an intentional protocol change:
//! `BMB_UPDATE_GOLDEN=1 cargo test -p bmb-serve --test golden_protocol`

use std::path::PathBuf;
use std::sync::Arc;

use bmb_basket::{IncrementalStore, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::{Client, Server, ServerConfig};

/// The fixed store every golden run queries: 10 baskets over 4 items,
/// split across segments (capacity 4) so the segmented path is exercised.
fn golden_store() -> Arc<IncrementalStore> {
    let store = Arc::new(IncrementalStore::new(
        4,
        StoreConfig {
            segment_capacity: 4,
        },
    ));
    let baskets: [&[u32]; 10] = [
        &[0, 1],
        &[0, 1, 2],
        &[2],
        &[0, 1],
        &[1, 2, 3],
        &[0],
        &[0, 1, 2, 3],
        &[3],
        &[1],
        &[0, 1],
    ];
    for basket in baskets {
        store
            .append_ids(basket.iter().copied())
            .expect("ids in range");
    }
    store
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn responses_match_golden_fixture_byte_for_byte() {
    let requests = std::fs::read_to_string(fixture_path("golden_requests.jsonl"))
        .expect("request fixture present");
    let engine = Arc::new(QueryEngine::new(golden_store(), EngineConfig::default()));
    let server = Server::bind(engine, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr();
    let running = server.spawn();
    let mut client = Client::connect(addr).expect("connect");

    let mut responses = Vec::new();
    for line in requests.lines() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        responses.push(client.request_line(line).expect("response line"));
    }
    running.stop().expect("clean shutdown");
    let actual = responses.join("\n") + "\n";

    let path = fixture_path("golden_responses.jsonl");
    if std::env::var_os("BMB_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("response fixture present (regenerate with BMB_UPDATE_GOLDEN=1)");
    for (i, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(want, got, "response {i} diverged from the golden file");
    }
    assert_eq!(
        expected.lines().count(),
        actual.lines().count(),
        "response count diverged from the golden file"
    );
}

#[test]
fn stats_shape_is_stable_even_if_values_are_not() {
    use bmb_serve::json::{parse, Value};

    let engine = Arc::new(QueryEngine::new(golden_store(), EngineConfig::default()));
    let server = Server::bind(engine, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let running = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    client
        .request(&parse(r#"{"cmd":"chi2","items":[0,1]}"#).expect("literal"))
        .expect("warm one query");
    let stats = client
        .request(&parse(r#"{"cmd":"stats"}"#).expect("literal"))
        .expect("stats");
    // Values vary with timing; the field set and basic sanity must not.
    for key in [
        "requests",
        "errors",
        "connections",
        "ingested_baskets",
        "epoch",
        "ingest_lag",
        "table_hits",
        "table_misses",
        "segment_hits",
        "segment_misses",
        "p50_us",
        "p99_us",
    ] {
        assert!(
            stats.get(key).and_then(Value::as_i64).is_some(),
            "stats missing integer field {key}: {stats}"
        );
    }
    assert!(stats
        .get("table_hit_rate")
        .and_then(Value::as_f64)
        .is_some());
    assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(10));
    assert_eq!(stats.get("ingest_lag").and_then(Value::as_u64), Some(0));
    running.stop().expect("clean shutdown");
}

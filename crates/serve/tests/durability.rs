//! Fault-tolerance integration tests for the serving layer.
//!
//! * A server restarted against the same WAL file resumes at the
//!   recovered epoch and answers queries **byte-identically** to the
//!   pre-crash server (raw response lines compared, so every f64 bit
//!   pattern is pinned). The per-request `"trace"` field is stripped
//!   before comparing: a trace id names a request, not an answer, and
//!   the query occupies a different request slot after the restart.
//! * Admission control: over-limit connections get one clean retryable
//!   error line instead of hanging.
//! * Deadlines: a server whose deadline budget is zero answers queries
//!   with retryable `deadline exceeded` errors, while `ingest` (whose
//!   effect is already durable) still reports what happened.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::wal::DurableStore;
use bmb_basket::{FileStorage, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::json::{parse, Value};
use bmb_serve::{Client, ClientError, RetryClient, RetryPolicy, Server, ServerConfig};

/// A unique scratch path for this test process (no tempfile dep).
fn scratch_wal_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    std::env::temp_dir().join(format!("bmb-serve-durability-{pid}-{n}-{tag}.wal"))
}

/// Opens (or recovers) a WAL-backed server over `path`.
fn wal_server(path: &Path, config: ServerConfig) -> (bmb_serve::server::RunningServer, u64) {
    let storage = FileStorage::open(path).expect("open wal file");
    let (durable, report) = DurableStore::open(
        Box::new(storage),
        8,
        StoreConfig {
            segment_capacity: 3,
        },
    )
    .expect("open durable store");
    let durable = Arc::new(durable);
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(durable.store()),
        EngineConfig::default(),
    ));
    let server = Server::bind(engine, config)
        .expect("bind")
        .with_durable_store(durable);
    (server.spawn(), report.epoch)
}

/// Drops the positional `"trace":"…"` field (always appended last) so
/// byte comparison covers exactly the query answer.
fn strip_trace(line: &str) -> &str {
    match line.find(r#","trace":""#) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[test]
fn server_restart_resumes_at_recovered_epoch() {
    let path = scratch_wal_path("restart");
    let config = ServerConfig::default();

    // First life: ingest through the server, capture a query answer.
    let (running, recovered_epoch) = wal_server(&path, config.clone());
    assert_eq!(recovered_epoch, 0, "fresh wal starts at epoch 0");
    let mut client = Client::connect(running.addr).expect("connect");
    let ingest = client
        .request(
            &parse(r#"{"cmd":"ingest","baskets":[[0,1],[0,1,2],[1,2],[0],[0,1],[2,3]]}"#)
                .expect("req"),
        )
        .expect("ingest");
    assert_eq!(ingest.get("epoch").and_then(Value::as_u64), Some(6));
    let chi2_before = client
        .request_line(r#"{"cmd":"chi2","items":[0,1]}"#)
        .expect("chi2 before restart");
    let stats = client
        .request(&parse(r#"{"cmd":"stats"}"#).expect("req"))
        .expect("stats");
    assert_eq!(stats.get("wal").and_then(Value::as_str), Some("healthy"));
    drop(client);
    running.stop().expect("clean stop");

    // Second life: same WAL file; the store must resume at epoch 6 and
    // answer the same query with the same bytes.
    let (running, recovered_epoch) = wal_server(&path, config);
    assert_eq!(
        recovered_epoch, 6,
        "recovery must replay every acked basket"
    );
    let mut client = Client::connect(running.addr).expect("reconnect");
    let chi2_after = client
        .request_line(r#"{"cmd":"chi2","items":[0,1]}"#)
        .expect("chi2 after restart");
    assert_eq!(
        strip_trace(&chi2_before),
        strip_trace(&chi2_after),
        "restarted server must answer byte-identically at the recovered epoch"
    );
    // And ingest keeps going from where it left off.
    let ingest = client
        .request(&parse(r#"{"cmd":"ingest","baskets":[[1,3]]}"#).expect("req"))
        .expect("ingest after restart");
    assert_eq!(ingest.get("epoch").and_then(Value::as_u64), Some(7));
    drop(client);
    running.stop().expect("clean stop");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn connection_limit_rejects_with_retryable_error() {
    let path = scratch_wal_path("admission");
    let (running, _) = wal_server(
        &path,
        ServerConfig {
            max_connections: 1,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    // First connection is admitted (reading the banner proves a worker
    // picked it up).
    let mut first = Client::connect(running.addr).expect("first connect");
    assert!(first.banner().contains("proto"));
    // Second connection must be shed with one explicit retryable line.
    match Client::connect(running.addr) {
        Err(ClientError::Retryable(message)) => {
            assert!(
                message.contains("connection limit"),
                "unexpected rejection message: {message}"
            );
        }
        Err(other) => panic!("expected a retryable rejection, got {other}"),
        Ok(_) => panic!("expected a retryable rejection, got an admitted connection"),
    }
    // The admitted connection still works.
    let pong = first
        .request(&parse(r#"{"cmd":"ping"}"#).expect("req"))
        .expect("ping on admitted connection");
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
    let snapshot = running.metrics.snapshot();
    assert_eq!(snapshot.rejected_connections, 1);
    assert_eq!(snapshot.overload_errors, 1);
    drop(first);
    running.stop().expect("clean stop");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_deadline_fails_queries_but_not_ingest() {
    let path = scratch_wal_path("deadline");
    let (running, _) = wal_server(
        &path,
        ServerConfig {
            request_deadline: Duration::ZERO,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(running.addr).expect("connect");
    // Queries blow the (impossible) deadline and are marked retryable.
    match client.request(&parse(r#"{"cmd":"ping"}"#).expect("req")) {
        Err(ClientError::Retryable(message)) => {
            assert!(message.contains("deadline"), "got: {message}");
        }
        other => panic!("expected a retryable deadline error, got {other:?}"),
    }
    // Ingest already happened by the time the deadline is checked; its
    // answer must report the durable effect, not a phantom failure.
    let ingest = client
        .request(&parse(r#"{"cmd":"ingest","baskets":[[0,1]]}"#).expect("req"))
        .expect("ingest must report its durable effect");
    assert_eq!(ingest.get("epoch").and_then(Value::as_u64), Some(1));
    let snapshot = running.metrics.snapshot();
    assert!(snapshot.deadline_errors >= 1);
    drop(client);
    running.stop().expect("clean stop");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn retry_client_retries_transient_errors_then_gives_up() {
    let path = scratch_wal_path("retry");
    let (running, _) = wal_server(
        &path,
        ServerConfig {
            request_deadline: Duration::ZERO,
            ..ServerConfig::default()
        },
    );
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 7,
    };
    let mut client = RetryClient::new(running.addr.to_string(), policy);
    match client.request(&parse(r#"{"cmd":"stats"}"#).expect("req")) {
        Err(ClientError::Retryable(message)) => {
            assert!(message.contains("deadline"), "got: {message}");
        }
        other => panic!("expected exhaustion with a retryable error, got {other:?}"),
    }
    // Every attempt reached the server: the retry loop really retried.
    assert_eq!(running.metrics.snapshot().requests, 3);
    running.stop().expect("clean stop");
    let _ = std::fs::remove_file(&path);
}

//! # bmb-serve — the long-running correlation-query server
//!
//! A serving layer over the batch miner: ingest baskets continuously,
//! answer chi-squared / interest / top-k / border queries over TCP with
//! snapshot isolation, and stay bit-identical to a batch run over the
//! same epoch. The stack is std-only — blocking `std::net` sockets, a
//! bounded worker pool on scoped threads, hand-rolled JSON.
//!
//! ```
//! use std::sync::Arc;
//! use bmb_basket::{IncrementalStore, StoreConfig};
//! use bmb_core::{EngineConfig, QueryEngine};
//! use bmb_serve::{Client, Server, ServerConfig};
//! use bmb_serve::json::{parse, Value};
//!
//! let store = Arc::new(IncrementalStore::new(4, StoreConfig::default()));
//! store.append_ids([0, 1]).unwrap();
//! store.append_ids([0, 1, 2]).unwrap();
//! let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
//! let server = Server::bind(engine, ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let running = server.spawn();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let result = client
//!     .request(&parse(r#"{"cmd":"chi2","items":[0,1]}"#).unwrap())
//!     .unwrap();
//! assert_eq!(result.get("support").and_then(Value::as_u64), Some(2));
//! running.stop().unwrap();
//! ```
//!
//! Modules:
//!
//! * [`checkpointer`] — the background checkpointer thread;
//! * [`scrubber`] — the background integrity scrubber and wire repair peer;
//! * [`json`] — the hand-rolled JSON value/parser/serializer;
//! * [`protocol`] — request/response shapes of the wire protocol;
//! * [`server`] — accept loop, worker pool, graceful shutdown;
//! * [`client`] — a small blocking client;
//! * [`metrics`] — request counters and latency percentiles.

#![warn(missing_docs)]

/// The background checkpointer thread (directory-mode stores).
pub mod checkpointer;
/// A small blocking protocol client.
pub mod client;
/// Hand-rolled JSON value, parser, and serializer.
pub mod json;
/// Server counters and latency percentiles.
pub mod metrics;
/// The line-delimited JSON wire protocol.
pub mod protocol;
/// The background integrity scrubber and the wire repair peer.
pub mod scrubber;
/// The TCP server: accept loop, worker pool, shutdown.
pub mod server;

pub use checkpointer::{Checkpointer, CheckpointerConfig};
pub use client::{Client, ClientError, RetryClient, RetryPolicy};
pub use metrics::{ErrorCategory, MetricsSnapshot, ServerMetrics};
pub use protocol::{parse_request, Envelope, Request, HELLO};
pub use scrubber::{Scrubber, ScrubberConfig, WirePeer};
pub use server::{
    events_value, exposition, scrub_report_value, slow_exemplars_value, EngineService,
    RunningServer, Server, ServerConfig, Service, ServiceCtx, ServiceFailure, ShutdownHandle,
};

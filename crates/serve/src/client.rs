//! A small blocking client for the line-delimited JSON protocol.
//!
//! Used by `bmb query`, the load generator, and the integration tests.
//! One request at a time: send a line, read a line. The server's banner
//! is consumed (and checked) at connect time.
//!
//! [`RetryClient`] layers reconnection and bounded exponential-backoff
//! retries on top: transient failures (the server's `"retryable":true`
//! errors, broken connections) are retried — but only for idempotent
//! commands. An `ingest` whose connection died mid-flight may or may not
//! have been applied, so it is never retried automatically.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{parse, Value};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The banner line the server sent on connect.
    banner: String,
}

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something that is not a JSON object line.
    Protocol(String),
    /// The server answered `"ok": false`; the payload is its message.
    Server(String),
    /// The server answered `"ok": false` with `"retryable": true` —
    /// a transient condition (overload, deadline); trying again later
    /// may succeed.
    Retryable(String),
    /// The server answered `"ok": false` with `"fenced": true`: the
    /// request was stamped with a generation below the node's own.
    /// Permanent for this client's view — the caller must re-learn the
    /// cluster topology (adopt `generation`) before trying again.
    Fenced {
        /// The rejecting node's generation.
        generation: u64,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Retryable(m) => write!(f, "server busy (retryable): {m}"),
            ClientError::Fenced {
                generation,
                message,
            } => write!(f, "fenced at generation {generation}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects and consumes the server banner.
    ///
    /// # Errors
    ///
    /// Fails on connection refusal or a malformed banner.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Like [`Client::connect`] with a socket-level timeout applied to
    /// reads and writes.
    ///
    /// # Errors
    ///
    /// Fails on connection refusal or a malformed banner.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> Result<Client, ClientError> {
        // Requests are single small writes; disable Nagle so they go out
        // immediately instead of waiting on the previous response's ACK.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            banner: String::new(),
        };
        let banner = client.read_line()?;
        let value =
            parse(&banner).map_err(|e| ClientError::Protocol(format!("bad banner: {e}")))?;
        if value.get("proto").and_then(Value::as_str).is_none() {
            // Admission control sheds load by sending one error line
            // instead of the banner; surface it as retryable so callers
            // can back off and reconnect.
            if value.get("ok").and_then(Value::as_bool) == Some(false) {
                let message = value
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("connection rejected")
                    .to_string();
                if value.get("retryable").and_then(Value::as_bool) == Some(true) {
                    return Err(ClientError::Retryable(message));
                }
                return Err(ClientError::Server(message));
            }
            return Err(ClientError::Protocol(format!(
                "banner missing 'proto': {banner}"
            )));
        }
        client.banner = banner;
        Ok(client)
    }

    /// The banner line the server greeted with.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Sends one raw line and returns the raw response line — the
    /// byte-level interface the golden-file tests pin down.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a closed connection.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends a [`Value`] request and decodes the response, unwrapping the
    /// protocol envelope: returns the `"result"` payload of an `"ok"`
    /// response, [`ClientError::Server`] otherwise.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, non-JSON responses, or server errors.
    pub fn request(&mut self, request: &Value) -> Result<Value, ClientError> {
        let line = self.request_line(&request.to_string())?;
        let value =
            parse(&line).map_err(|e| ClientError::Protocol(format!("bad response: {e}")))?;
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(value.get("result").cloned().unwrap_or(Value::Null)),
            Some(false) => {
                let message = value
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string();
                if value.get("fenced").and_then(Value::as_bool) == Some(true) {
                    Err(ClientError::Fenced {
                        generation: value.get("gen").and_then(Value::as_u64).unwrap_or(0),
                        message,
                    })
                } else if value.get("retryable").and_then(Value::as_bool) == Some(true) {
                    Err(ClientError::Retryable(message))
                } else {
                    Err(ClientError::Server(message))
                }
            }
            None => Err(ClientError::Protocol(format!(
                "response missing 'ok': {line}"
            ))),
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed connection".to_string(),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// How [`RetryClient`] paces its retries: capped exponential backoff
/// with deterministic jitter (a seeded xorshift — no clock, no RNG
/// dependency, reproducible in tests).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total tries per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep (applied before jitter).
    pub max_backoff: Duration,
    /// Seed for the jitter sequence; any value works (0 is remapped).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based), jittered: the
    /// capped exponential backoff plus up to 50% extra, so stampeding
    /// clients decorrelate.
    fn backoff(&self, retry: u32, jitter_state: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_backoff);
        let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
        let jitter = xorshift64(jitter_state) % (nanos / 2 + 1);
        capped + Duration::from_nanos(jitter)
    }
}

/// One step of the xorshift64 PRNG — deterministic jitter with no
/// dependencies. `state` must start non-zero ([`RetryClient::new`]
/// remaps a zero seed).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Commands that are safe to send twice. Queries are pure reads, as are
/// the cluster-internal `support_vec`, `replicate_pull`, and
/// `integrity` (digests); `promote` and `demote` bump a monotone
/// generation, and `scrub` converges (re-verifying and re-repairing the
/// same artifacts is harmless), so repeating any of them is safe.
/// `ingest` mutates and `shutdown` is one-way-destructive, so a client
/// that cannot tell whether they landed must not repeat them.
fn is_idempotent(request: &Value) -> bool {
    matches!(
        request.get("cmd").and_then(Value::as_str),
        Some(
            "ping"
                | "stats"
                | "chi2"
                | "chi2_batch"
                | "interest"
                | "topk"
                | "border"
                | "support_vec"
                | "replicate_pull"
                | "integrity"
                | "scrub"
                | "trace"
                | "events"
                | "metrics"
                | "promote"
                | "demote"
        )
    )
}

/// A self-healing client: reconnects after transport failures and
/// retries transient errors with [`RetryPolicy`] backoff.
///
/// Only idempotent commands are retried after the request may have
/// reached the server; connection-establishment failures (nothing sent
/// yet) are retried for every command.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    timeout: Option<Duration>,
    jitter_state: u64,
    conn: Option<Client>,
}

impl RetryClient {
    /// Creates a disconnected retry client; the first request connects.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        let seed = if policy.jitter_seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            policy.jitter_seed
        };
        RetryClient {
            addr: addr.into(),
            policy,
            timeout: None,
            jitter_state: seed,
            conn: None,
        }
    }

    /// Applies a socket read/write timeout to every future connection
    /// (zero means no timeout).
    pub fn with_timeout(mut self, timeout: Duration) -> RetryClient {
        self.timeout = (!timeout.is_zero()).then_some(timeout);
        self
    }

    /// Sends `request`, transparently reconnecting and retrying
    /// transient failures per the policy.
    ///
    /// # Errors
    ///
    /// Returns the final error once attempts are exhausted, or
    /// immediately for permanent failures ([`ClientError::Server`],
    /// [`ClientError::Protocol`]) and for non-idempotent requests whose
    /// outcome is unknown.
    pub fn request(&mut self, request: &Value) -> Result<Value, ClientError> {
        let attempts = self.policy.max_attempts.max(1);
        let idempotent = is_idempotent(request);
        let mut retries = 0u32;
        loop {
            // (Re)connect if needed. A failed connect never sent the
            // request, so it is retryable for every command.
            if self.conn.is_none() {
                match self.connect() {
                    Ok(client) => self.conn = Some(client),
                    Err(e) if retryable_transport(&e) && retries + 1 < attempts => {
                        self.sleep_before_retry(&mut retries);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            let conn = match self.conn.as_mut() {
                Some(conn) => conn,
                None => continue,
            };
            match conn.request(request) {
                Ok(value) => return Ok(value),
                Err(ClientError::Retryable(m)) => {
                    // The server explicitly said "try again" — it did
                    // not execute the request, so retrying is safe even
                    // for non-idempotent commands; keep the connection.
                    if retries + 1 < attempts {
                        self.sleep_before_retry(&mut retries);
                        continue;
                    }
                    return Err(ClientError::Retryable(m));
                }
                Err(e) if connection_broken(&e) => {
                    // The request may or may not have been executed:
                    // only idempotent commands may be repeated.
                    self.conn = None;
                    if idempotent && retries + 1 < attempts {
                        self.sleep_before_retry(&mut retries);
                        continue;
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drops the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn connect(&self) -> Result<Client, ClientError> {
        match self.timeout {
            Some(t) => Client::connect_timeout(&*self.addr, t),
            None => Client::connect(&*self.addr),
        }
    }

    fn sleep_before_retry(&mut self, retries: &mut u32) {
        let pause = self.policy.backoff(*retries, &mut self.jitter_state);
        *retries += 1;
        std::thread::sleep(pause);
    }
}

/// Whether a connect-time failure is worth another attempt: transport
/// errors and explicit server `retryable` rejections are; protocol
/// violations and permanent server errors are not.
fn retryable_transport(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_) | ClientError::Retryable(_))
}

/// Whether an error means the connection itself is dead (socket error,
/// or the server hung up mid-exchange).
fn connection_broken(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_))
        || matches!(e, ClientError::Protocol(m) if m.contains("closed connection"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A fenced rejection is permanent for this client's view: it must
    /// surface immediately as [`ClientError::Fenced`] without burning a
    /// single retry — the caller has to re-learn the topology first, so
    /// backing off and resending the same stale generation is pure
    /// waste.
    #[test]
    fn fenced_rejection_is_never_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let requests_served = Arc::new(AtomicUsize::new(0));
        let served = Arc::clone(&requests_served);
        let server = std::thread::spawn(move || {
            use std::io::{BufRead, BufReader, Write};
            // Serve until the client side closes; every request on every
            // connection is answered with the same fenced rejection.
            while let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                writeln!(writer, r#"{{"proto":"bmb/1","ok":true}}"#).expect("banner");
                let mut line = String::new();
                while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                    served.fetch_add(1, Ordering::SeqCst);
                    writeln!(
                        writer,
                        r#"{{"ok":false,"error":"stale generation","fenced":true,"gen":7}}"#
                    )
                    .expect("fenced line");
                    line.clear();
                }
                break; // one connection is all a correct client needs
            }
        });

        let mut client = RetryClient::new(
            addr.to_string(),
            RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        // `replicate_pull` is idempotent, so only the fenced
        // classification — not the idempotency gate — can stop retries.
        let request = Value::object()
            .with("cmd", Value::Str("replicate_pull".to_string()))
            .with("after_epoch", Value::Int(0))
            .with("gen", Value::Int(1));
        match client.request(&request) {
            Err(ClientError::Fenced {
                generation,
                message,
            }) => {
                assert_eq!(generation, 7, "the rejecting node's generation surfaces");
                assert_eq!(message, "stale generation");
            }
            other => panic!("expected Fenced, got {other:?}"),
        }
        assert_eq!(
            requests_served.load(Ordering::SeqCst),
            1,
            "exactly one attempt: fencing must not burn the retry budget"
        );
        client.disconnect();
        drop(client);
        server.join().expect("fake server thread");
    }

    #[test]
    fn idempotency_classification() {
        for cmd in [
            "ping",
            "stats",
            "chi2",
            "chi2_batch",
            "interest",
            "topk",
            "border",
            "support_vec",
            "replicate_pull",
            "integrity",
            "scrub",
            "promote",
            "demote",
        ] {
            let req = Value::object().with("cmd", Value::Str(cmd.to_string()));
            assert!(is_idempotent(&req), "{cmd} should be idempotent");
        }
        for cmd in ["ingest", "shutdown"] {
            let req = Value::object().with("cmd", Value::Str(cmd.to_string()));
            assert!(!is_idempotent(&req), "{cmd} must not be retried");
        }
        assert!(!is_idempotent(&Value::object()));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 7,
        };
        let mut state = 7u64;
        let b0 = policy.backoff(0, &mut state);
        let b3 = policy.backoff(3, &mut state);
        let b7 = policy.backoff(7, &mut state);
        // Base with up to 50% jitter.
        assert!(b0 >= Duration::from_millis(10) && b0 <= Duration::from_millis(15));
        assert!(b3 >= Duration::from_millis(80) && b3 <= Duration::from_millis(120));
        // Capped at max + 50% jitter.
        assert!(b7 >= Duration::from_millis(100) && b7 <= Duration::from_millis(150));
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let policy = RetryPolicy::default();
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(policy.backoff(2, &mut a), policy.backoff(2, &mut b));
        assert_eq!(a, b);
    }

    /// The whole backoff schedule — not just one step — is a pure
    /// function of the seed, and every jittered sleep stays within
    /// `[capped, 1.5 * capped]`.
    #[test]
    fn full_backoff_schedule_is_exactly_reproducible() {
        let policy = RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(400),
            jitter_seed: 0xDEAD_BEEF,
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut state = seed;
            (0..12).map(|r| policy.backoff(r, &mut state)).collect()
        };
        let first = schedule(policy.jitter_seed);
        let second = schedule(policy.jitter_seed);
        assert_eq!(first, second, "same seed, same schedule, to the nanosecond");
        let other = schedule(policy.jitter_seed + 1);
        assert_ne!(first, other, "a different seed decorrelates the jitter");
        for (r, &pause) in first.iter().enumerate() {
            let capped = policy
                .base_backoff
                .saturating_mul(1u32.checked_shl(r as u32).unwrap_or(u32::MAX))
                .min(policy.max_backoff);
            assert!(
                pause >= capped,
                "retry {r}: jitter only adds, never subtracts"
            );
            assert!(
                pause <= capped + capped.div_f64(2.0) + Duration::from_nanos(1),
                "retry {r}: jitter bounded by 50% of the capped backoff"
            );
        }
    }

    /// Past the point where the exponential overflows the shift, the
    /// sleep saturates at the cap instead of wrapping back down.
    #[test]
    fn huge_retry_index_saturates_at_cap() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(250),
            jitter_seed: 3,
        };
        let mut state = 3u64;
        for retry in [31u32, 32, 40, 200, u32::MAX] {
            let pause = policy.backoff(retry, &mut state);
            assert!(pause >= Duration::from_millis(250), "retry {retry} at cap");
            assert!(
                pause <= Duration::from_millis(375),
                "retry {retry} jitter cap"
            );
        }
    }

    /// A zero jitter seed would freeze the xorshift at zero forever;
    /// the constructor remaps it to a fixed non-zero state.
    #[test]
    fn zero_seed_is_remapped_to_a_live_state() {
        let client = RetryClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                jitter_seed: 0,
                ..RetryPolicy::default()
            },
        );
        assert_ne!(client.jitter_state, 0);
        let mut state = client.jitter_state;
        assert_ne!(xorshift64(&mut state), 0, "the jitter stream advances");
    }
}

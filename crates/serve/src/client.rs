//! A small blocking client for the line-delimited JSON protocol.
//!
//! Used by `bmb query`, the load generator, and the integration tests.
//! One request at a time: send a line, read a line. The server's banner
//! is consumed (and checked) at connect time.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{parse, Value};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The banner line the server sent on connect.
    banner: String,
}

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something that is not a JSON object line.
    Protocol(String),
    /// The server answered `"ok": false`; the payload is its message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects and consumes the server banner.
    ///
    /// # Errors
    ///
    /// Fails on connection refusal or a malformed banner.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Like [`Client::connect`] with a socket-level timeout applied to
    /// reads and writes.
    ///
    /// # Errors
    ///
    /// Fails on connection refusal or a malformed banner.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> Result<Client, ClientError> {
        // Requests are single small writes; disable Nagle so they go out
        // immediately instead of waiting on the previous response's ACK.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            banner: String::new(),
        };
        let banner = client.read_line()?;
        let value =
            parse(&banner).map_err(|e| ClientError::Protocol(format!("bad banner: {e}")))?;
        if value.get("proto").and_then(Value::as_str).is_none() {
            return Err(ClientError::Protocol(format!(
                "banner missing 'proto': {banner}"
            )));
        }
        client.banner = banner;
        Ok(client)
    }

    /// The banner line the server greeted with.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Sends one raw line and returns the raw response line — the
    /// byte-level interface the golden-file tests pin down.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a closed connection.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends a [`Value`] request and decodes the response, unwrapping the
    /// protocol envelope: returns the `"result"` payload of an `"ok"`
    /// response, [`ClientError::Server`] otherwise.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, non-JSON responses, or server errors.
    pub fn request(&mut self, request: &Value) -> Result<Value, ClientError> {
        let line = self.request_line(&request.to_string())?;
        let value =
            parse(&line).map_err(|e| ClientError::Protocol(format!("bad response: {e}")))?;
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(value.get("result").cloned().unwrap_or(Value::Null)),
            Some(false) => Err(ClientError::Server(
                value
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol(format!(
                "response missing 'ok': {line}"
            ))),
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed connection".to_string(),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

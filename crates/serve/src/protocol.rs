//! The line-delimited JSON wire protocol.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. Requests carry a `"cmd"` discriminator and an
//! optional client-chosen `"id"` that is echoed back verbatim, so clients
//! may pipeline. Responses always carry `"ok"` — `true` with a payload or
//! `false` with an `"error"` string. Itemsets travel as arrays of item
//! ids; cells as presence bitmasks in sorted-itemset order.
//!
//! The protocol is versioned by the [`HELLO`] banner the server sends on
//! connect; golden-file fixtures under `tests/fixtures/` pin the exact
//! bytes of every response shape.

use bmb_basket::Itemset;
use bmb_core::{Chi2Answer, EngineError, InterestAnswer};
use bmb_core::{MiningResult, PairCorrelation};
use bmb_obs::{SpanRecord, TraceId};

use crate::json::{parse, Value};

/// Protocol banner sent as the first line of every connection.
pub const HELLO: &str = r#"{"proto":"bmb/1","ok":true}"#;

/// One decoded request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Chi-squared verdict for one itemset.
    Chi2 {
        /// Item ids (any order; canonicalized server-side).
        items: Vec<u32>,
    },
    /// Batched chi-squared over one snapshot: all answers share an epoch.
    Chi2Batch {
        /// The itemsets to test.
        itemsets: Vec<Vec<u32>>,
    },
    /// Interest of one contingency-table cell.
    Interest {
        /// Item ids.
        items: Vec<u32>,
        /// Cell mask (bit `j` = `j`-th smallest item present).
        cell: u32,
    },
    /// The `k` most correlated pairs.
    TopK {
        /// How many pairs.
        k: usize,
    },
    /// The border of minimal correlated itemsets (runs the batch miner).
    Border {
        /// Cell support threshold as a fraction of baskets (default 1%).
        support: Option<f64>,
        /// Fraction of cells that must clear the threshold (default 0.3).
        support_fraction: Option<f64>,
        /// Itemset-size cap (default none).
        max_level: Option<usize>,
    },
    /// Appends baskets; answers with the new epoch.
    Ingest {
        /// The baskets, as arrays of item ids.
        baskets: Vec<Vec<u32>>,
    },
    /// Admin: write a durable checkpoint now (checkpointed servers only).
    Checkpoint,
    /// Shard-internal: raw supports for a list of itemsets, all pinned
    /// to one snapshot. The coordinator's scatter primitive; the empty
    /// itemset answers the basket count.
    SupportVec {
        /// The itemsets (typically a query's full subset lattice).
        itemsets: Vec<Vec<u32>>,
    },
    /// Replication: baskets after an epoch, read from the shard's
    /// sealed WAL segments (or a snapshot once the WAL is reclaimed).
    ReplicatePull {
        /// Ship baskets with epochs strictly greater than this.
        after_epoch: u64,
        /// At most this many baskets per pull.
        max_baskets: usize,
    },
    /// Anti-entropy: logical per-segment digests of the node's sealed
    /// segments, so a coordinator can compare primary and follower
    /// content without shipping baskets. Answered from the in-memory
    /// snapshot — works on every node, durable or not.
    Integrity {
        /// Skip segments wholly covered by this epoch (default 0).
        from_epoch: u64,
    },
    /// Admin: run one full scrub pass over the durable artifacts now
    /// (checkpointed servers only), quarantining and repairing at-rest
    /// damage. See `bmb-basket`'s `scrub` module for the decision tree.
    Scrub {
        /// Replica address to re-fetch damaged segment ranges from;
        /// overrides the server's configured repair peer for this pass.
        peer: Option<String>,
    },
    /// Promote a follower to serve reads (follower processes only).
    Promote,
    /// Demote a stale primary back to a catching-up follower of
    /// `primary` (cluster node processes only). The request's envelope
    /// generation is the floor the node's own generation is raised to.
    Demote {
        /// Address of the node to tail (the promoted replacement).
        primary: String,
    },
    /// Server and cache counters.
    Stats,
    /// The full Prometheus text exposition, as a string payload.
    Metrics,
    /// Completed spans for one trace id from this node's span ring
    /// (the coordinator fans the query out and merges the tree).
    Trace {
        /// The trace id being reconstructed (raw, nonzero).
        trace: u64,
    },
    /// The node's event timeline (promotions, demotions, fence
    /// rejections, WAL degradations), from the persisted ledger when
    /// one is attached, else the in-memory ring.
    Events {
        /// Only events at or after this Unix-microsecond timestamp.
        since_us: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: drain in-flight queries, then exit.
    Shutdown,
}

impl Request {
    /// The wire command name, used as the `cmd=` label on the server's
    /// per-command latency histograms.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Chi2 { .. } => "chi2",
            Request::Chi2Batch { .. } => "chi2_batch",
            Request::Interest { .. } => "interest",
            Request::TopK { .. } => "topk",
            Request::Border { .. } => "border",
            Request::Ingest { .. } => "ingest",
            Request::Checkpoint => "checkpoint",
            Request::SupportVec { .. } => "support_vec",
            Request::ReplicatePull { .. } => "replicate_pull",
            Request::Integrity { .. } => "integrity",
            Request::Scrub { .. } => "scrub",
            Request::Promote => "promote",
            Request::Demote { .. } => "demote",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Trace { .. } => "trace",
            Request::Events { .. } => "events",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request plus its optional client correlation id.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Echoed back in the response as `"id"`.
    pub id: Option<i64>,
    /// The sender's fencing generation (`"gen"`), when stamped. A
    /// cluster node rejects requests fenced below its own generation;
    /// `promote`/`demote` instead treat it as the floor to bump past.
    pub generation: Option<u64>,
    /// Inbound trace context (`"trace"`, 16 lowercase hex digits): the
    /// server *adopts* this id instead of minting one, so one logical
    /// request keeps a single trace id across every wire hop.
    /// Malformed values are rejected at parse time, never silently
    /// replaced. (For the `trace` command itself the field is the
    /// query target, not context — it stays `None` here.)
    pub trace: Option<TraceId>,
    /// Parent span id (`"pspan"`, same wire format): the sender's span
    /// this request is a child of; 0 when absent. Recorded spans on
    /// this node parent under it in the reconstructed tree.
    pub parent_span: u64,
    /// The decoded command.
    pub request: Request,
}

/// Reads a `[[1,2],[3]]`-shaped array of itemsets.
fn parse_id_lists(value: Option<&Value>, what: &str) -> Result<Vec<Vec<u32>>, String> {
    let outer = value
        .and_then(Value::as_array)
        .ok_or_else(|| format!("'{what}' must be an array of item-id arrays"))?;
    outer
        .iter()
        .map(|inner| parse_ids(Some(inner), what))
        .collect()
}

/// Reads a `[1,2,3]`-shaped array of item ids.
fn parse_ids(value: Option<&Value>, what: &str) -> Result<Vec<u32>, String> {
    let items = value
        .and_then(Value::as_array)
        .ok_or_else(|| format!("'{what}' must be an array of item ids"))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|id| u32::try_from(id).ok())
                .ok_or_else(|| format!("'{what}' entries must be item ids (u32)"))
        })
        .collect()
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing or
/// unknown `"cmd"`, or ill-typed fields.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let value = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = value.get("id").and_then(Value::as_i64);
    let generation = value.get("gen").and_then(Value::as_u64);
    let cmd = value
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing 'cmd'".to_string())?;
    // Trace context: a present-but-malformed id is a parse error (the
    // client asked for correlation and would silently lose it), never
    // silently replaced with a minted one. The `trace` *command* reads
    // the same field as its query target instead.
    let (trace, parent_span) = if cmd == "trace" {
        (None, 0)
    } else {
        let trace = match value.get("trace") {
            None => None,
            Some(raw) => Some(parse_trace_id(raw, "trace")?),
        };
        let parent_span = match value.get("pspan") {
            None => 0,
            Some(raw) => parse_trace_id(raw, "pspan")?.as_u64(),
        };
        (trace, parent_span)
    };
    let request = match cmd {
        "chi2" => Request::Chi2 {
            items: parse_ids(value.get("items"), "items")?,
        },
        "chi2_batch" => Request::Chi2Batch {
            itemsets: parse_id_lists(value.get("itemsets"), "itemsets")?,
        },
        "interest" => Request::Interest {
            items: parse_ids(value.get("items"), "items")?,
            cell: value
                .get("cell")
                .and_then(Value::as_u64)
                .and_then(|c| u32::try_from(c).ok())
                .ok_or_else(|| "'cell' must be a cell mask (u32)".to_string())?,
        },
        "topk" => Request::TopK {
            k: value
                .get("k")
                .and_then(Value::as_u64)
                .map(|k| k as usize)
                .ok_or_else(|| "'k' must be a positive integer".to_string())?,
        },
        "border" => Request::Border {
            support: value.get("support").and_then(Value::as_f64),
            support_fraction: value.get("support_fraction").and_then(Value::as_f64),
            max_level: value
                .get("max_level")
                .and_then(Value::as_u64)
                .map(|m| m as usize),
        },
        "ingest" => Request::Ingest {
            baskets: parse_id_lists(value.get("baskets"), "baskets")?,
        },
        "checkpoint" => Request::Checkpoint,
        "support_vec" => Request::SupportVec {
            itemsets: parse_id_lists(value.get("itemsets"), "itemsets")?,
        },
        "replicate_pull" => Request::ReplicatePull {
            after_epoch: value
                .get("after_epoch")
                .and_then(Value::as_u64)
                .ok_or_else(|| "'after_epoch' must be a non-negative integer".to_string())?,
            max_baskets: value
                .get("max_baskets")
                .and_then(Value::as_u64)
                .map(|m| m as usize)
                .unwrap_or(8192),
        },
        "integrity" => Request::Integrity {
            from_epoch: match value.get("from_epoch") {
                None => 0,
                Some(raw) => raw
                    .as_u64()
                    .ok_or_else(|| "'from_epoch' must be a non-negative integer".to_string())?,
            },
        },
        "scrub" => Request::Scrub {
            peer: match value.get("peer") {
                None => None,
                Some(raw) => Some(
                    raw.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "'peer' must be an address string".to_string())?,
                ),
            },
        },
        "promote" => Request::Promote,
        "demote" => Request::Demote {
            primary: value
                .get("primary")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| "'primary' must be an address string".to_string())?,
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "trace" => Request::Trace {
            trace: value
                .get("trace")
                .ok_or_else(|| "missing 'trace' (the id to reconstruct)".to_string())
                .and_then(|raw| parse_trace_id(raw, "trace"))?
                .as_u64(),
        },
        "events" => Request::Events {
            since_us: value.get("since_us").and_then(Value::as_u64),
        },
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown cmd '{other}'")),
    };
    Ok(Envelope {
        id,
        generation,
        trace,
        parent_span,
        request,
    })
}

/// Validates one wire trace/span id field: a string of exactly 16
/// lowercase hex digits, nonzero.
fn parse_trace_id(raw: &Value, what: &str) -> Result<TraceId, String> {
    raw.as_str()
        .and_then(TraceId::parse_hex)
        .ok_or_else(|| format!("invalid '{what}': expected 16 lowercase hex digits (nonzero)"))
}

/// Starts a success response, echoing `id` when present.
pub fn ok_response(id: Option<i64>) -> Value {
    let mut v = Value::object();
    if let Some(id) = id {
        v = v.with("id", Value::Int(id));
    }
    v.with("ok", Value::Bool(true))
}

/// A failure response with the echoed `id` and an error message.
pub fn error_response(id: Option<i64>, message: &str) -> Value {
    let mut v = Value::object();
    if let Some(id) = id {
        v = v.with("id", Value::Int(id));
    }
    v.with("ok", Value::Bool(false))
        .with("error", Value::Str(message.to_string()))
}

/// A failure response additionally marked `"retryable":true` — the
/// failure is transient (overload, deadline) and the client may safely
/// try again. Permanent failures use [`error_response`] and carry no
/// `retryable` field at all.
pub fn retryable_error_response(id: Option<i64>, message: &str) -> Value {
    error_response(id, message).with("retryable", Value::Bool(true))
}

/// A failure response marked `"fenced":true` carrying the server's
/// generation: the request was stamped with a generation below the
/// node's own, so the sender is acting on a stale view of the cluster
/// and must re-learn the topology rather than retry. Permanent — never
/// marked retryable.
pub fn fenced_error_response(id: Option<i64>, generation: u64, message: &str) -> Value {
    error_response(id, message)
        .with("fenced", Value::Bool(true))
        .with("gen", Value::Int(generation as i64))
}

/// One completed span for a `trace` response. The `parent` field is
/// omitted for roots (parent id 0), and `shard` for unsharded nodes.
pub fn span_value(span: &SpanRecord) -> Value {
    let mut v = Value::object()
        .with("name", Value::Str(span.name.clone()))
        .with("span", Value::Str(format!("{:016x}", span.span)));
    if span.parent != 0 {
        v = v.with("parent", Value::Str(format!("{:016x}", span.parent)));
    }
    v = v
        .with("start_us", Value::Int(span.start_unix_us as i64))
        .with("duration_us", Value::Int(span.duration_us as i64))
        .with("node", Value::Str(span.node.clone()));
    if span.shard >= 0 {
        v = v.with("shard", Value::Int(span.shard));
    }
    v.with("outcome", Value::Str(span.outcome.clone()))
}

/// The payload of a `trace` response: every known span of one trace,
/// sorted by start time (ties by span id) so the tree reads in
/// execution order.
pub fn trace_value(trace: u64, mut spans: Vec<SpanRecord>) -> Value {
    spans.sort_by_key(|s| (s.start_unix_us, s.span));
    spans.dedup();
    Value::object()
        .with("trace", Value::Str(TraceId::from_u64(trace).to_string()))
        .with("count", Value::Int(spans.len() as i64))
        .with(
            "spans",
            Value::Array(spans.iter().map(span_value).collect()),
        )
}

/// An itemset as a JSON array of ids.
pub fn itemset_value(set: &Itemset) -> Value {
    Value::Array(set.items().iter().map(|i| Value::Int(i.0 as i64)).collect())
}

/// The payload fields of one chi-squared answer (shared by `chi2` and
/// `chi2_batch` entries).
pub fn chi2_value(answer: &Chi2Answer) -> Value {
    Value::object()
        .with("itemset", itemset_value(&answer.itemset))
        .with("epoch", Value::Int(answer.epoch as i64))
        .with("support", Value::Int(answer.support as i64))
        .with("statistic", Value::float(answer.outcome.statistic))
        .with("cutoff", Value::float(answer.outcome.cutoff))
        .with("significant", Value::Bool(answer.outcome.significant))
        .with("ln_p_value", Value::float(answer.outcome.ln_p_value))
}

/// The payload fields of one interest answer.
pub fn interest_value(answer: &InterestAnswer) -> Value {
    Value::object()
        .with("itemset", itemset_value(&answer.itemset))
        .with("cell", Value::Int(answer.cell as i64))
        .with("epoch", Value::Int(answer.epoch as i64))
        .with("observed", Value::Int(answer.observed as i64))
        .with("expected", Value::float(answer.expected))
        .with("interest", Value::float(answer.interest))
}

/// One ranked pair row of a `topk` response.
pub fn pair_value(pair: &PairCorrelation) -> Value {
    Value::object()
        .with("a", Value::Int(pair.a.0 as i64))
        .with("b", Value::Int(pair.b.0 as i64))
        .with("statistic", Value::float(pair.chi2.statistic))
        .with("significant", Value::Bool(pair.chi2.significant))
        .with(
            "interests",
            Value::Array(pair.interests.iter().map(|&i| Value::float(i)).collect()),
        )
}

/// The payload of a `border` response: the minimal correlated itemsets
/// plus the thresholds the miner resolved.
pub fn border_value(result: &MiningResult, epoch: u64) -> Value {
    Value::object()
        .with("epoch", Value::Int(epoch as i64))
        .with("support_count", Value::Int(result.support_count as i64))
        .with("chi2_cutoff", Value::float(result.chi2_cutoff))
        .with(
            "significant",
            Value::Array(
                result
                    .significant
                    .iter()
                    .map(|rule| {
                        Value::object()
                            .with("itemset", itemset_value(&rule.itemset))
                            .with("statistic", Value::float(rule.chi2.statistic))
                            .with("support_cells", Value::Int(rule.support_cells as i64))
                    })
                    .collect(),
            ),
        )
}

/// Renders an engine error for the wire.
pub fn engine_error_message(err: &EngineError) -> String {
    err.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases: Vec<(&str, Request)> = vec![
            (
                r#"{"id":1,"cmd":"chi2","items":[7,2]}"#,
                Request::Chi2 { items: vec![7, 2] },
            ),
            (
                r#"{"cmd":"chi2_batch","itemsets":[[0,1],[2]]}"#,
                Request::Chi2Batch {
                    itemsets: vec![vec![0, 1], vec![2]],
                },
            ),
            (
                r#"{"cmd":"interest","items":[2,7],"cell":3}"#,
                Request::Interest {
                    items: vec![2, 7],
                    cell: 3,
                },
            ),
            (r#"{"cmd":"topk","k":5}"#, Request::TopK { k: 5 }),
            (
                r#"{"cmd":"border","support":0.25,"max_level":3}"#,
                Request::Border {
                    support: Some(0.25),
                    support_fraction: None,
                    max_level: Some(3),
                },
            ),
            (
                r#"{"cmd":"ingest","baskets":[[0,1],[2]]}"#,
                Request::Ingest {
                    baskets: vec![vec![0, 1], vec![2]],
                },
            ),
            (r#"{"cmd":"checkpoint"}"#, Request::Checkpoint),
            (
                r#"{"cmd":"support_vec","itemsets":[[],[2],[2,7]]}"#,
                Request::SupportVec {
                    itemsets: vec![vec![], vec![2], vec![2, 7]],
                },
            ),
            (
                r#"{"cmd":"replicate_pull","after_epoch":17,"max_baskets":100}"#,
                Request::ReplicatePull {
                    after_epoch: 17,
                    max_baskets: 100,
                },
            ),
            (
                r#"{"cmd":"replicate_pull","after_epoch":0}"#,
                Request::ReplicatePull {
                    after_epoch: 0,
                    max_baskets: 8192,
                },
            ),
            (
                r#"{"cmd":"integrity","from_epoch":8}"#,
                Request::Integrity { from_epoch: 8 },
            ),
            (
                r#"{"cmd":"integrity"}"#,
                Request::Integrity { from_epoch: 0 },
            ),
            (
                r#"{"cmd":"scrub","peer":"127.0.0.1:9001"}"#,
                Request::Scrub {
                    peer: Some("127.0.0.1:9001".to_string()),
                },
            ),
            (r#"{"cmd":"scrub"}"#, Request::Scrub { peer: None }),
            (r#"{"cmd":"promote"}"#, Request::Promote),
            (
                r#"{"cmd":"demote","primary":"127.0.0.1:9001","gen":7}"#,
                Request::Demote {
                    primary: "127.0.0.1:9001".to_string(),
                },
            ),
            (r#"{"cmd":"stats"}"#, Request::Stats),
            (
                r#"{"cmd":"trace","trace":"00000000000000ab"}"#,
                Request::Trace { trace: 0xab },
            ),
            (
                r#"{"cmd":"events","since_us":1700}"#,
                Request::Events {
                    since_us: Some(1700),
                },
            ),
            (r#"{"cmd":"events"}"#, Request::Events { since_us: None }),
            (r#"{"cmd":"ping"}"#, Request::Ping),
            (r#"{"cmd":"shutdown"}"#, Request::Shutdown),
        ];
        for (line, expect) in cases {
            let envelope = parse_request(line).unwrap();
            assert_eq!(envelope.request, expect, "for {line}");
        }
        assert_eq!(
            parse_request(r#"{"id":1,"cmd":"ping"}"#).unwrap().id,
            Some(1)
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"cmd":"warp"}"#,
            r#"{"items":[1]}"#,
            r#"{"cmd":"chi2","items":[-1]}"#,
            r#"{"cmd":"chi2","items":"nope"}"#,
            r#"{"cmd":"topk","k":-3}"#,
            r#"{"cmd":"interest","items":[1],"cell":1.5}"#,
            r#"{"cmd":"support_vec","itemsets":[[1],"x"]}"#,
            r#"{"cmd":"replicate_pull"}"#,
            r#"{"cmd":"replicate_pull","after_epoch":-4}"#,
            r#"{"cmd":"demote"}"#,
            r#"{"cmd":"demote","primary":7}"#,
            r#"{"cmd":"integrity","from_epoch":-2}"#,
            r#"{"cmd":"scrub","peer":7}"#,
            r#"{"cmd":"trace"}"#,
            r#"{"cmd":"trace","trace":"xyz"}"#,
            r#"{"cmd":"trace","trace":7}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn envelope_trace_context_parses_and_is_validated() {
        let adopted = parse_request(r#"{"cmd":"ping","trace":"00000000000000ab"}"#).unwrap();
        assert_eq!(adopted.trace, Some(TraceId::from_u64(0xab)));
        assert_eq!(adopted.parent_span, 0);
        let with_parent = parse_request(
            r#"{"cmd":"ping","trace":"00000000000000ab","pspan":"000000000000cafe"}"#,
        )
        .unwrap();
        assert_eq!(with_parent.parent_span, 0xcafe);
        let bare = parse_request(r#"{"cmd":"ping"}"#).unwrap();
        assert_eq!(bare.trace, None);
        // Malformed context is a parse error — rejected, never silently
        // replaced with a minted id.
        for bad in [
            r#"{"cmd":"ping","trace":"ab"}"#,
            r#"{"cmd":"ping","trace":"00000000000000AB"}"#,
            r#"{"cmd":"ping","trace":"0000000000000000"}"#,
            r#"{"cmd":"ping","trace":17}"#,
            r#"{"cmd":"ping","trace":"00000000000000ab","pspan":"nope"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should fail");
        }
        // The `trace` command's field is the query target, not context.
        let query = parse_request(r#"{"cmd":"trace","trace":"00000000000000ab"}"#).unwrap();
        assert_eq!(query.trace, None);
        assert_eq!(query.request, Request::Trace { trace: 0xab });
    }

    #[test]
    fn responses_echo_ids_and_are_single_line() {
        let ok = ok_response(Some(42)).with("pong", Value::Bool(true));
        assert_eq!(ok.to_string(), r#"{"id":42,"ok":true,"pong":true}"#);
        let err = error_response(None, "bad");
        assert_eq!(err.to_string(), r#"{"ok":false,"error":"bad"}"#);
        assert!(!ok.to_string().contains('\n'));
    }

    #[test]
    fn retryable_errors_carry_the_marker() {
        let err = retryable_error_response(Some(7), "overloaded");
        assert_eq!(
            err.to_string(),
            r#"{"id":7,"ok":false,"error":"overloaded","retryable":true}"#
        );
        // Plain errors must NOT grow the field (golden fixtures pin them).
        assert!(!error_response(None, "bad")
            .to_string()
            .contains("retryable"));
    }

    #[test]
    fn envelope_generation_parses_and_defaults_to_none() {
        let stamped = parse_request(r#"{"cmd":"ping","gen":9}"#).unwrap();
        assert_eq!(stamped.generation, Some(9));
        let bare = parse_request(r#"{"cmd":"ping"}"#).unwrap();
        assert_eq!(bare.generation, None);
    }

    #[test]
    fn fenced_errors_carry_marker_and_generation() {
        let err = fenced_error_response(Some(3), 12, "stale generation");
        assert_eq!(
            err.to_string(),
            r#"{"id":3,"ok":false,"error":"stale generation","fenced":true,"gen":12}"#
        );
        // Fenced failures are permanent: no retryable marker, and plain
        // errors never grow the fenced field.
        assert!(!err.to_string().contains("retryable"));
        assert!(!error_response(None, "bad").to_string().contains("fenced"));
    }
}

//! Server counters and latency percentiles for `/stats`.
//!
//! Latencies are recorded in whole microseconds into a fixed-size ring
//! (the most recent [`RING_CAPACITY`] requests); percentiles are computed
//! by sorting a copy on demand, entirely in integer arithmetic. Counters
//! are relaxed atomics — `/stats` is observability, not accounting, and
//! slight cross-counter skew under load is acceptable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How many recent request latencies the percentile ring retains.
pub const RING_CAPACITY: usize = 4096;

/// Why a request (or connection) failed, for the per-category error
/// counters surfaced in `/stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCategory {
    /// The request line was not a well-formed protocol request.
    Parse,
    /// The server shed load: full pending queue or connection limit.
    Overload,
    /// The request exceeded its deadline.
    Deadline,
    /// A socket-level failure while speaking to the client.
    Io,
    /// Any other request failure (engine errors, bad parameters).
    Other,
}

/// A fixed-size ring of recent latency samples (microseconds).
#[derive(Debug)]
struct Ring {
    samples: Vec<u64>,
    next: usize,
    filled: bool,
}

/// Cumulative server counters plus the latency ring.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Requests handled (including failed ones).
    requests: AtomicU64,
    /// Requests answered `"ok": false`.
    errors: AtomicU64,
    /// Connections accepted.
    connections: AtomicU64,
    /// Connections rejected by admission control (queue full or over
    /// the connection limit).
    rejected_connections: AtomicU64,
    /// Connections currently open (accepted, not yet closed).
    active_connections: AtomicU64,
    /// Malformed request lines.
    parse_errors: AtomicU64,
    /// Load-shedding rejections (queue full, connection limit).
    overload_errors: AtomicU64,
    /// Requests that blew their deadline.
    deadline_errors: AtomicU64,
    /// Socket-level connection failures.
    io_errors: AtomicU64,
    /// Other request failures (engine errors, bad parameters).
    other_errors: AtomicU64,
    /// Baskets ingested through the server.
    ingested_baskets: AtomicU64,
    /// Epoch of the most recent snapshot served to any query.
    last_served_epoch: AtomicU64,
    /// Recent request latencies.
    ring: Mutex<Ring>,
}

/// A point-in-time copy of every counter, plus derived percentiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests handled.
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections rejected by admission control.
    pub rejected_connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Malformed request lines.
    pub parse_errors: u64,
    /// Load-shedding rejections.
    pub overload_errors: u64,
    /// Requests that blew their deadline.
    pub deadline_errors: u64,
    /// Socket-level connection failures.
    pub io_errors: u64,
    /// Other request failures.
    pub other_errors: u64,
    /// Baskets ingested through the server.
    pub ingested_baskets: u64,
    /// Epoch of the most recent snapshot served.
    pub last_served_epoch: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        ServerMetrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            overload_errors: AtomicU64::new(0),
            deadline_errors: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            other_errors: AtomicU64::new(0),
            ingested_baskets: AtomicU64::new(0),
            last_served_epoch: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                samples: vec![0; RING_CAPACITY],
                next: 0,
                filled: false,
            }),
        }
    }

    /// Records one handled request: its latency and, when it failed,
    /// the failure category.
    pub fn record_request(&self, latency: Duration, failed: Option<ErrorCategory>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(category) = failed {
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.record_error(category);
        }
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut ring = lock(&self.ring);
        let next = ring.next;
        ring.samples[next] = micros;
        ring.next = (next + 1) % RING_CAPACITY;
        if ring.next == 0 {
            ring.filled = true;
        }
    }

    /// Bumps one category's error counter (without touching the request
    /// counters — connection-level failures are not requests).
    pub fn record_error(&self, category: ErrorCategory) {
        let counter = match category {
            ErrorCategory::Parse => &self.parse_errors,
            ErrorCategory::Overload => &self.overload_errors,
            ErrorCategory::Deadline => &self.deadline_errors,
            ErrorCategory::Io => &self.io_errors,
            ErrorCategory::Other => &self.other_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one accepted connection; pair with
    /// [`ServerMetrics::record_disconnection`] when it closes.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.active_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted connection closing.
    pub fn record_disconnection(&self) {
        // Saturating: a stray double-close must not wrap the gauge.
        let _ = self
            .active_connections
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }

    /// Records a connection turned away by admission control.
    pub fn record_rejected_connection(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
        self.record_error(ErrorCategory::Overload);
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::Relaxed)
    }

    /// Records `n` baskets ingested.
    pub fn record_ingest(&self, n: u64) {
        self.ingested_baskets.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the epoch a query was served at (monotonic max).
    pub fn record_served_epoch(&self, epoch: u64) {
        self.last_served_epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter plus p50/p99 latency.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (p50_us, p99_us) = {
            let ring = lock(&self.ring);
            let len = if ring.filled {
                RING_CAPACITY
            } else {
                ring.next
            };
            if len == 0 {
                (0, 0)
            } else {
                let mut sorted = ring.samples[..len].to_vec();
                sorted.sort_unstable();
                (percentile(&sorted, 50), percentile(&sorted, 99))
            }
        };
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            overload_errors: self.overload_errors.load(Ordering::Relaxed),
            deadline_errors: self.deadline_errors.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            other_errors: self.other_errors.load(Ordering::Relaxed),
            ingested_baskets: self.ingested_baskets.load(Ordering::Relaxed),
            last_served_epoch: self.last_served_epoch.load(Ordering::Relaxed),
            p50_us,
            p99_us,
        }
    }
}

/// The `q`-th percentile of a sorted non-empty slice, nearest-rank with
/// integer arithmetic only.
fn percentile(sorted: &[u64], q: usize) -> u64 {
    let idx = ((sorted.len() - 1) * q) / 100;
    sorted[idx]
}

/// Acquires a mutex, recovering from poisoning (the ring holds plain
/// integers; any state is valid).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new();
        m.record_connection();
        m.record_request(Duration::from_micros(100), None);
        m.record_request(Duration::from_micros(300), Some(ErrorCategory::Other));
        m.record_ingest(7);
        m.record_served_epoch(5);
        m.record_served_epoch(3); // must not regress
        let snap = m.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.other_errors, 1);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.active_connections, 1);
        assert_eq!(snap.ingested_baskets, 7);
        assert_eq!(snap.last_served_epoch, 5);
    }

    #[test]
    fn error_categories_count_separately() {
        let m = ServerMetrics::new();
        m.record_request(Duration::from_micros(1), Some(ErrorCategory::Parse));
        m.record_request(Duration::from_micros(1), Some(ErrorCategory::Deadline));
        m.record_request(Duration::from_micros(1), Some(ErrorCategory::Deadline));
        m.record_error(ErrorCategory::Io);
        m.record_rejected_connection();
        let snap = m.snapshot();
        assert_eq!(snap.parse_errors, 1);
        assert_eq!(snap.deadline_errors, 2);
        assert_eq!(snap.io_errors, 1);
        assert_eq!(snap.overload_errors, 1);
        assert_eq!(snap.rejected_connections, 1);
        // Only the three requests counted as requests/errors.
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 3);
    }

    #[test]
    fn active_connection_gauge_tracks_opens_and_closes() {
        let m = ServerMetrics::new();
        m.record_connection();
        m.record_connection();
        m.record_disconnection();
        assert_eq!(m.active_connections(), 1);
        m.record_disconnection();
        m.record_disconnection(); // stray double close must not wrap
        assert_eq!(m.active_connections(), 0);
        assert_eq!(m.snapshot().connections, 2);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let m = ServerMetrics::new();
        // 1..=100 microseconds, one sample each.
        for us in 1..=100u64 {
            m.record_request(Duration::from_micros(us), None);
        }
        let snap = m.snapshot();
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p99_us, 99);
    }

    #[test]
    fn ring_wraps_and_keeps_recent_samples() {
        let m = ServerMetrics::new();
        for _ in 0..RING_CAPACITY {
            m.record_request(Duration::from_micros(1), None);
        }
        // Overwrite the whole ring with slower samples.
        for _ in 0..RING_CAPACITY {
            m.record_request(Duration::from_micros(1000), None);
        }
        let snap = m.snapshot();
        assert_eq!(snap.p50_us, 1000);
        assert_eq!(snap.requests, 2 * RING_CAPACITY as u64);
    }

    #[test]
    fn empty_ring_reports_zero() {
        let snap = ServerMetrics::new().snapshot();
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p99_us, 0);
    }
}

//! Server metrics on the shared `bmb-obs` registry.
//!
//! One metrics implementation serves every consumer: the `/stats` wire
//! command reads the same cells Prometheus exposition renders, so the
//! two can never disagree. Counters and gauges are relaxed atomics;
//! request latencies go into per-command log-scale histograms
//! (`bmb_serve_request_us{cmd=...}`), and `/stats` percentiles are
//! nearest-rank quantiles over the merged per-command histograms —
//! reported as bucket upper bounds, so they are within one power-of-two
//! bucket of the true latency.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use bmb_obs::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, SpanRing, TraceId, BUCKETS,
    DEFAULT_SPAN_CAPACITY,
};

/// Command labels pre-registered at construction so the request hot
/// path never takes the registry lock. `"invalid"` is the bucket for
/// lines that failed to parse into any command.
pub const KNOWN_COMMANDS: &[&str] = &[
    "ping",
    "chi2",
    "chi2_batch",
    "interest",
    "topk",
    "border",
    "ingest",
    "checkpoint",
    "stats",
    "metrics",
    "trace",
    "events",
    "support_vec",
    "replicate_pull",
    "promote",
    "demote",
    "shutdown",
    "invalid",
];

/// How many slow-request exemplars the server retains for `/stats`.
const SLOW_EXEMPLAR_CAPACITY: usize = 8;

/// One slow request's identity: what ran, how long, and the trace id
/// that explains it (feed it to `trace <id>` for the full tree).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowExemplar {
    /// The wire command.
    pub cmd: String,
    /// How long it took, microseconds.
    pub elapsed_us: u64,
    /// The request's trace id (raw).
    pub trace: u64,
}

/// Why a request (or connection) failed, for the per-category error
/// counters surfaced in `/stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCategory {
    /// The request line was not a well-formed protocol request.
    Parse,
    /// The server shed load: full pending queue or connection limit.
    Overload,
    /// The request exceeded its deadline.
    Deadline,
    /// A socket-level failure while speaking to the client.
    Io,
    /// Any other request failure (engine errors, bad parameters).
    Other,
}

/// Cumulative server counters, gauges, and latency histograms, all
/// living in one [`Registry`] (`bmb_serve_*` families).
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<Registry>,
    /// Requests handled (including failed ones).
    requests: Counter,
    /// Requests answered `"ok": false`.
    request_errors: Counter,
    /// Connections accepted.
    connections: Counter,
    /// Connections rejected by admission control.
    rejected_connections: Counter,
    /// Connections currently open.
    active_connections: Gauge,
    /// Per-category error counters (`category=` label).
    parse_errors: Counter,
    overload_errors: Counter,
    deadline_errors: Counter,
    io_errors: Counter,
    other_errors: Counter,
    /// Baskets ingested through the server.
    ingested_baskets: Counter,
    /// Epoch of the most recent snapshot served (monotonic max).
    last_served_epoch: Gauge,
    /// Requests slower than the configured slow-query threshold.
    slow_requests: Counter,
    /// Per-command request latency histograms.
    per_command: Vec<(&'static str, Histogram)>,
    /// Recent slow requests with their trace ids ([`SlowExemplar`]).
    slow_exemplars: Mutex<VecDeque<SlowExemplar>>,
    /// Completed spans for cross-node trace reconstruction.
    spans: SpanRing,
}

/// A point-in-time copy of every counter, plus derived percentiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests handled.
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections rejected by admission control.
    pub rejected_connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Malformed request lines.
    pub parse_errors: u64,
    /// Load-shedding rejections.
    pub overload_errors: u64,
    /// Requests that blew their deadline.
    pub deadline_errors: u64,
    /// Socket-level connection failures.
    pub io_errors: u64,
    /// Other request failures.
    pub other_errors: u64,
    /// Baskets ingested through the server.
    pub ingested_baskets: u64,
    /// Epoch of the most recent snapshot served.
    pub last_served_epoch: u64,
    /// Requests over the slow-query threshold.
    pub slow_requests: u64,
    /// Median request latency, microseconds (log-bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds (bucket bound).
    pub p99_us: u64,
}

impl MetricsSnapshot {
    /// Fraction of handled requests that failed, in `[0, 1]`; exactly
    /// `0.0` before the first request (never NaN).
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.errors as f64 / self.requests as f64
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Fresh zeroed metrics in a fresh registry.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let category = |cat: &str| {
            registry.counter_with(
                "bmb_serve_errors_total",
                "Failures by category (requests and connection-level).",
                &[("category", cat)],
            )
        };
        let per_command = KNOWN_COMMANDS
            .iter()
            .map(|&cmd| {
                (
                    cmd,
                    registry.histogram_with(
                        "bmb_serve_request_us",
                        "Request handling latency in microseconds.",
                        &[("cmd", cmd)],
                    ),
                )
            })
            .collect();
        ServerMetrics {
            requests: registry.counter("bmb_serve_requests_total", "Requests handled."),
            request_errors: registry.counter(
                "bmb_serve_request_errors_total",
                "Requests answered with an error.",
            ),
            connections: registry.counter("bmb_serve_connections_total", "Connections accepted."),
            rejected_connections: registry.counter(
                "bmb_serve_rejected_connections_total",
                "Connections rejected by admission control.",
            ),
            active_connections: registry.gauge(
                "bmb_serve_active_connections",
                "Connections currently open.",
            ),
            parse_errors: category("parse"),
            overload_errors: category("overload"),
            deadline_errors: category("deadline"),
            io_errors: category("io"),
            other_errors: category("other"),
            ingested_baskets: registry.counter(
                "bmb_serve_ingested_baskets_total",
                "Baskets ingested through the server.",
            ),
            last_served_epoch: registry.gauge(
                "bmb_serve_last_served_epoch",
                "Epoch of the most recent snapshot served to any query.",
            ),
            slow_requests: registry.counter(
                "bmb_serve_slow_requests_total",
                "Requests slower than the slow-query threshold.",
            ),
            per_command,
            slow_exemplars: Mutex::new(VecDeque::new()),
            spans: SpanRing::new(DEFAULT_SPAN_CAPACITY),
            registry,
        }
    }

    /// The server's span ring (completed request/sub-request spans,
    /// served back by the `trace <id>` wire command).
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// The registry backing these metrics, for exposition merging and
    /// programmatic snapshots.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one handled request: its command, latency, and (when it
    /// failed) the failure category. Unknown command labels fall back
    /// to a registry registration (slow path, never hit by the server
    /// itself — it only passes [`KNOWN_COMMANDS`] labels).
    pub fn record_request(&self, cmd: &str, latency: Duration, failed: Option<ErrorCategory>) {
        self.requests.inc();
        if let Some(category) = failed {
            self.request_errors.inc();
            self.record_error(category);
        }
        match self.per_command.iter().find(|(name, _)| *name == cmd) {
            Some((_, histogram)) => histogram.record_duration(latency),
            None => self
                .registry
                .histogram_with(
                    "bmb_serve_request_us",
                    "Request handling latency in microseconds.",
                    &[("cmd", cmd)],
                )
                .record_duration(latency),
        }
    }

    /// Bumps one category's error counter (without touching the request
    /// counters — connection-level failures are not requests).
    pub fn record_error(&self, category: ErrorCategory) {
        let counter = match category {
            ErrorCategory::Parse => &self.parse_errors,
            ErrorCategory::Overload => &self.overload_errors,
            ErrorCategory::Deadline => &self.deadline_errors,
            ErrorCategory::Io => &self.io_errors,
            ErrorCategory::Other => &self.other_errors,
        };
        counter.inc();
    }

    /// Records one accepted connection; pair with
    /// [`ServerMetrics::record_disconnection`] when it closes.
    pub fn record_connection(&self) {
        self.connections.inc();
        self.active_connections.add(1);
    }

    /// Records an accepted connection closing.
    pub fn record_disconnection(&self) {
        // Saturating: a stray double-close must not wrap the gauge.
        self.active_connections.sub_saturating(1);
    }

    /// Records a connection turned away by admission control.
    pub fn record_rejected_connection(&self) {
        self.rejected_connections.inc();
        self.record_error(ErrorCategory::Overload);
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> u64 {
        u64::try_from(self.active_connections.get()).unwrap_or(0)
    }

    /// Records `n` baskets ingested.
    pub fn record_ingest(&self, n: u64) {
        self.ingested_baskets.add(n);
    }

    /// Records the epoch a query was served at (monotonic max).
    pub fn record_served_epoch(&self, epoch: u64) {
        self.last_served_epoch
            .set_max(i64::try_from(epoch).unwrap_or(i64::MAX));
    }

    /// Records one request over the slow-query threshold, keeping its
    /// trace id as an exemplar so `/stats` can name the worst recent
    /// traces, not just a p99 number.
    pub fn record_slow_request(&self, cmd: &str, elapsed_us: u64, trace: TraceId) {
        self.slow_requests.inc();
        let mut ring = self
            .slow_exemplars
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= SLOW_EXEMPLAR_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(SlowExemplar {
            cmd: cmd.to_string(),
            elapsed_us,
            trace: trace.as_u64(),
        });
    }

    /// The retained slow-request exemplars, worst (slowest) first;
    /// ties keep arrival order.
    pub fn slow_exemplars(&self) -> Vec<SlowExemplar> {
        let ring = self
            .slow_exemplars
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut exemplars: Vec<SlowExemplar> = ring.iter().cloned().collect();
        exemplars.sort_by_key(|e| std::cmp::Reverse(e.elapsed_us));
        exemplars
    }

    /// All request latencies merged across commands.
    fn merged_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (_, histogram) in &self.per_command {
            let snap = histogram.snapshot();
            for i in 0..BUCKETS {
                merged.buckets[i] += snap.buckets[i];
            }
            merged.sum = merged.sum.saturating_add(snap.sum);
        }
        merged
    }

    /// A point-in-time copy of every counter plus p50/p99 latency
    /// (nearest-rank over the merged histograms; `0` when no request
    /// has been recorded yet).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.merged_latency();
        MetricsSnapshot {
            requests: self.requests.get(),
            errors: self.request_errors.get(),
            connections: self.connections.get(),
            rejected_connections: self.rejected_connections.get(),
            active_connections: self.active_connections(),
            parse_errors: self.parse_errors.get(),
            overload_errors: self.overload_errors.get(),
            deadline_errors: self.deadline_errors.get(),
            io_errors: self.io_errors.get(),
            other_errors: self.other_errors.get(),
            ingested_baskets: self.ingested_baskets.get(),
            last_served_epoch: u64::try_from(self.last_served_epoch.get()).unwrap_or(0),
            slow_requests: self.slow_requests.get(),
            p50_us: latency.p50(),
            p99_us: latency.p99(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new();
        m.record_connection();
        m.record_request("chi2", Duration::from_micros(100), None);
        m.record_request(
            "chi2",
            Duration::from_micros(300),
            Some(ErrorCategory::Other),
        );
        m.record_ingest(7);
        m.record_served_epoch(5);
        m.record_served_epoch(3); // must not regress
        let snap = m.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.other_errors, 1);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.active_connections, 1);
        assert_eq!(snap.ingested_baskets, 7);
        assert_eq!(snap.last_served_epoch, 5);
    }

    #[test]
    fn error_categories_count_separately() {
        let m = ServerMetrics::new();
        m.record_request("chi2", Duration::from_micros(1), Some(ErrorCategory::Parse));
        m.record_request(
            "topk",
            Duration::from_micros(1),
            Some(ErrorCategory::Deadline),
        );
        m.record_request(
            "topk",
            Duration::from_micros(1),
            Some(ErrorCategory::Deadline),
        );
        m.record_error(ErrorCategory::Io);
        m.record_rejected_connection();
        let snap = m.snapshot();
        assert_eq!(snap.parse_errors, 1);
        assert_eq!(snap.deadline_errors, 2);
        assert_eq!(snap.io_errors, 1);
        assert_eq!(snap.overload_errors, 1);
        assert_eq!(snap.rejected_connections, 1);
        // Only the three requests counted as requests/errors.
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 3);
    }

    #[test]
    fn active_connection_gauge_tracks_opens_and_closes() {
        let m = ServerMetrics::new();
        m.record_connection();
        m.record_connection();
        m.record_disconnection();
        assert_eq!(m.active_connections(), 1);
        m.record_disconnection();
        m.record_disconnection(); // stray double close must not wrap
        assert_eq!(m.active_connections(), 0);
        assert_eq!(m.snapshot().connections, 2);
    }

    #[test]
    fn percentiles_merge_across_commands_within_one_bucket() {
        let m = ServerMetrics::new();
        // 1..=100 microseconds, spread across two command labels.
        for us in 1..=100u64 {
            let cmd = if us % 2 == 0 { "chi2" } else { "topk" };
            m.record_request(cmd, Duration::from_micros(us), None);
        }
        let snap = m.snapshot();
        // Log-bucket quantiles report the bucket upper bound: the true
        // p50 is 50 (bucket (32, 64]), the true p99 is 99 ((64, 128]).
        assert_eq!(snap.p50_us, 64);
        assert_eq!(snap.p99_us, 128);
        assert_eq!(snap.requests, 100);
    }

    #[test]
    fn empty_histograms_report_zero_percentiles_and_rates() {
        let snap = ServerMetrics::new().snapshot();
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p99_us, 0);
        // Bit-exact +0.0 — not NaN, not -0.0, not null on the wire.
        assert_eq!(snap.error_rate().to_bits(), 0u64);
    }

    #[test]
    fn error_rate_is_a_plain_fraction() {
        let m = ServerMetrics::new();
        m.record_request("chi2", Duration::from_micros(1), None);
        m.record_request("chi2", Duration::from_micros(1), Some(ErrorCategory::Other));
        let rate = m.snapshot().error_rate();
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn registry_exposes_the_same_cells_stats_reads() {
        let m = ServerMetrics::new();
        m.record_request("chi2", Duration::from_micros(9), None);
        m.record_slow_request("chi2", 9, TraceId::from_u64(1));
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter_value("bmb_serve_requests_total", &[]), 1);
        assert_eq!(snap.counter_value("bmb_serve_slow_requests_total", &[]), 1);
        assert_eq!(
            snap.histogram_value("bmb_serve_request_us", &[("cmd", "chi2")])
                .count(),
            1
        );
    }
}

//! Child process for the real-SIGKILL crash test (`tests/crash_kill.rs`).
//!
//! Opens a checkpointed directory-mode [`DurableStore`] under the given
//! path, serves the wire protocol on an ephemeral port with a fast
//! background checkpointer, prints `ADDR <ip:port>` and
//! `RECOVERED <epoch> <checkpoint_epoch> <baskets_recovered>` on
//! stdout, and then blocks in the accept loop until it is killed.
//! It never shuts down cleanly — the whole point is that the parent
//! test SIGKILLs it mid-ingest and checks that every acknowledged
//! append survives.
//!
//! Usage: `crash_harness DIR N_ITEMS SEGMENT_BYTES CHECKPOINT_EVERY`

use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use bmb_basket::wal::{DurabilityConfig, DurableStore};
use bmb_basket::{FsDir, StoreConfig};
use bmb_core::{EngineConfig, QueryEngine};
use bmb_serve::{Checkpointer, CheckpointerConfig, Server, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dir, n_items, segment_bytes, checkpoint_every] = args.as_slice() else {
        eprintln!("usage: crash_harness DIR N_ITEMS SEGMENT_BYTES CHECKPOINT_EVERY");
        std::process::exit(2);
    };
    let n_items: usize = n_items.parse().expect("N_ITEMS must be an integer");
    let segment_bytes: u64 = segment_bytes
        .parse()
        .expect("SEGMENT_BYTES must be an integer");
    let checkpoint_every: u64 = checkpoint_every
        .parse()
        .expect("CHECKPOINT_EVERY must be an integer");

    let fs = FsDir::open(Path::new(dir)).expect("open checkpoint dir");
    let (durable, report) = DurableStore::open_dir(
        Box::new(fs),
        n_items,
        StoreConfig {
            segment_capacity: 3,
        },
        DurabilityConfig {
            segment_bytes,
            retain_checkpoints: 2,
        },
    )
    .expect("recover durable store");
    let durable = Arc::new(durable);

    let engine = Arc::new(QueryEngine::new(
        Arc::clone(durable.store()),
        EngineConfig::default(),
    ));
    let server = Server::bind(engine, ServerConfig::default())
        .expect("bind")
        .with_durable_store(Arc::clone(&durable));
    let addr = server.local_addr();

    // An aggressive checkpointer so real snapshots + retention happen
    // within the few hundred milliseconds each round lives.
    let _checkpointer = Checkpointer::spawn(
        Arc::clone(&durable),
        CheckpointerConfig {
            interval: None,
            every_records: Some(checkpoint_every),
            poll_interval: Duration::from_millis(2),
        },
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "ADDR {addr}").expect("stdout");
    writeln!(
        out,
        "RECOVERED {} {} {}",
        report.epoch, report.checkpoint_epoch, report.baskets_recovered
    )
    .expect("stdout");
    out.flush().expect("stdout flush");
    drop(out);

    // Blocks forever; the parent kills the process.
    server.run().expect("accept loop");
}

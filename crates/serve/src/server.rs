//! The TCP front end: accept loop, bounded worker pool, graceful shutdown.
//!
//! Connections are accepted on one thread and handed to a fixed pool of
//! worker threads over a bounded queue (thread-per-connection semantics
//! with a hard concurrency cap — the paper-era simplicity of blocking
//! `std::net`, no async runtime). Each connection speaks the
//! line-delimited JSON protocol of [`crate::protocol`].
//!
//! Shutdown is cooperative: a [`ShutdownHandle`] (or the `shutdown`
//! command) raises a flag and pokes the acceptor awake with a self-
//! connect; workers notice via short read timeouts, finish the request
//! they are executing — in-flight queries drain, nothing is aborted —
//! send its response, and exit. `run` then joins every thread.
//!
//! Under failure the server degrades instead of falling over:
//!
//! * **Admission control** — the pending-connection queue is bounded;
//!   when it is full, or when [`ServerConfig::max_connections`] sockets
//!   are already open, the new connection gets one explicit
//!   `overloaded` / `connection limit` error line (marked
//!   `"retryable":true`) and is closed, rather than queueing without
//!   bound.
//! * **Deadlines** — every request carries a server-side deadline
//!   ([`ServerConfig::request_deadline`]); work that misses it answers
//!   with a retryable `deadline exceeded` error, and batch queries stop
//!   between items when the budget runs out.
//! * **Durability** — with [`Server::with_durable_store`], `ingest`
//!   requests are acknowledged only after the write-ahead log's sync
//!   barrier (see `bmb_basket::wal`).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use bmb_basket::wal::DurableStore;
use bmb_basket::{ItemId, Itemset};
use bmb_core::{MinerConfig, QueryEngine, SupportSpec};
use bmb_obs::{Registry, RegistrySnapshot, Severity, SpanRecord, TraceId};

use crate::json::Value;
use crate::metrics::{ErrorCategory, ServerMetrics};
use crate::protocol::{
    border_value, chi2_value, error_response, fenced_error_response, interest_value, ok_response,
    pair_value, parse_request, retryable_error_response, Request, HELLO,
};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Accepted connections that may wait for a free worker; one more
    /// is rejected with an `overloaded` error instead of queueing.
    pub backlog: usize,
    /// Open connections allowed at once (queued + being served); over
    /// the limit, connects get a clean `connection limit` error line.
    pub max_connections: usize,
    /// How often blocked reads wake up to check the shutdown flag.
    pub poll_interval: Duration,
    /// A connection sending a longer line than this is dropped.
    pub max_line_bytes: usize,
    /// Per-request processing deadline; work that misses it answers
    /// with a retryable `deadline exceeded` error.
    pub request_deadline: Duration,
    /// Requests slower than this are counted and logged to the event
    /// log at `Warn` with their command and trace id.
    pub slow_request_threshold: Duration,
    /// Optional bind address for a plain-HTTP `/metrics` listener
    /// serving the Prometheus text exposition (`None` disables it; use
    /// port 0 for an ephemeral port).
    pub metrics_addr: Option<String>,
    /// This node's role label stamped into completed span records
    /// (`"server"`, `"coordinator"`, `"shard"`, `"follower"`), so a
    /// reconstructed trace tree names which process ran each span.
    pub node_role: String,
    /// Shard index stamped into span records when this process serves
    /// one shard of a cluster (`None` for standalone/coordinator).
    pub shard_index: Option<i64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backlog: 64,
            max_connections: 256,
            poll_interval: Duration::from_millis(50),
            max_line_bytes: 16 << 20,
            request_deadline: Duration::from_secs(10),
            slow_request_threshold: Duration::from_secs(1),
            metrics_addr: None,
            node_role: "server".to_string(),
            shard_index: None,
        }
    }
}

/// Remote control for a running server: raise the shutdown flag and wake
/// the acceptor. Cloneable and sendable across threads.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Requests shutdown; idempotent. Returns once the flag is raised
    /// (not once the server has exited — join the server thread for that).
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Wake the acceptors out of their blocking accepts.
        let _ = TcpStream::connect(self.addr);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A bound server, ready to [`Server::run`].
pub struct Server {
    service: Arc<dyn Service>,
    /// Present only for engine-backed servers bound via [`Server::bind`];
    /// lets [`Server::with_durable_store`] rebuild the service.
    engine: Option<Arc<QueryEngine>>,
    metrics: Arc<ServerMetrics>,
    config: ServerConfig,
    listener: TcpListener,
    local_addr: SocketAddr,
    metrics_listener: Option<TcpListener>,
    metrics_local_addr: Option<SocketAddr>,
    flag: Arc<AtomicBool>,
    /// Per-server trace-id sequence: deterministic for a given request
    /// order, so golden fixtures (and the durability byte-identity
    /// test) stay reproducible across runs and restarts.
    trace_seq: Arc<AtomicU64>,
}

impl Server {
    /// Binds the listening socket (resolving port 0 to a real port),
    /// and the `/metrics` HTTP socket when configured. Requests are
    /// served by an [`EngineService`] over `engine`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(engine: Arc<QueryEngine>, config: ServerConfig) -> io::Result<Server> {
        let service: Arc<dyn Service> = Arc::new(EngineService::new(Arc::clone(&engine)));
        let mut server = Server::bind_service(service, config)?;
        server.engine = Some(engine);
        Ok(server)
    }

    /// Like [`Server::bind`] but serving an arbitrary [`Service`] —
    /// the hook the cluster roles (coordinator, follower) plug into.
    /// The wire protocol, worker pool, deadlines, and admission control
    /// are identical; only request dispatch differs.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind_service(service: Arc<dyn Service>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let metrics_local_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        Ok(Server {
            service,
            engine: None,
            metrics: Arc::new(ServerMetrics::new()),
            config,
            listener,
            local_addr,
            metrics_listener,
            metrics_local_addr,
            flag: Arc::new(AtomicBool::new(false)),
            trace_seq: Arc::new(AtomicU64::new(1)),
        })
    }

    /// Routes `ingest` requests through `durable` (the WAL-backed store
    /// wrapping the engine's `IncrementalStore`): appends are
    /// acknowledged only after the log's sync barrier. Only meaningful
    /// for engine-backed servers bound via [`Server::bind`]; a custom
    /// [`Service`] owns its own durability wiring.
    pub fn with_durable_store(mut self, durable: Arc<DurableStore>) -> Server {
        if let Some(engine) = &self.engine {
            self.service = Arc::new(EngineService::new(Arc::clone(engine)).with_durable(durable));
        }
        self
    }

    /// The bound address (with the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound `/metrics` HTTP address, when configured.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_local_addr
    }

    /// The server's metrics (shared; live while the server runs).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that can stop this server from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.local_addr,
            metrics_addr: self.metrics_local_addr,
        }
    }

    /// Serves until shutdown is requested, then drains and returns.
    ///
    /// Blocks the calling thread; spawn it on a `std::thread` (as
    /// [`Server::spawn`] does) to serve in the background.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than per-connection ones
    /// (a failing connection is dropped, not fatal).
    pub fn run(self) -> io::Result<()> {
        let shutdown = self.shutdown_handle();
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.config.backlog.max(1));
        let rx = Mutex::new(rx);
        let workers = self.config.workers.max(1);
        let max_connections = self.config.max_connections.max(1) as u64;
        let result = crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let ctx = ConnectionContext {
                    service: self.service.as_ref(),
                    metrics: &self.metrics,
                    shutdown: shutdown.clone(),
                    config: &self.config,
                    trace_seq: &self.trace_seq,
                };
                let rx = &rx;
                scope.spawn(move |_| worker_loop(rx, ctx));
            }
            if let Some(listener) = &self.metrics_listener {
                let shutdown = shutdown.clone();
                let service = self.service.as_ref();
                let metrics = &self.metrics;
                scope.spawn(move |_| {
                    metrics_http_loop(listener, shutdown, || service.render_metrics(metrics))
                });
            }
            // Acceptor: hand connections to the pool until shutdown.
            // Admission control happens here — a connection the pool
            // cannot take gets one explicit error line, never an
            // unbounded queue slot.
            loop {
                if shutdown.is_shutdown() {
                    break;
                }
                match self.listener.accept() {
                    Ok(stream_pair) => {
                        let stream = stream_pair.0;
                        if shutdown.is_shutdown() {
                            break; // The wake-up self-connect lands here.
                        }
                        if self.metrics.active_connections() >= max_connections {
                            self.metrics.record_rejected_connection();
                            reject_connection(
                                stream,
                                &format!("server at connection limit ({max_connections} open)"),
                            );
                            continue;
                        }
                        match tx.try_send(stream) {
                            // Counted only once the pool has the stream,
                            // so `connections` is exactly the admitted
                            // count (rejections are tallied separately).
                            Ok(()) => self.metrics.record_connection(),
                            Err(mpsc::TrySendError::Full(stream)) => {
                                self.metrics.record_rejected_connection();
                                reject_connection(stream, "server overloaded: pending queue full");
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        if shutdown.is_shutdown() {
                            break;
                        }
                    }
                }
            }
            drop(tx); // Workers drain queued connections, then exit.
        });
        if result.is_err() {
            return Err(io::Error::other("a server worker panicked"));
        }
        Ok(())
    }

    /// Runs the server on a background thread; returns a handle carrying
    /// the address, shutdown control, and the join handle.
    pub fn spawn(self) -> RunningServer {
        let addr = self.local_addr;
        let metrics_addr = self.metrics_local_addr;
        let shutdown = self.shutdown_handle();
        let metrics = self.metrics();
        let thread = std::thread::spawn(move || self.run());
        RunningServer {
            addr,
            metrics_addr,
            shutdown,
            metrics,
            thread,
        }
    }
}

/// A server running on a background thread.
pub struct RunningServer {
    /// The bound address.
    pub addr: SocketAddr,
    /// The bound `/metrics` HTTP address, when configured.
    pub metrics_addr: Option<SocketAddr>,
    /// Shutdown control.
    pub shutdown: ShutdownHandle,
    /// Live metrics.
    pub metrics: Arc<ServerMetrics>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// Requests shutdown and waits for the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Surfaces the run loop's I/O error, or a generic error if the
    /// server thread panicked.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.shutdown();
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Writes one retryable error line to a connection being shed, then
/// drops it. Best-effort: the client may already be gone.
fn reject_connection(mut stream: TcpStream, message: &str) {
    let line = retryable_error_response(None, message).to_string();
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Everything a worker needs to speak to one client.
struct ConnectionContext<'a> {
    service: &'a dyn Service,
    metrics: &'a Arc<ServerMetrics>,
    shutdown: ShutdownHandle,
    config: &'a ServerConfig,
    trace_seq: &'a Arc<AtomicU64>,
}

/// The Prometheus text exposition over every registry a server can see:
/// its own request metrics, the service's registries (engine caches,
/// WAL, replication), and the process-global registry (miner stages).
pub fn exposition(metrics: &ServerMetrics, registries: &[Arc<Registry>]) -> String {
    let mut snaps: Vec<RegistrySnapshot> = vec![metrics.registry().snapshot()];
    snaps.extend(registries.iter().map(|r| r.snapshot()));
    snaps.push(bmb_obs::global().snapshot());
    let refs: Vec<&RegistrySnapshot> = snaps.iter().collect();
    bmb_obs::expose::render(&refs)
}

/// The `events` command's payload: the process event timeline, served
/// from the persisted ledger when one is attached to the global event
/// log (surviving restarts — the failover post-mortem case), from the
/// in-memory ring otherwise. `since_us` drops events older than the
/// given Unix-microsecond floor.
pub fn events_value(since_us: Option<u64>) -> Value {
    let log = bmb_obs::events();
    let floor = since_us.unwrap_or(0);
    let mut events: Vec<Value> = Vec::new();
    let source = if let Some(ledger) = log.ledger() {
        for line in ledger.read_lines() {
            let keep = bmb_obs::ledger::line_ts_us(&line).map_or(floor == 0, |ts| ts >= floor);
            if keep {
                if let Ok(value) = crate::json::parse(&line) {
                    events.push(value);
                }
            }
        }
        "ledger"
    } else {
        for event in log.recent() {
            if event.unix_micros >= floor {
                if let Ok(value) = crate::json::parse(&event.to_json_line()) {
                    events.push(value);
                }
            }
        }
        "ring"
    };
    Value::object()
        .with("source", Value::Str(source.to_string()))
        .with("count", Value::Int(events.len() as i64))
        .with("events", Value::Array(events))
}

/// The `stats` response's `slow_exemplars` array: the worst recent
/// over-threshold requests with the trace ids to pull their trees.
pub fn slow_exemplars_value(metrics: &ServerMetrics) -> Value {
    Value::Array(
        metrics
            .slow_exemplars()
            .iter()
            .map(|e| {
                Value::object()
                    .with("cmd", Value::Str(e.cmd.clone()))
                    .with("elapsed_us", Value::Int(e.elapsed_us as i64))
                    .with("trace", Value::Str(TraceId::from_u64(e.trace).to_string()))
            })
            .collect(),
    )
}

/// Serves `/metrics` over bare HTTP/1.1 until shutdown: read (and
/// discard) the request head, answer one text exposition, close. The
/// shutdown self-connect wakes the blocking accept.
fn metrics_http_loop(
    listener: &TcpListener,
    shutdown: ShutdownHandle,
    render: impl Fn() -> String,
) {
    loop {
        if shutdown.is_shutdown() {
            return;
        }
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => continue,
        };
        if shutdown.is_shutdown() {
            return; // The wake-up self-connect lands here.
        }
        // Drain the request head (best effort; scrapers send tiny GETs).
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let mut head = [0u8; 4096];
        let _ = stream.read(&mut head);
        let body = render();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
             charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.write_all(response.as_bytes());
    }
}

/// Pulls connections off the queue until the acceptor hangs up.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: ConnectionContext<'_>) {
    loop {
        // Hold the receiver lock across recv: idle workers queue on the
        // mutex, which is equivalent to queueing on the channel.
        // lock:allow(io)
        let stream = match lock(rx).recv() {
            Ok(stream) => stream,
            Err(_) => return,
        };
        if handle_connection(stream, &ctx).is_err() {
            ctx.metrics.record_error(ErrorCategory::Io);
        }
        ctx.metrics.record_disconnection();
    }
}

/// Speaks the protocol over one connection until EOF, error, overlong
/// line, or shutdown.
fn handle_connection(mut stream: TcpStream, ctx: &ConnectionContext<'_>) -> io::Result<()> {
    // Responses are single small writes; Nagle + delayed ACK would add
    // ~40ms to every request on loopback.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(ctx.config.poll_interval))?;
    stream.write_all(HELLO.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes[..line_bytes.len() - 1]);
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let (response, stop) = handle_line(trimmed, ctx);
            stream.write_all(response.to_string().as_bytes())?;
            stream.write_all(b"\n")?;
            if stop {
                ctx.shutdown.shutdown();
                return Ok(());
            }
        }
        if ctx.shutdown.is_shutdown() {
            // Graceful: everything already read got its response above.
            return Ok(());
        }
        if buf.len() > ctx.config.max_line_bytes {
            let err = error_response(None, "request line too long");
            stream.write_all(err.to_string().as_bytes())?;
            stream.write_all(b"\n")?;
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue; // timeout tick: loop re-checks the shutdown flag
            }
            Err(e) => return Err(e),
        }
    }
}

/// A request failure: the wire message plus its metrics category.
///
/// `Overload` and `Deadline` categories are answered with
/// `"retryable":true`; everything else is a permanent error.
#[derive(Clone, Debug)]
pub struct ServiceFailure {
    /// The human-readable message sent on the wire.
    pub message: String,
    /// The metrics bucket this failure is tallied under.
    pub category: ErrorCategory,
}

impl ServiceFailure {
    /// A permanent failure in the catch-all `Other` category.
    pub fn other(message: impl Into<String>) -> ServiceFailure {
        ServiceFailure {
            message: message.into(),
            category: ErrorCategory::Other,
        }
    }

    /// An I/O failure (WAL, checkpoint, shard transport).
    pub fn io(message: impl Into<String>) -> ServiceFailure {
        ServiceFailure {
            message: message.into(),
            category: ErrorCategory::Io,
        }
    }

    /// A transient failure the client should retry (answered with
    /// `"retryable":true`): overload, or a temporarily missing backend.
    pub fn unavailable(message: impl Into<String>) -> ServiceFailure {
        ServiceFailure {
            message: message.into(),
            category: ErrorCategory::Overload,
        }
    }

    /// A deadline miss (answered with `"retryable":true`).
    pub fn deadline(deadline: Duration) -> ServiceFailure {
        ServiceFailure {
            message: format!("deadline exceeded ({deadline:?})"),
            category: ErrorCategory::Deadline,
        }
    }
}

/// Per-request context a [`Service`] dispatches under: the deadline
/// anchor and the server's tuning/metrics.
pub struct ServiceCtx<'a> {
    /// When the server started processing this request; anchors the
    /// request's deadline budget.
    pub start: Instant,
    /// The server's configuration (deadline, connection limits).
    pub config: &'a ServerConfig,
    /// The server's request metrics (served-epoch and ingest counters).
    pub metrics: &'a ServerMetrics,
    /// The generation the request was stamped with (`"gen"`), when the
    /// sender is generation-aware. `promote`/`demote` read it as the
    /// floor their node generation must be bumped past.
    pub generation: Option<u64>,
}

impl ServiceCtx<'_> {
    /// Whether this request has exceeded its deadline budget.
    pub fn over_deadline(&self) -> bool {
        self.start.elapsed() > self.config.request_deadline
    }
}

/// Request dispatch behind the TCP front end. The server owns sockets,
/// workers, deadlines, and admission control; the service decides what
/// each decoded [`Request`] means. [`EngineService`] is the standalone
/// single-store implementation; the cluster crate provides coordinator
/// and follower services over the same wire protocol.
pub trait Service: Send + Sync {
    /// Executes one decoded request.
    ///
    /// # Errors
    ///
    /// Returns the wire error message plus its metrics category;
    /// `Overload`/`Deadline` categories are marked retryable.
    fn dispatch(&self, request: Request, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure>;

    /// The observability registries this service exposes over
    /// `/metrics`, in exposition order.
    fn registries(&self) -> Vec<Arc<Registry>>;

    /// The node's fencing generation, when this service participates in
    /// generation-fenced failover. `Some(gen)` makes the server reject
    /// requests stamped below `gen` (except `promote`/`demote`) and
    /// stamp `"gen"` into every success payload; the default `None`
    /// leaves the wire format untouched.
    fn generation(&self) -> Option<u64> {
        None
    }

    /// Renders the `/metrics` exposition body (also the `metrics` wire
    /// command's `"text"`). The default serves this node's own
    /// registries; the cluster coordinator overrides it to federate
    /// every node's exposition under `node=`/`shard=` labels.
    fn render_metrics(&self, metrics: &ServerMetrics) -> String {
        exposition(metrics, &self.registries())
    }
}

/// Whether a late success for this request should be converted into a
/// deadline error. Queries are safe to fail late (the client can retry
/// them); `ingest`, `promote`, `demote`, and `shutdown` already had
/// effects, so their answers must report what actually happened.
fn deadline_sensitive(request: &Request) -> bool {
    !matches!(
        request,
        Request::Ingest { .. }
            | Request::Shutdown
            | Request::Promote
            | Request::Demote { .. }
            | Request::Scrub { .. }
    )
}

/// Handles one request line; returns the response and whether the server
/// should shut down afterwards.
fn handle_line(line: &str, ctx: &ConnectionContext<'_>) -> (Value, bool) {
    let start = Instant::now();
    let start_unix_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0);
    let deadline = ctx.config.request_deadline;
    let parsed = parse_request(line);
    // A valid client-supplied (or coordinator-stamped) `"trace"` is
    // adopted; everything else — including parse errors — mints from
    // the per-server sequence, not the process-global one: a fresh
    // server always numbers its requests 1, 2, … so fixture bytes (and
    // the durability restart test) stay deterministic. Adoption does
    // not consume the sequence, so interleaved traced requests leave
    // golden numbering untouched.
    let (trace, parent_span) = match &parsed {
        Ok(envelope) if envelope.trace.is_some() => (
            envelope.trace.unwrap_or(TraceId::NONE),
            envelope.parent_span,
        ),
        _ => (
            TraceId::from_u64(ctx.trace_seq.fetch_add(1, Ordering::Relaxed)),
            0,
        ),
    };
    let span_id = bmb_obs::next_span_id();
    let prev_trace = bmb_obs::trace::set_current_trace(trace);
    let prev_span = bmb_obs::trace::set_current_span(span_id);
    let mut fenced_at: Option<u64> = None;
    let (id, cmd, outcome, stop) = match parsed {
        Err(message) => (
            None,
            "invalid",
            Err(ServiceFailure {
                message,
                category: ErrorCategory::Parse,
            }),
            false,
        ),
        Ok(envelope) => {
            let cmd = envelope.request.name();
            let stop = envelope.request == Request::Shutdown;
            let convert_late = deadline_sensitive(&envelope.request);
            // Generation fence: a request stamped below this node's own
            // generation comes from a sender with a stale view of the
            // cluster — refuse it before it can have effects. Promote
            // and demote are exempt: they carry the generation as the
            // floor to bump past, not as a claim of currency.
            let exempt = matches!(envelope.request, Request::Promote | Request::Demote { .. });
            let outcome = match (ctx.service.generation(), envelope.generation) {
                (Some(own), Some(stamped)) if stamped < own && !exempt => {
                    fenced_at = Some(own);
                    Err(ServiceFailure::other(format!(
                        "stale generation: request gen {stamped} is fenced below node gen {own}"
                    )))
                }
                _ => {
                    let service_ctx = ServiceCtx {
                        start,
                        config: ctx.config,
                        metrics: ctx.metrics.as_ref(),
                        generation: envelope.generation,
                    };
                    let mut outcome = ctx.service.dispatch(envelope.request, &service_ctx);
                    if convert_late && outcome.is_ok() && start.elapsed() > deadline {
                        outcome = Err(ServiceFailure::deadline(deadline));
                    }
                    outcome
                }
            };
            (envelope.id, cmd, outcome, stop)
        }
    };
    let (response, failed) = match outcome {
        Ok(payload) => {
            // Generation-aware nodes stamp their (post-dispatch, so a
            // promote reports the bumped value) generation into the
            // success payload; `with` is a no-op on non-object payloads.
            let payload = match ctx.service.generation() {
                Some(own) => payload.with("gen", Value::Int(own as i64)),
                None => payload,
            };
            (ok_response(id).with("result", payload), None)
        }
        Err(failure) => {
            let response = if let Some(own) = fenced_at {
                fenced_error_response(id, own, &failure.message)
            } else {
                match failure.category {
                    // Overload and deadline failures are transient:
                    // tell the client it may retry.
                    ErrorCategory::Overload | ErrorCategory::Deadline => {
                        retryable_error_response(id, &failure.message)
                    }
                    _ => error_response(id, &failure.message),
                }
            };
            (response, Some(failure.category))
        }
    };
    let elapsed = start.elapsed();
    let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
    let outcome_label = if fenced_at.is_some() {
        "fenced"
    } else {
        match failed {
            None => "ok",
            Some(ErrorCategory::Overload | ErrorCategory::Deadline) => "retryable",
            Some(_) => "error",
        }
    };
    ctx.metrics.spans().record(SpanRecord {
        name: format!("serve:{cmd}"),
        trace: trace.as_u64(),
        span: span_id,
        parent: parent_span,
        start_unix_us,
        duration_us: micros,
        node: ctx.config.node_role.clone(),
        shard: ctx.config.shard_index.unwrap_or(-1),
        outcome: outcome_label.to_string(),
    });
    if elapsed > ctx.config.slow_request_threshold {
        ctx.metrics.record_slow_request(cmd, micros, trace);
        bmb_obs::events().emit(
            Severity::Warn,
            "slow request",
            &[
                ("cmd", cmd),
                ("elapsed_us", &micros.to_string()),
                ("trace", &trace.to_string()),
            ],
        );
    }
    ctx.metrics.record_request(cmd, elapsed, failed);
    // Worker threads are pooled: restore the thread-locals so the next
    // request (or idle emit) does not inherit this trace context.
    bmb_obs::trace::set_current_span(prev_span);
    bmb_obs::trace::set_current_trace(prev_trace);
    (response.with("trace", Value::Str(trace.to_string())), stop)
}

/// The standalone single-store [`Service`]: every request runs against
/// one [`QueryEngine`] (optionally WAL-backed for durable ingest).
pub struct EngineService {
    engine: Arc<QueryEngine>,
    durable: Option<Arc<DurableStore>>,
    repair_peer: Option<String>,
}

impl EngineService {
    /// A service over `engine` with no durability (in-memory ingest).
    pub fn new(engine: Arc<QueryEngine>) -> EngineService {
        EngineService {
            engine,
            durable: None,
            repair_peer: None,
        }
    }

    /// Routes `ingest` through the WAL-backed store: appends are
    /// acknowledged only after the log's sync barrier.
    pub fn with_durable(mut self, durable: Arc<DurableStore>) -> EngineService {
        self.durable = Some(durable);
        self
    }

    /// A replica address the `scrub` command re-fetches damaged sealed
    /// segments from (a request's explicit `peer` field overrides it).
    pub fn with_repair_peer(mut self, addr: impl Into<String>) -> EngineService {
        self.repair_peer = Some(addr.into());
        self
    }

    /// The engine this service answers from.
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }

    /// The WAL-backed store, when durability is wired.
    pub fn durable(&self) -> Option<&Arc<DurableStore>> {
        self.durable.as_ref()
    }

    /// The configured repair peer, if any.
    pub fn repair_peer(&self) -> Option<&str> {
        self.repair_peer.as_deref()
    }
}

impl Service for EngineService {
    fn registries(&self) -> Vec<Arc<Registry>> {
        let mut registries = vec![Arc::clone(self.engine.observability())];
        if let Some(durable) = &self.durable {
            registries.push(Arc::clone(durable.observability()));
        }
        registries
    }

    fn dispatch(&self, request: Request, ctx: &ServiceCtx<'_>) -> Result<Value, ServiceFailure> {
        dispatch_engine(
            &self.engine,
            self.durable.as_ref(),
            self.repair_peer.as_deref(),
            request,
            ctx,
        )
    }
}

/// Executes one decoded request against the engine. `ctx.start` anchors
/// the request's deadline budget.
fn dispatch_engine(
    engine: &Arc<QueryEngine>,
    durable: Option<&Arc<DurableStore>>,
    repair_peer: Option<&str>,
    request: Request,
    ctx: &ServiceCtx<'_>,
) -> Result<Value, ServiceFailure> {
    let start = ctx.start;
    match request {
        Request::Ping => Ok(Value::object().with("pong", Value::Bool(true))),
        Request::Shutdown => Ok(Value::object().with("stopping", Value::Bool(true))),
        Request::Chi2 { items } => {
            let snap = engine.snapshot();
            ctx.metrics.record_served_epoch(snap.epoch());
            let set = Itemset::from_ids(items);
            let answer = engine
                .chi2(&snap, &set)
                .map_err(|e| ServiceFailure::other(e.to_string()))?;
            Ok(chi2_value(&answer))
        }
        Request::Chi2Batch { itemsets } => {
            // One snapshot for the whole batch: every answer shares an epoch.
            let snap = engine.snapshot();
            ctx.metrics.record_served_epoch(snap.epoch());
            let deadline = ctx.config.request_deadline;
            let mut results: Vec<Value> = Vec::with_capacity(itemsets.len());
            for items in itemsets {
                // The batch stops (whole-request deadline error) rather
                // than overrunning its budget item by item.
                if start.elapsed() > deadline {
                    return Err(ServiceFailure::deadline(deadline));
                }
                let set = Itemset::from_ids(items);
                results.push(match engine.chi2(&snap, &set) {
                    Ok(answer) => chi2_value(&answer),
                    Err(e) => Value::object().with("error", Value::Str(e.to_string())),
                });
            }
            Ok(Value::object()
                .with("epoch", Value::Int(snap.epoch() as i64))
                .with("results", Value::Array(results)))
        }
        Request::Interest { items, cell } => {
            let snap = engine.snapshot();
            ctx.metrics.record_served_epoch(snap.epoch());
            let set = Itemset::from_ids(items);
            let answer = engine
                .interest(&snap, &set, cell)
                .map_err(|e| ServiceFailure::other(e.to_string()))?;
            Ok(interest_value(&answer))
        }
        Request::TopK { k } => {
            let snap = engine.snapshot();
            ctx.metrics.record_served_epoch(snap.epoch());
            let pairs = engine
                .topk_pairs(&snap, k)
                .map_err(|e| ServiceFailure::other(e.to_string()))?;
            Ok(Value::object()
                .with("epoch", Value::Int(snap.epoch() as i64))
                .with(
                    "pairs",
                    Value::Array(pairs.iter().map(pair_value).collect()),
                ))
        }
        Request::Border {
            support,
            support_fraction,
            max_level,
        } => {
            let support = support.unwrap_or(0.01);
            if !(0.0..=1.0).contains(&support) {
                return Err(ServiceFailure::other(format!(
                    "'support' must be in [0,1], got {support}"
                )));
            }
            let fraction = support_fraction.unwrap_or(0.3);
            if !(fraction > 0.25 && fraction <= 1.0) {
                return Err(ServiceFailure::other(format!(
                    "'support_fraction' must be in (0.25,1], got {fraction}"
                )));
            }
            let config = MinerConfig {
                support: SupportSpec::Fraction(support),
                support_fraction: fraction,
                max_level: max_level.unwrap_or(usize::MAX),
                ..MinerConfig::default()
            };
            let snap = engine.snapshot();
            ctx.metrics.record_served_epoch(snap.epoch());
            let result = engine
                .border(&snap, &config)
                .map_err(|e| ServiceFailure::other(e.to_string()))?;
            Ok(border_value(&result, snap.epoch()))
        }
        Request::Ingest { baskets } => {
            let n = baskets.len() as u64;
            let baskets = baskets
                .into_iter()
                .map(|b| b.into_iter().map(ItemId).collect::<Vec<_>>());
            // With a WAL attached the append is acknowledged only after
            // the log's sync barrier; a WAL failure is an Io-category
            // error and nothing is applied.
            let epoch = match durable {
                Some(durable) => durable.append_batch(baskets).map_err(|e| match e {
                    bmb_basket::wal::DurableError::Wal(io) => {
                        ServiceFailure::io(format!("append not durable: {io}"))
                    }
                    other => ServiceFailure::other(other.to_string()),
                })?,
                None => engine
                    .store()
                    .append_batch(baskets)
                    .map_err(|e| ServiceFailure::other(e.to_string()))?,
            };
            ctx.metrics.record_ingest(n);
            Ok(Value::object()
                .with("ingested", Value::Int(n as i64))
                .with("epoch", Value::Int(epoch as i64)))
        }
        Request::Checkpoint => {
            let Some(durable) = durable else {
                return Err(ServiceFailure::other(
                    "server has no durable store (started without --wal)".to_string(),
                ));
            };
            let stats = durable.checkpoint().map_err(|e| match e {
                bmb_basket::wal::CheckpointError::Io(io) => {
                    ServiceFailure::io(format!("checkpoint failed: {io}"))
                }
                other => ServiceFailure::other(other.to_string()),
            })?;
            let micros = u64::try_from(stats.duration.as_micros()).unwrap_or(u64::MAX);
            Ok(Value::object()
                .with("epoch", Value::Int(stats.epoch as i64))
                .with("duration_us", Value::Int(micros as i64))
                .with("snapshot_bytes", Value::Int(stats.snapshot_bytes as i64))
                .with(
                    "wal_segments_deleted",
                    Value::Int(stats.wal_segments_deleted as i64),
                )
                .with("reclaimed_bytes", Value::Int(stats.reclaimed_bytes as i64)))
        }
        Request::Stats => {
            let metrics = ctx.metrics.snapshot();
            let cache = engine.cache_stats();
            let store_epoch = engine.store().epoch();
            let lag = store_epoch.saturating_sub(metrics.last_served_epoch);
            let wal = match durable {
                None => "none",
                Some(durable) if durable.is_healthy() => "healthy",
                Some(_) => "degraded",
            };
            let checkpointed = durable.is_some_and(|d| d.is_checkpointed());
            let last_ckpt = durable.map(|d| d.last_checkpoint_epoch()).unwrap_or(0);
            Ok(Value::object()
                .with("requests", Value::Int(metrics.requests as i64))
                .with("errors", Value::Int(metrics.errors as i64))
                .with("connections", Value::Int(metrics.connections as i64))
                .with(
                    "active_connections",
                    Value::Int(metrics.active_connections as i64),
                )
                .with(
                    "rejected_connections",
                    Value::Int(metrics.rejected_connections as i64),
                )
                .with(
                    "max_connections",
                    Value::Int(ctx.config.max_connections.max(1) as i64),
                )
                .with("err_parse", Value::Int(metrics.parse_errors as i64))
                .with("err_overload", Value::Int(metrics.overload_errors as i64))
                .with("err_deadline", Value::Int(metrics.deadline_errors as i64))
                .with("err_io", Value::Int(metrics.io_errors as i64))
                .with("err_other", Value::Int(metrics.other_errors as i64))
                .with("wal", Value::Str(wal.to_string()))
                .with("checkpointed", Value::Bool(checkpointed))
                .with("last_checkpoint_epoch", Value::Int(last_ckpt as i64))
                .with(
                    "ingested_baskets",
                    Value::Int(metrics.ingested_baskets as i64),
                )
                .with("epoch", Value::Int(store_epoch as i64))
                .with("ingest_lag", Value::Int(lag as i64))
                .with("table_hits", Value::Int(cache.table_hits as i64))
                .with("table_misses", Value::Int(cache.table_misses as i64))
                .with("segment_hits", Value::Int(cache.segment_hits as i64))
                .with("segment_misses", Value::Int(cache.segment_misses as i64))
                .with("table_hit_rate", Value::float(cache.table_hit_rate()))
                .with("p50_us", Value::Int(metrics.p50_us as i64))
                .with("p99_us", Value::Int(metrics.p99_us as i64))
                .with("slow_requests", Value::Int(metrics.slow_requests as i64))
                .with("slow_exemplars", slow_exemplars_value(ctx.metrics))
                .with("error_rate", Value::float(metrics.error_rate())))
        }
        Request::Metrics => {
            let mut registries = vec![Arc::clone(engine.observability())];
            if let Some(durable) = durable {
                registries.push(Arc::clone(durable.observability()));
            }
            Ok(Value::object().with("text", Value::Str(exposition(ctx.metrics, &registries))))
        }
        Request::SupportVec { itemsets } => {
            // One snapshot for the whole vector: every support shares an
            // epoch — the invariant the coordinator's Möbius inversion
            // and epoch-vector consistency depend on.
            let snap = engine.snapshot();
            ctx.metrics.record_served_epoch(snap.epoch());
            let n_items = snap.n_items();
            let deadline = ctx.config.request_deadline;
            let mut supports: Vec<Value> = Vec::with_capacity(itemsets.len());
            for items in &itemsets {
                if start.elapsed() > deadline {
                    return Err(ServiceFailure::deadline(deadline));
                }
                if let Some(&bad) = items.iter().find(|&&id| id as usize >= n_items) {
                    return Err(ServiceFailure::other(format!(
                        "item id {bad} out of range (store has {n_items} items)"
                    )));
                }
                let set = Itemset::from_ids(items.iter().copied());
                // The empty itemset's "support" is the basket count: the
                // full-lattice vector a contingency table needs.
                let support = if set.items().is_empty() {
                    snap.n_baskets() as u64
                } else {
                    snap.support(set.items())
                };
                supports.push(Value::Int(support as i64));
            }
            Ok(Value::object()
                .with("epoch", Value::Int(snap.epoch() as i64))
                .with("n", Value::Int(snap.n_baskets() as i64))
                .with("supports", Value::Array(supports)))
        }
        Request::ReplicatePull {
            after_epoch,
            max_baskets,
        } => {
            let Some(durable) = durable else {
                return Err(ServiceFailure::other(
                    "server has no durable store (started without --wal)".to_string(),
                ));
            };
            // Bound the response size regardless of what the follower
            // asks for; it pulls again to keep catching up.
            let batch = durable.ship_after(after_epoch, max_baskets.min(65_536));
            let baskets: Vec<Value> = batch
                .baskets
                .iter()
                .map(|basket| {
                    Value::Array(
                        basket
                            .iter()
                            .map(|item| Value::Int(item.0 as i64))
                            .collect(),
                    )
                })
                .collect();
            Ok(Value::object()
                .with("from_epoch", Value::Int(batch.from_epoch as i64))
                .with("end_epoch", Value::Int(batch.end_epoch as i64))
                .with("shard_epoch", Value::Int(batch.shard_epoch as i64))
                .with("source", Value::Str(batch.source.to_string()))
                .with("baskets", Value::Array(baskets)))
        }
        Request::Integrity { from_epoch } => {
            // Anti-entropy digests: one crc per sealed segment over the
            // canonical basket bytes, so two replicas that applied the
            // same epochs answer bit-identically regardless of how their
            // WALs framed the records.
            let snap = engine.snapshot();
            let digests = bmb_basket::segment_digests(&snap, from_epoch);
            let segments: Vec<Value> = digests
                .iter()
                .map(|d| {
                    Value::object()
                        .with("segment", Value::Int(d.segment as i64))
                        .with("end_epoch", Value::Int(d.end_epoch as i64))
                        .with("crc", Value::Int(i64::from(d.crc)))
                })
                .collect();
            Ok(Value::object()
                .with("epoch", Value::Int(snap.epoch() as i64))
                .with("segments", Value::Array(segments)))
        }
        Request::Scrub { peer } => {
            let Some(durable) = durable else {
                return Err(ServiceFailure::other(
                    "server has no durable store (started without --wal)".to_string(),
                ));
            };
            // The request's peer overrides the configured repair peer so
            // a coordinator can point the scrub at whichever replica it
            // believes is healthy right now.
            let peer_addr = peer.or_else(|| repair_peer.map(str::to_string));
            let options = bmb_basket::ScrubOptions::default();
            let report = match peer_addr {
                Some(addr) => {
                    let mut wire = crate::scrubber::WirePeer::new(&addr);
                    durable.scrub_pass(Some(&mut wire), &options)
                }
                None => durable.scrub_pass(None, &options),
            };
            Ok(scrub_report_value(&report))
        }
        Request::Trace { trace } => Ok(crate::protocol::trace_value(
            trace,
            ctx.metrics.spans().for_trace(trace),
        )),
        Request::Events { since_us } => Ok(events_value(since_us)),
        Request::Promote => Err(ServiceFailure::other(
            "not a follower: 'promote' is only valid on follower processes".to_string(),
        )),
        Request::Demote { .. } => Err(ServiceFailure::other(
            "not a cluster node: 'demote' is only valid on generation-fenced shard processes"
                .to_string(),
        )),
    }
}

/// Encodes a [`bmb_basket::ScrubReport`] as the `scrub` command's
/// response payload (also reused by the coordinator's anti-entropy
/// rollups).
pub fn scrub_report_value(report: &bmb_basket::ScrubReport) -> Value {
    let findings: Vec<Value> = report
        .findings
        .iter()
        .map(|f| Value::Str(f.clone()))
        .collect();
    Value::object()
        .with("scrubbed", Value::Int(report.artifacts_scanned as i64))
        .with("bytes", Value::Int(report.bytes_scanned as i64))
        .with("corruptions", Value::Int(report.corruptions as i64))
        .with("repairs", Value::Int(report.repairs as i64))
        .with("quarantined", Value::Int(report.quarantines as i64))
        .with("degraded", Value::Bool(report.degraded))
        .with("complete", Value::Bool(report.complete))
        .with("findings", Value::Array(findings))
}

/// Acquires a mutex, recovering from poisoning (worker state is a plain
/// channel receiver; any state is valid).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

//! The background checkpointer thread.
//!
//! A [`Checkpointer`] watches a [`DurableStore`] opened in directory
//! mode and writes checkpoints on two triggers, whichever fires first:
//!
//! * **interval** — at most every [`CheckpointerConfig::interval`] of
//!   wall time (skipped when no records arrived since the last one);
//! * **record count** — as soon as the store's epoch has advanced by
//!   [`CheckpointerConfig::every_records`] past the last durable
//!   checkpoint.
//!
//! A failed checkpoint is logged (the store counts it on
//! `bmb_basket_ckpt_errors_total`) and retried at the next trigger —
//! the ingest path never blocks on checkpointing, and a persistently
//! failing checkpointer degrades recovery time, not correctness.
//!
//! The thread wakes every [`CheckpointerConfig::poll_interval`] to
//! check its triggers and the stop flag; [`Checkpointer::stop`] joins
//! it after at most one in-flight checkpoint completes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bmb_basket::wal::DurableStore;
use bmb_obs::Severity;

/// Trigger configuration for the background checkpointer.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointerConfig {
    /// Checkpoint at most this often on wall time (`None` disables the
    /// time trigger). A tick with no new records since the last
    /// checkpoint writes nothing.
    pub interval: Option<Duration>,
    /// Checkpoint once the epoch advances this far past the last
    /// durable checkpoint (`None` disables the count trigger).
    pub every_records: Option<u64>,
    /// How often the thread wakes to evaluate triggers and the stop
    /// flag.
    pub poll_interval: Duration,
}

impl Default for CheckpointerConfig {
    fn default() -> Self {
        CheckpointerConfig {
            interval: Some(Duration::from_secs(60)),
            every_records: Some(100_000),
            poll_interval: Duration::from_millis(100),
        }
    }
}

impl CheckpointerConfig {
    /// Whether any trigger is armed.
    pub fn is_enabled(&self) -> bool {
        self.interval.is_some() || self.every_records.is_some()
    }
}

/// A running background checkpointer; dropping it without calling
/// [`Checkpointer::stop`] detaches the thread (it exits at the next
/// poll after the flag drops).
pub struct Checkpointer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Checkpointer {
    /// Spawns the checkpointer thread over `durable`.
    ///
    /// The store must be checkpointed (opened via `open_dir`);
    /// otherwise every attempt fails with `NotCheckpointed` and is
    /// logged — prefer checking `durable.is_checkpointed()` first.
    pub fn spawn(durable: Arc<DurableStore>, config: CheckpointerConfig) -> Checkpointer {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || run(&durable, config, &flag));
        Checkpointer {
            stop,
            thread: Some(thread),
        }
    }

    /// Signals the thread and joins it. Any in-flight checkpoint
    /// finishes first.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Detach rather than join: drop may run on a thread that cannot
        // afford to block (use `stop` for a clean join).
    }
}

fn run(durable: &DurableStore, config: CheckpointerConfig, stop: &AtomicBool) {
    let mut last_attempt = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(config.poll_interval);
        let epoch = durable.epoch();
        let last_ckpt = durable.last_checkpoint_epoch();
        if epoch == last_ckpt {
            // Nothing new to snapshot; keep the time trigger anchored so
            // an idle server doesn't checkpoint on wake-up.
            last_attempt = Instant::now();
            continue;
        }
        let time_due = config
            .interval
            .is_some_and(|iv| last_attempt.elapsed() >= iv);
        let count_due = config
            .every_records
            .is_some_and(|n| epoch.saturating_sub(last_ckpt) >= n);
        if !(time_due || count_due) {
            continue;
        }
        last_attempt = Instant::now();
        if let Err(e) = durable.checkpoint() {
            // The store already counted and logged the failure; add the
            // trigger context and move on — the next trigger retries.
            bmb_obs::events().emit(
                Severity::Warn,
                "background checkpoint failed",
                &[
                    ("error", &e.to_string()),
                    ("epoch", &epoch.to_string()),
                    ("trigger", if count_due { "records" } else { "interval" }),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::{DurabilityConfig, MemDir, StoreConfig};

    fn open_dir_store() -> Arc<DurableStore> {
        let (store, _) = DurableStore::open_dir(
            Box::new(MemDir::new()),
            8,
            StoreConfig {
                segment_capacity: 4,
            },
            DurabilityConfig::default(),
        )
        .unwrap();
        Arc::new(store)
    }

    #[test]
    fn record_trigger_checkpoints_and_stop_joins() {
        let durable = open_dir_store();
        let ckpt = Checkpointer::spawn(
            Arc::clone(&durable),
            CheckpointerConfig {
                interval: None,
                every_records: Some(5),
                poll_interval: Duration::from_millis(5),
            },
        );
        for i in 0..10u32 {
            durable.append_ids([i % 8]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while durable.last_checkpoint_epoch() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        ckpt.stop();
        assert!(
            durable.last_checkpoint_epoch() >= 5,
            "record-count trigger fired (last = {})",
            durable.last_checkpoint_epoch()
        );
    }

    #[test]
    fn idle_interval_does_not_checkpoint() {
        let durable = open_dir_store();
        let ckpt = Checkpointer::spawn(
            Arc::clone(&durable),
            CheckpointerConfig {
                interval: Some(Duration::from_millis(1)),
                every_records: None,
                poll_interval: Duration::from_millis(1),
            },
        );
        std::thread::sleep(Duration::from_millis(50));
        ckpt.stop();
        assert_eq!(
            durable.last_checkpoint_epoch(),
            0,
            "no records, no checkpoint"
        );
    }
}

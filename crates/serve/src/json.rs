//! A minimal hand-rolled JSON value, parser, and serializer.
//!
//! The wire protocol is line-delimited JSON and the workspace is hermetic
//! (no `serde`), so this module implements the subset the protocol needs:
//! the full JSON grammar on input, and deterministic output — object keys
//! keep insertion order and numbers serialize via Rust's shortest-roundtrip
//! float formatting — so golden-file fixtures are byte-stable.
//!
//! Numbers are kept as [`Value::Int`] when they are integral `i64`s and
//! [`Value::Float`] otherwise; protocol code that expects counts and ids
//! reads [`Value::as_u64`] and never goes through floating point.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed exactly as an `i64` (no `.`, `e`, or overflow).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs (later duplicate keys
    /// win on lookup, all are serialized).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Appends `key: value` when `self` is an object; otherwise no-op.
    /// Returns `self` for chaining.
    pub fn with(mut self, key: &str, value: Value) -> Value {
        if let Value::Object(pairs) = &mut self {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// Member lookup on objects (last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if an integer ([`Value::Float`] does not
    /// coerce — counts and ids must arrive integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as unsigned, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (accepts either number kind).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The element list, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A float value for serialization; non-finite values (which JSON
    /// cannot represent) become `null`.
    pub fn float(f: f64) -> Value {
        if f.is_finite() {
            Value::Float(f)
        } else {
            Value::Null
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => {
                // Keep a float-shaped token even for integral values so the
                // serialization parses back as a Float.
                let text = format!("{x}");
                if text.contains('.') {
                    f.write_str(&text)
                } else {
                    write!(f, "{text}.0")
                }
            }
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

/// Recursion guard: the protocol never nests deeper than a handful of
/// levels; this bounds stack use against adversarial input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: accept and combine; lone
                            // surrogates become U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.low_surrogate(code)
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // slicing is always on a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    /// Reads `\uXXXX` continuation for a high surrogate; the `\u` of the
    /// low half must follow immediately.
    fn low_surrogate(&mut self, high: u32) -> char {
        if self.bytes[self.pos..].starts_with(b"\\u") {
            self.pos += 2;
            if let Ok(low) = self.hex4() {
                if (0xDC00..0xE000).contains(&low) {
                    let combined = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined).unwrap_or('\u{FFFD}');
                }
            }
        }
        '\u{FFFD}'
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.error("expected 4 hex digits")),
            };
            code = (code << 4) | digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            // A magnitude beyond f64 (e.g. `1e999`) would round to
            // infinity, which JSON cannot represent and [`Value::float`]
            // would silently serialize back as `null`; reject it instead.
            Ok(f) if f.is_finite() => Ok(Value::Float(f)),
            Ok(_) => Err(self.error("number out of range")),
            Err(_) => Err(self.error("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let line = r#"{"id":7,"cmd":"chi2","items":[2,7],"nested":{"a":[true,false,null]}}"#;
        let value = parse(line).unwrap();
        assert_eq!(value.get("id").and_then(Value::as_i64), Some(7));
        assert_eq!(value.get("cmd").and_then(Value::as_str), Some("chi2"));
        assert_eq!(value.to_string(), line);
    }

    #[test]
    fn numbers_keep_integrality() {
        let value = parse("[1, -2, 3.5, 1e3, 9223372036854775807]").unwrap();
        let items = value.as_array().unwrap();
        assert_eq!(items[0], Value::Int(1));
        assert_eq!(items[1], Value::Int(-2));
        assert_eq!(items[2], Value::Float(3.5));
        assert_eq!(items[3], Value::Float(1000.0));
        assert_eq!(items[4], Value::Int(i64::MAX));
        // Serialized floats stay recognizable as floats.
        assert_eq!(value.to_string(), "[1,-2,3.5,1000.0,9223372036854775807]");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::Str("line\nquote\"tab\tback\\slash\u{1}".to_string());
        let text = original.to_string();
        assert_eq!(parse(&text).unwrap(), original);
        let unicode = parse(r#""café 😀""#).unwrap();
        assert_eq!(unicode.as_str(), Some("café 😀"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::float(f64::INFINITY).to_string(), "null");
        assert_eq!(Value::float(f64::NAN).to_string(), "null");
        assert_eq!(Value::float(2.5).to_string(), "2.5");
    }

    #[test]
    fn malformed_inputs_are_errors_with_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn duplicate_keys_last_wins_on_lookup() {
        let value = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(value.get("k").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn depth_limit_rejects_bombs() {
        let bomb = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&bomb).is_err());
    }
}

//! The background integrity scrubber thread and the wire repair peer.
//!
//! A [`Scrubber`] walks a [`DurableStore`]'s at-rest artifacts (sealed
//! WAL segments, checkpoints, the manifest, the generation record) on a
//! wall-clock interval, re-verifying every checksum via
//! [`DurableStore::scrub_pass`]. Each wake spends at most
//! [`ScrubberConfig::max_bytes_per_tick`] of read bandwidth; a pass
//! larger than the budget carries its resume cursor to the next tick,
//! so scrubbing never monopolizes the disk the ingest path shares.
//!
//! [`WirePeer`] adapts the line protocol to the store's
//! [`RepairPeer`] trait: a damaged sealed segment is re-fetched from a
//! replica with generation-stamped `replicate_pull` requests, so a
//! stale node can never "repair" itself from a newer generation — the
//! peer fences the fetch and the scrub falls back to its own live
//! store (self-repair of a node's own acked history is always safe).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bmb_basket::wal::DurableStore;
use bmb_basket::{ItemId, PeerError, RepairPeer, ScrubOptions};

use crate::client::{ClientError, RetryClient, RetryPolicy};
use crate::json::Value;

/// A [`RepairPeer`] over the line protocol: fetches epoch ranges from
/// a replica with generation-stamped `replicate_pull` requests.
///
/// The underlying [`RetryClient`] reconnects lazily, so one `WirePeer`
/// can outlive many scrub ticks (and many peer restarts).
pub struct WirePeer {
    addr: String,
    client: RetryClient,
}

impl WirePeer {
    /// A repair peer dialing `addr`; the first fetch connects.
    pub fn new(addr: &str) -> WirePeer {
        WirePeer {
            addr: addr.to_string(),
            client: RetryClient::new(addr, RetryPolicy::default())
                .with_timeout(Duration::from_secs(5)),
        }
    }

    /// The peer's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl RepairPeer for WirePeer {
    fn fetch_range(
        &mut self,
        after_epoch: u64,
        max_baskets: usize,
        generation: u64,
    ) -> Result<Vec<Vec<ItemId>>, PeerError> {
        let request = Value::object()
            .with("cmd", Value::Str("replicate_pull".to_string()))
            .with("after_epoch", Value::Int(after_epoch as i64))
            .with("max_baskets", Value::Int(max_baskets as i64))
            .with("gen", Value::Int(generation as i64));
        let result = self.client.request(&request).map_err(|e| match e {
            ClientError::Fenced { generation, .. } => PeerError::Fenced {
                peer_generation: generation,
            },
            other => PeerError::Unavailable(format!("peer {}: {other}", self.addr)),
        })?;
        let malformed =
            || PeerError::Unavailable(format!("peer {} sent a malformed basket list", self.addr));
        let Some(Value::Array(rows)) = result.get("baskets") else {
            return Err(malformed());
        };
        let mut baskets = Vec::with_capacity(rows.len());
        for row in rows {
            let Value::Array(items) = row else {
                return Err(malformed());
            };
            let mut basket = Vec::with_capacity(items.len());
            for item in items {
                let id = item
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(malformed)?;
                basket.push(ItemId(id));
            }
            baskets.push(basket);
        }
        Ok(baskets)
    }
}

/// Pacing configuration for the background scrubber.
#[derive(Clone, Debug)]
pub struct ScrubberConfig {
    /// Start a new full pass at most this often, measured from the
    /// previous pass's start (`None` disables the scrubber).
    pub interval: Option<Duration>,
    /// Read-bandwidth budget per tick; a pass over budget parks its
    /// resume cursor and continues at the next poll instead of
    /// saturating the disk the ingest path shares.
    pub max_bytes_per_tick: Option<u64>,
    /// Replica to re-fetch damaged sealed segments from (`None` limits
    /// repair to the live store and re-checkpointing).
    pub peer: Option<String>,
    /// How often the thread wakes to evaluate the interval, continue an
    /// in-flight pass, and check the stop flag.
    pub poll_interval: Duration,
}

impl Default for ScrubberConfig {
    fn default() -> Self {
        ScrubberConfig {
            interval: Some(Duration::from_secs(300)),
            max_bytes_per_tick: Some(8 << 20),
            peer: None,
            poll_interval: Duration::from_millis(100),
        }
    }
}

impl ScrubberConfig {
    /// Whether the scrubber will run at all.
    pub fn is_enabled(&self) -> bool {
        self.interval.is_some()
    }
}

/// A running background scrubber; dropping it without calling
/// [`Scrubber::stop`] detaches the thread (it exits at the next poll
/// after the flag drops).
pub struct Scrubber {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Scrubber {
    /// Spawns the scrubber thread over `durable`. The first pass starts
    /// one poll after spawn; subsequent passes start `interval` apart.
    pub fn spawn(durable: Arc<DurableStore>, config: ScrubberConfig) -> Scrubber {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || run(&durable, &config, &flag));
        Scrubber {
            stop,
            thread: Some(thread),
        }
    }

    /// Signals the thread and joins it. Any in-flight scrub tick
    /// finishes first.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Detach rather than join: drop may run on a thread that cannot
        // afford to block (use `stop` for a clean join).
    }
}

fn run(durable: &DurableStore, config: &ScrubberConfig, stop: &AtomicBool) {
    let Some(interval) = config.interval else {
        return;
    };
    let mut peer = config.peer.as_deref().map(WirePeer::new);
    let mut cursor: Option<String> = None;
    let mut next_pass = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(config.poll_interval);
        // A parked cursor means a pass is mid-flight: keep draining it
        // tick by tick; the interval gates only the start of new passes.
        if cursor.is_none() && Instant::now() < next_pass {
            continue;
        }
        if cursor.is_none() {
            next_pass = Instant::now() + interval;
        }
        let options = ScrubOptions {
            max_bytes: config.max_bytes_per_tick,
            resume_after: cursor.take(),
        };
        let report = match peer.as_mut() {
            Some(p) => durable.scrub_pass(Some(p as &mut dyn RepairPeer), &options),
            None => durable.scrub_pass(None, &options),
        };
        cursor = report.resume_after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    use bmb_basket::storage::SharedDirState;
    use bmb_basket::{Dir, DurabilityConfig, MemDir, StoreConfig};
    use bmb_core::{EngineConfig, QueryEngine};

    use crate::server::{Server, ServerConfig};

    fn open_store() -> (Arc<DurableStore>, SharedDirState) {
        let media = MemDir::new();
        let state = media.state();
        let (store, _) = DurableStore::open_dir(
            Box::new(media),
            8,
            StoreConfig {
                segment_capacity: 4,
            },
            DurabilityConfig {
                segment_bytes: 64,
                ..DurabilityConfig::default()
            },
        )
        .expect("open store");
        (Arc::new(store), state)
    }

    fn ingest(store: &DurableStore, n: u32) {
        for i in 0..n {
            store
                .append_ids([i % 3, 3 + (i % 5)])
                .expect("append basket");
        }
    }

    fn read_file(state: &SharedDirState, name: &str) -> Vec<u8> {
        let mut dir = MemDir::with_state(Arc::clone(state));
        let mut f = dir.open(name).expect("open");
        f.read_all().expect("read")
    }

    fn flip_byte(state: &SharedDirState, name: &str, offset: usize) {
        let mut dir = MemDir::with_state(Arc::clone(state));
        let mut f = dir.open(name).expect("open");
        let mut bytes = f.read_all().expect("read");
        bytes[offset] ^= 0xFF;
        f.truncate(0).expect("truncate");
        f.append(&bytes).expect("append");
        f.sync().expect("sync");
    }

    /// The oldest WAL segment name — sealed, since at least one newer
    /// (active) segment exists after it.
    fn oldest_sealed_segment(state: &SharedDirState) -> String {
        let mut dir = MemDir::with_state(Arc::clone(state));
        let mut names: Vec<String> = dir
            .list()
            .expect("list")
            .into_iter()
            .filter(|n| n.starts_with("wal."))
            .collect();
        names.sort();
        assert!(names.len() >= 2, "need a sealed segment: {names:?}");
        names.remove(0)
    }

    /// A live WAL-backed server answers `WirePeer::fetch_range` with the
    /// baskets it acked, in epoch order.
    #[test]
    fn wire_peer_pulls_acked_baskets_from_a_live_server() {
        let (durable, _state) = open_store();
        ingest(&durable, 6);
        let engine = Arc::new(QueryEngine::new(
            Arc::clone(durable.store()),
            EngineConfig::default(),
        ));
        let running = Server::bind(engine, ServerConfig::default())
            .expect("bind")
            .with_durable_store(Arc::clone(&durable))
            .spawn();

        let mut peer = WirePeer::new(&running.addr.to_string());
        // The shipper may stop a batch at a segment boundary; loop just
        // as the scrub's fetch does until the range is covered.
        let mut baskets = Vec::new();
        let mut after = 2u64;
        while baskets.len() < 3 {
            let batch = peer
                .fetch_range(after, 3 - baskets.len(), 0)
                .expect("fetch");
            assert!(!batch.is_empty(), "peer must make progress");
            after += batch.len() as u64;
            baskets.extend(batch);
        }
        assert_eq!(baskets.len(), 3, "epochs 3..=5");
        assert_eq!(baskets[0], vec![ItemId(2 % 3), ItemId(3 + (2 % 5))]);
        running.stop().expect("stop");
    }

    /// A fenced `replicate_pull` surfaces as [`PeerError::Fenced`] with
    /// the peer's generation — the signal the scrub uses to fall back
    /// to local repair instead of adopting a stale view.
    #[test]
    fn wire_peer_maps_fenced_rejections() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let banner = crate::protocol::HELLO;
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            writeln!(writer, "{banner}").expect("banner");
            let mut line = String::new();
            reader.read_line(&mut line).expect("request");
            writeln!(
                writer,
                r#"{{"ok":false,"error":"stale generation","fenced":true,"gen":9}}"#
            )
            .expect("fenced line");
        });
        let mut peer = WirePeer::new(&addr.to_string());
        match peer.fetch_range(0, 4, 1) {
            Err(PeerError::Fenced { peer_generation }) => assert_eq!(peer_generation, 9),
            other => panic!("expected fenced, got {other:?}"),
        }
        server.join().expect("fake peer thread");
    }

    /// End to end: flip a byte in a sealed segment, spawn the scrubber,
    /// and watch it detect, quarantine, and repair back to the pristine
    /// bytes without any explicit scrub request.
    #[test]
    fn background_scrubber_repairs_a_corrupted_segment() {
        let (durable, state) = open_store();
        ingest(&durable, 10);
        durable.checkpoint().expect("checkpoint");
        ingest(&durable, 8); // keep sealed segments past the checkpoint
        let name = oldest_sealed_segment(&state);
        let pristine = read_file(&state, &name);
        flip_byte(&state, &name, pristine.len() / 2);
        assert_ne!(read_file(&state, &name), pristine);

        let scrubber = Scrubber::spawn(
            Arc::clone(&durable),
            ScrubberConfig {
                interval: Some(Duration::from_millis(1)),
                max_bytes_per_tick: None,
                peer: None,
                poll_interval: Duration::from_millis(1),
            },
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while read_file(&state, &name) != pristine && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        scrubber.stop();
        assert_eq!(
            read_file(&state, &name),
            pristine,
            "scrubber restored the sealed segment byte-for-byte"
        );
        assert!(durable.is_healthy(), "repair, not degradation");
    }
}

//! Transaction assembly: the Quest generator's main loop.
//!
//! Each transaction draws a Poisson size, then packs in weighted patterns.
//! A chosen pattern is first *corrupted* — items are dropped while a
//! uniform draw stays below the pattern's corruption level — and then
//! added if it fits; an oversized pattern is added anyway half the time
//! and otherwise deferred to the next transaction, exactly as Agrawal &
//! Srikant describe.

use bmb_basket::{BasketDatabase, ItemId};
use bmb_sampling::poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::QuestParams;
use crate::patterns::{Pattern, PatternPool};

/// Generates a full basket database from `params`.
///
/// Deterministic given `params.seed`.
pub fn generate(params: &QuestParams) -> BasketDatabase {
    params.validate();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let pool = PatternPool::generate(params, &mut rng);
    let mut db = BasketDatabase::new(params.n_items);
    // A pattern pushed out of a full transaction moves to the next one.
    let mut deferred: Option<Vec<ItemId>> = None;
    for _ in 0..params.n_transactions {
        let target = poisson(&mut rng, params.avg_transaction_len) as usize;
        let mut basket: Vec<ItemId> = Vec::with_capacity(target + 4);
        while basket.len() < target {
            let corrupted = match deferred.take() {
                Some(items) => items,
                None => corrupt(pool.sample(&mut rng), &mut rng),
            };
            if corrupted.is_empty() {
                continue;
            }
            if basket.len() + corrupted.len() <= target {
                basket.extend_from_slice(&corrupted);
            } else if rng.gen_bool(0.5) {
                // "If the itemset does not fit ... it is added to the
                // transaction anyway in half the cases."
                basket.extend_from_slice(&corrupted);
                break;
            } else {
                deferred = Some(corrupted);
                break;
            }
        }
        db.push_basket(basket);
    }
    db
}

/// Drops items from a pattern: each drop happens while a uniform draw is
/// below the pattern's corruption level.
fn corrupt<R: Rng + ?Sized>(pattern: &Pattern, rng: &mut R) -> Vec<ItemId> {
    let mut items = pattern.items.clone();
    while !items.is_empty() && rng.gen_range(0.0..1.0) < pattern.corruption {
        let victim = rng.gen_range(0..items.len());
        items.swap_remove(victim);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::SupportCounter;

    fn small_params() -> QuestParams {
        QuestParams {
            n_transactions: 4000,
            n_items: 200,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            n_patterns: 50,
            seed: 2024,
            ..Default::default()
        }
    }

    #[test]
    fn database_shape() {
        let params = small_params();
        let db = generate(&params);
        assert_eq!(db.len(), 4000);
        assert_eq!(db.n_items(), 200);
        // Mean basket size lands near |T| (corruption trims, the
        // half-the-time overshoot adds back).
        let mean = db.mean_basket_len();
        assert!(
            (mean - 10.0).abs() < 1.5,
            "mean basket length {mean} too far from |T| = 10"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let params = small_params();
        let a = generate(&params);
        let b = generate(&params);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.basket(i), b.basket(i), "basket {i} differs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_params());
        let b = generate(&QuestParams {
            seed: 9,
            ..small_params()
        });
        let same = (0..a.len()).all(|i| a.basket(i) == b.basket(i));
        assert!(!same);
    }

    #[test]
    fn planted_patterns_are_frequent() {
        // The heaviest patterns should co-occur far more often than chance:
        // compare the support of a heavy pattern's pair against the product
        // of its item frequencies.
        let params = small_params();
        let db = generate(&params);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let pool = PatternPool::generate(&params, &mut rng);
        let counter = bmb_basket::BitmapCounter::build(&db);
        let n = db.len() as f64;
        let heavy = pool
            .patterns()
            .iter()
            .filter(|p| p.items.len() >= 2)
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap())
            .expect("some pattern has >= 2 items");
        let pair = [heavy.items[0], heavy.items[1]];
        let joint = counter.support_count(&pair) as f64 / n;
        let expected = (db.item_frequency(pair[0])) * (db.item_frequency(pair[1]));
        assert!(
            joint > expected * 2.0,
            "pattern pair not correlated: joint {joint:.5} vs independent {expected:.5}"
        );
    }

    #[test]
    fn all_items_in_range_and_sorted() {
        let db = generate(&small_params());
        for basket in db.baskets() {
            assert!(basket.windows(2).all(|w| w[0] < w[1]));
            assert!(basket.iter().all(|i| i.index() < 200));
        }
    }

    #[test]
    fn zero_transactions() {
        let db = generate(&QuestParams {
            n_transactions: 0,
            ..small_params()
        });
        assert!(db.is_empty());
    }
}

//! # bmb-quest — the IBM Quest synthetic data generator, reimplemented
//!
//! Section 5.3 of *Beyond Market Baskets* evaluates pruning on "synthetic
//! data from IBM's Quest group". The original generator is not
//! distributable, so this crate reimplements the published algorithm
//! (Agrawal & Srikant, VLDB '94): weighted "potentially large" itemsets
//! with inter-pattern correlation and per-use corruption, packed into
//! Poisson-sized transactions.
//!
//! ```
//! use bmb_quest::{generate, QuestParams};
//!
//! let db = generate(&QuestParams {
//!     n_transactions: 100,
//!     n_items: 50,
//!     avg_transaction_len: 5.0,
//!     n_patterns: 10,
//!     ..QuestParams::default()
//! });
//! assert_eq!(db.len(), 100);
//! ```

#![warn(missing_docs)]

/// Transaction assembly: the generator's main loop.
pub mod generator;
/// Parameters of the Quest synthetic generator.
pub mod params;
/// The "potentially large" itemsets seeding transactions.
pub mod patterns;

pub use generator::generate;
pub use params::QuestParams;
pub use patterns::{Pattern, PatternPool};

//! The "potentially large" itemsets seeding Quest transactions.
//!
//! Following Agrawal & Srikant: pattern sizes are Poisson around `|I|`
//! (minimum 1); each pattern shares an exponentially-distributed fraction
//! of its items with its predecessor (modelling the fact that frequent
//! itemsets overlap); pattern weights are exponential and normalized, and
//! each pattern carries a corruption level drawn from a clamped normal.

use bmb_basket::ItemId;
use bmb_sampling::{exponential, normal, poisson, AliasTable, Zipf};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::params::QuestParams;

/// One potentially large itemset.
#[derive(Clone, Debug)]
pub struct Pattern {
    /// The items, sorted.
    pub items: Vec<ItemId>,
    /// Relative selection weight (normalized across the pattern set).
    pub weight: f64,
    /// Corruption level in `[0,1]`: higher means more items dropped per use.
    pub corruption: f64,
}

/// The full pattern pool plus its weighted sampler.
#[derive(Clone, Debug)]
pub struct PatternPool {
    patterns: Vec<Pattern>,
    sampler: AliasTable,
}

impl PatternPool {
    /// Generates the pool from `params` using `rng`.
    pub fn generate<R: Rng + ?Sized>(params: &QuestParams, rng: &mut R) -> Self {
        params.validate();
        // Item popularity: uniform at exponent 0, power-law above.
        let popularity = Zipf::new(params.n_items, params.item_zipf_exponent);
        let mut patterns: Vec<Pattern> = Vec::with_capacity(params.n_patterns);
        let mut previous: Vec<ItemId> = Vec::new();
        for _ in 0..params.n_patterns {
            let size = (poisson(rng, params.avg_pattern_len - 1.0) + 1).min(params.n_items as u64)
                as usize;
            let mut items: Vec<ItemId> = Vec::with_capacity(size);
            // Carry over a fraction of the previous pattern's items.
            if !previous.is_empty() && params.correlation > 0.0 {
                let frac = exponential(rng, 1.0 / params.correlation).min(1.0);
                let carry = ((frac * size as f64).round() as usize)
                    .min(previous.len())
                    .min(size);
                let mut prev = previous.clone();
                prev.shuffle(rng);
                items.extend(prev.into_iter().take(carry));
            }
            // Fill the remainder with fresh items drawn by popularity.
            while items.len() < size {
                let candidate = ItemId(popularity.sample(rng) as u32);
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            items.sort_unstable();
            items.dedup();
            let weight = exponential(rng, 1.0);
            let corruption =
                normal(rng, params.corruption_mean, params.corruption_sd).clamp(0.0, 1.0);
            previous.clone_from(&items);
            patterns.push(Pattern {
                items,
                weight,
                corruption,
            });
        }
        let total: f64 = patterns.iter().map(|p| p.weight).sum();
        for p in &mut patterns {
            p.weight /= total;
        }
        let sampler = AliasTable::new(&patterns.iter().map(|p| p.weight).collect::<Vec<f64>>());
        PatternPool { patterns, sampler }
    }

    /// All patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Draws one pattern index by weight.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sampler.sample(rng)
    }

    /// Draws a reference to one pattern by weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &Pattern {
        &self.patterns[self.sample_index(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool(params: &QuestParams) -> PatternPool {
        let mut rng = StdRng::seed_from_u64(params.seed);
        PatternPool::generate(params, &mut rng)
    }

    #[test]
    fn pool_size_and_item_validity() {
        let params = QuestParams {
            n_patterns: 500,
            n_items: 100,
            ..Default::default()
        };
        let pool = pool(&params);
        assert_eq!(pool.patterns().len(), 500);
        for p in pool.patterns() {
            assert!(!p.items.is_empty());
            assert!(
                p.items.windows(2).all(|w| w[0] < w[1]),
                "items not sorted/deduped"
            );
            assert!(p.items.iter().all(|i| i.index() < 100));
            assert!((0.0..=1.0).contains(&p.corruption));
        }
    }

    #[test]
    fn weights_normalized() {
        let params = QuestParams {
            n_patterns: 300,
            ..Default::default()
        };
        let pool = pool(&params);
        let total: f64 = pool.patterns().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_pattern_size_tracks_parameter() {
        let params = QuestParams {
            n_patterns: 4000,
            avg_pattern_len: 4.0,
            n_items: 1000,
            ..Default::default()
        };
        let pool = pool(&params);
        let mean: f64 = pool
            .patterns()
            .iter()
            .map(|p| p.items.len() as f64)
            .sum::<f64>()
            / pool.patterns().len() as f64;
        assert!((mean - 4.0).abs() < 0.25, "mean pattern size {mean}");
    }

    #[test]
    fn consecutive_patterns_overlap_more_than_random() {
        let params = QuestParams {
            n_patterns: 2000,
            n_items: 1000,
            avg_pattern_len: 6.0,
            correlation: 0.9,
            ..Default::default()
        };
        let pool = pool(&params);
        let overlap = |a: &[ItemId], b: &[ItemId]| a.iter().filter(|i| b.contains(i)).count();
        let consecutive: usize = pool
            .patterns()
            .windows(2)
            .map(|w| overlap(&w[0].items, &w[1].items))
            .sum();
        let distant: usize = (0..pool.patterns().len() - 500)
            .map(|i| overlap(&pool.patterns()[i].items, &pool.patterns()[i + 500].items))
            .sum();
        assert!(
            consecutive > distant * 2,
            "consecutive overlap {consecutive} vs distant {distant}"
        );
    }

    #[test]
    fn weighted_sampling_prefers_heavy_patterns() {
        let params = QuestParams {
            n_patterns: 50,
            ..Default::default()
        };
        let pool = pool(&params);
        let heaviest = pool
            .patterns()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.weight.partial_cmp(&b.1.weight).unwrap())
            .unwrap()
            .0;
        let lightest = pool
            .patterns()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.weight.partial_cmp(&b.1.weight).unwrap())
            .unwrap()
            .0;
        let mut rng = StdRng::seed_from_u64(1234);
        let mut counts = vec![0u64; 50];
        for _ in 0..100_000 {
            counts[pool.sample_index(&mut rng)] += 1;
        }
        assert!(counts[heaviest] > counts[lightest]);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = QuestParams {
            n_patterns: 100,
            ..Default::default()
        };
        let a = pool(&params);
        let b = pool(&params);
        for (x, y) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(x.items, y.items);
            assert_eq!(x.weight, y.weight);
        }
    }
}

//! Parameters of the Quest synthetic market-basket generator.
//!
//! Named after the knobs in Agrawal & Srikant's VLDB '94 description:
//! `|D|` transactions of average size `|T|`, assembled from `|L|`
//! "potentially large" itemsets of average size `|I|` over `N` items. The
//! paper's Section 5.3 run is `|D| = 99,997`, `N = 870`, `|T| = 20`,
//! `|I| = 4`.

/// Full parameter set for one generated database.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuestParams {
    /// `|D|`: number of transactions (baskets).
    pub n_transactions: usize,
    /// `N`: number of items.
    pub n_items: usize,
    /// `|T|`: average transaction size (Poisson mean).
    pub avg_transaction_len: f64,
    /// `|I|`: average size of the potentially large itemsets (Poisson mean).
    pub avg_pattern_len: f64,
    /// `|L|`: number of potentially large itemsets.
    pub n_patterns: usize,
    /// Mean of the per-pattern corruption level (normal; A-S use 0.5).
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level (A-S use 0.1).
    pub corruption_sd: f64,
    /// Mean fraction of items shared with the previous pattern
    /// (exponential; A-S call this the correlation level, 0.5).
    pub correlation: f64,
    /// Zipf exponent of item popularity when patterns draw their items:
    /// 0 = uniform (the A-S description); positive values skew item
    /// frequencies the way real retail catalogs are skewed. The paper's
    /// Table 5 run clearly sat on skewed data (only ~127 of 870 items
    /// clear the 1% support threshold), so [`QuestParams::paper_table5`]
    /// uses 1.3, which lands in the same regime.
    pub item_zipf_exponent: f64,
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for QuestParams {
    /// The Agrawal–Srikant defaults with a modest database size.
    fn default() -> Self {
        QuestParams {
            n_transactions: 10_000,
            n_items: 1000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            n_patterns: 2000,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            correlation: 0.5,
            item_zipf_exponent: 0.0,
            seed: 0x5151_u64,
        }
    }
}

impl QuestParams {
    /// The exact workload of the paper's Table 5: 99,997 baskets over 870
    /// items, average basket size 20, average pattern size 4.
    pub fn paper_table5() -> Self {
        QuestParams {
            n_transactions: 99_997,
            n_items: 870,
            avg_transaction_len: 20.0,
            avg_pattern_len: 4.0,
            item_zipf_exponent: 1.3,
            ..Default::default()
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values (zero items, negative means, corruption
    /// outside `[0,1]` reachability, etc.).
    pub fn validate(&self) {
        assert!(self.n_items > 0, "need at least one item");
        assert!(self.n_patterns > 0, "need at least one pattern");
        assert!(
            self.avg_transaction_len > 0.0 && self.avg_transaction_len.is_finite(),
            "average transaction length must be positive"
        );
        assert!(
            self.avg_pattern_len >= 1.0 && self.avg_pattern_len.is_finite(),
            "average pattern length must be at least 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.corruption_mean),
            "corruption mean must be in [0,1]"
        );
        assert!(
            self.corruption_sd >= 0.0,
            "corruption sd must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.correlation),
            "correlation must be in [0,1]"
        );
        assert!(
            self.item_zipf_exponent >= 0.0 && self.item_zipf_exponent.is_finite(),
            "item Zipf exponent must be >= 0"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        QuestParams::default().validate();
        QuestParams::paper_table5().validate();
    }

    #[test]
    fn paper_table5_matches_published_workload() {
        let p = QuestParams::paper_table5();
        assert_eq!(p.n_transactions, 99_997);
        assert_eq!(p.n_items, 870);
        assert_eq!(p.avg_transaction_len, 20.0);
        assert_eq!(p.avg_pattern_len, 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_invalid() {
        QuestParams {
            n_items: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "corruption mean")]
    fn bad_corruption_invalid() {
        QuestParams {
            corruption_mean: 1.5,
            ..Default::default()
        }
        .validate();
    }
}

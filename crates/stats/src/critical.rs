//! Critical values of the chi-squared distribution.
//!
//! The paper's cutoff "3.84 at the 95% significance level" is
//! `χ²_{0.95}` with one degree of freedom. This module provides both exact
//! computation (via [`ChiSquared::quantile`]) and a precomputed table of the
//! values "obtained from widely available tables for the chi-squared
//! distribution", which doubles as a regression check on the quantile code.

use crate::chi2dist::ChiSquared;

/// A significance level `α` in `(0, 1)`, e.g. 0.95.
///
/// Under the null hypothesis, `χ² < χ²_α` with probability `α`; an observed
/// statistic at or above the cutoff rejects independence at level `α`.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct SignificanceLevel(f64);

impl SignificanceLevel {
    /// The paper's default: 95%.
    pub const P95: SignificanceLevel = SignificanceLevel(0.95);
    /// 90%.
    pub const P90: SignificanceLevel = SignificanceLevel(0.90);
    /// 99%.
    pub const P99: SignificanceLevel = SignificanceLevel(0.99);

    /// Creates a level.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "significance level must be in (0,1), got {alpha}"
        );
        SignificanceLevel(alpha)
    }

    /// The raw `α`.
    pub fn alpha(self) -> f64 {
        self.0
    }

    /// The cutoff `χ²_α` for the given degrees of freedom.
    pub fn critical_value(self, df: f64) -> f64 {
        ChiSquared::new(df).quantile(self.0)
    }
}

/// The classic textbook table: `(df, α, χ²_α)` rows as printed in
/// Moore-style statistics appendices.
pub const TEXTBOOK_TABLE: &[(u32, f64, f64)] = &[
    (1, 0.90, 2.706),
    (1, 0.95, 3.841),
    (1, 0.99, 6.635),
    (2, 0.90, 4.605),
    (2, 0.95, 5.991),
    (2, 0.99, 9.210),
    (3, 0.90, 6.251),
    (3, 0.95, 7.815),
    (3, 0.99, 11.345),
    (4, 0.95, 9.488),
    (5, 0.95, 11.070),
    (6, 0.95, 12.592),
    (7, 0.95, 14.067),
    (8, 0.95, 15.507),
    (9, 0.95, 16.919),
    (10, 0.95, 18.307),
    (15, 0.95, 24.996),
    (20, 0.95, 31.410),
    (25, 0.95, 37.652),
    (30, 0.95, 43.773),
];

/// Looks up a critical value in [`TEXTBOOK_TABLE`], falling back to exact
/// computation when the `(df, α)` pair is not tabulated.
pub fn critical_value(alpha: f64, df: u32) -> f64 {
    for &(tdf, talpha, value) in TEXTBOOK_TABLE {
        if tdf == df && (talpha - alpha).abs() < 1e-12 {
            return value;
        }
    }
    SignificanceLevel::new(alpha).critical_value(df as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cutoff() {
        // "If it is higher than a cutoff value (3.84 at the 95% significance
        // level) we reject the independence assumption."
        assert!((critical_value(0.95, 1) - 3.841).abs() < 1e-9);
        assert!((SignificanceLevel::P95.critical_value(1.0) - 3.841).abs() < 5e-4);
    }

    #[test]
    fn table_agrees_with_quantile_code() {
        for &(df, alpha, value) in TEXTBOOK_TABLE {
            let exact = ChiSquared::new(df as f64).quantile(alpha);
            assert!(
                (exact - value).abs() < 5e-4 * (1.0 + value),
                "table entry (df={df}, α={alpha}) = {value} but quantile gives {exact}"
            );
        }
    }

    #[test]
    fn untabulated_pairs_fall_back() {
        let v = critical_value(0.975, 1);
        assert!((v - 5.024).abs() < 5e-3);
        let v = critical_value(0.95, 42);
        assert!((v - 58.124).abs() < 5e-2);
    }

    #[test]
    fn higher_alpha_means_higher_cutoff() {
        let c90 = SignificanceLevel::P90.critical_value(1.0);
        let c95 = SignificanceLevel::P95.critical_value(1.0);
        let c99 = SignificanceLevel::P99.critical_value(1.0);
        assert!(c90 < c95 && c95 < c99);
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn degenerate_level_panics() {
        SignificanceLevel::new(1.0);
    }
}

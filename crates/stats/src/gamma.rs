//! Gamma-function machinery implemented from scratch.
//!
//! The chi-squared distribution's CDF is a regularized lower incomplete
//! gamma function, so everything in [`crate::chi2dist`] rests on this
//! module: a Lanczos approximation of `ln Γ`, the series expansion of
//! `P(a, x)` for small `x`, and a modified-Lentz continued fraction of
//! `Q(a, x)` for large `x`.

/// Relative tolerance for the series / continued-fraction iterations.
const EPS: f64 = 1e-14;
/// Iteration cap; generous — convergence is typically < 100 terms.
const MAX_ITER: usize = 500;

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's values).
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)] // published constants, kept verbatim
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~14 significant digits via the Lanczos approximation with
/// reflection for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is not finite or `x <= 0` on the reflected branch where
/// `Γ` has poles (non-positive integers).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma needs a finite argument, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        // `.abs() > 0.0` rejects both signed zeros (and NaN) — the poles
        // of Γ at the non-positive integers, where sin(πx) vanishes.
        assert!(
            sin_pi_x.abs() > 0.0,
            "ln_gamma has a pole at non-positive integer {x}"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. This is the chi-squared CDF with
/// `a = df/2`, `x = stat/2`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape parameter must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    // The asserted lower edge: the incomplete gamma integral is empty.
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly on the continued-fraction branch so the extreme upper
/// tail does not lose precision to cancellation.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape parameter must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    // The asserted lower edge: the incomplete gamma integral is empty.
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Natural log of `Q(a, x)`, stable in the far upper tail where `Q`
/// underflows an `f64` (e.g. chi-squared statistics in the thousands).
pub fn ln_regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape parameter must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    // The asserted lower edge: the incomplete gamma integral is empty.
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        return (1.0 - gamma_p_series(a, x)).ln();
    }
    let h = gamma_q_continued_fraction_raw(a, x);
    -x + a * x.ln() - ln_gamma(a) + h.ln()
}

/// Series expansion: `P(a,x) = e^{−x} x^a / Γ(a) · Σ_k x^k / (a(a+1)...(a+k))`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (sum * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Modified Lentz evaluation of the continued fraction for `Q(a, x)`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    let h = gamma_q_continued_fraction_raw(a, x);
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (h * log_prefix.exp()).clamp(0.0, 1.0)
}

/// The continued-fraction factor `h` with `Q(a,x) = h · e^{−x} x^a / Γ(a)`.
fn gamma_q_continued_fraction_raw(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_at_integers_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-12);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_at_half_integers() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2, Γ(5/2) = 3√π/4.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12);
        close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12);
        close(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // Γ(x+1) = x·Γ(x) ⇒ lnΓ(x+1) = ln x + lnΓ(x)
        for &x in &[0.1, 0.9, 1.3, 4.7, 25.0, 100.5] {
            close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11);
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(regularized_gamma_p(3.0, 0.0), 0.0);
        assert_eq!(regularized_gamma_q(3.0, 0.0), 1.0);
        close(regularized_gamma_p(1.0, 700.0), 1.0, 1e-12);
        assert!(regularized_gamma_q(1.0, 700.0) < 1e-300 * 1e10);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // a = 1 ⇒ P(1, x) = 1 − e^{−x}.
        for &x in &[0.01, 0.5, 1.0, 3.0, 10.0] {
            close(regularized_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_p_half_matches_erf() {
        // P(1/2, x) = erf(√x); check against tabulated erf values.
        // erf(1) = 0.8427007929497149, erf(0.5) = 0.5204998778130465.
        close(
            regularized_gamma_p(0.5, 1.0),
            0.842_700_792_949_714_9,
            1e-10,
        );
        close(
            regularized_gamma_p(0.5, 0.25),
            0.520_499_877_813_046_5,
            1e-10,
        );
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 55.0] {
            for &x in &[0.1, 1.0, 2.0, 9.0, 40.0, 120.0] {
                let p = regularized_gamma_p(a, x);
                let q = regularized_gamma_q(a, x);
                close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let a = 3.7;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.25;
            let p = regularized_gamma_p(a, x);
            assert!(p >= prev, "P({a},{x}) = {p} < previous {prev}");
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_shape_panics() {
        regularized_gamma_p(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_argument_panics() {
        regularized_gamma_p(1.0, -0.5);
    }
}

//! The chi-squared test for independence over contingency tables.
//!
//! For an itemset `S` with table cells `r`, the statistic is
//!
//! ```text
//! χ² = Σ_r (O(r) − E[r])² / E[r]
//! ```
//!
//! compared against the cutoff `χ²_α`. Following Appendix A of the paper,
//! the binomial (presence/absence) table is treated as having **one degree
//! of freedom regardless of the itemset size** — that single-df convention
//! is what makes Theorem 1's upward closure argument go through, and it is
//! the convention all of the paper's numbers (3.84 cutoff everywhere) use.
//! The saturated-model df `2^m − m − 1` is also exposed for users who want
//! the orthodox test.
//!
//! Sparse tables use the paper's massaged form
//! `χ² = Σ_{O(r)>0} O(r)(O(r) − 2E[r])/E[r] + Σ_r E[r]`, so only occupied
//! cells are visited (`Σ_r E[r] = n`).

use bmb_basket::categorical::CategoricalTable;
use bmb_basket::{ContingencyTable, SparseContingencyTable};

use crate::chi2dist::ChiSquared;
use crate::critical::SignificanceLevel;

/// Which degrees-of-freedom convention to use for binary tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DfConvention {
    /// The paper's Appendix A: always one degree of freedom.
    #[default]
    PaperSingle,
    /// The saturated independence model: `2^m − m − 1` for an `m`-itemset
    /// (reduces to 1 for pairs, matching the classic 2×2 test).
    Saturated,
}

impl DfConvention {
    /// Degrees of freedom for an `m`-item presence/absence table.
    pub fn df_for_dims(self, m: usize) -> f64 {
        match self {
            DfConvention::PaperSingle => 1.0,
            DfConvention::Saturated => {
                let cells = (1u64 << m) as f64;
                (cells - m as f64 - 1.0).max(1.0)
            }
        }
    }
}

/// Configuration for the chi-squared test.
#[derive(Clone, Copy, Debug)]
pub struct Chi2Test {
    /// Significance level α; the cutoff is `χ²_α` at the chosen df.
    pub level: SignificanceLevel,
    /// Degrees-of-freedom convention for binary tables.
    pub df: DfConvention,
    /// When set, cells with expectation below this value are excluded from
    /// the statistic — the paper's pragmatic answer to the normal
    /// approximation breaking down on rare cells (Section 3.3).
    pub low_expectation_cutoff: Option<f64>,
}

impl Default for Chi2Test {
    fn default() -> Self {
        Chi2Test {
            level: SignificanceLevel::P95,
            df: DfConvention::PaperSingle,
            low_expectation_cutoff: None,
        }
    }
}

/// Outcome of one chi-squared test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Chi2Outcome {
    /// The statistic value.
    pub statistic: f64,
    /// Degrees of freedom used for the cutoff.
    pub df: f64,
    /// The cutoff `χ²_α`.
    pub cutoff: f64,
    /// Whether the statistic meets or exceeds the cutoff.
    pub significant: bool,
    /// Natural log of the p-value `P[χ² > statistic]`.
    pub ln_p_value: f64,
    /// Number of cells that were skipped by the low-expectation policy.
    pub cells_ignored: usize,
}

impl Chi2Outcome {
    /// The p-value; may underflow to zero for extreme statistics — use
    /// [`Chi2Outcome::ln_p_value`] when that matters.
    pub fn p_value(&self) -> f64 {
        self.ln_p_value.exp()
    }
}

impl Chi2Test {
    /// A test at significance level α with the paper's conventions.
    pub fn at_level(alpha: f64) -> Self {
        Chi2Test {
            level: SignificanceLevel::new(alpha),
            ..Default::default()
        }
    }

    /// Tests a dense presence/absence table.
    pub fn test_dense(&self, table: &ContingencyTable) -> Chi2Outcome {
        crate::contracts::assert_table_consistent("χ² input table", table);
        let mut stat = 0.0;
        let mut ignored = 0usize;
        for (cell, observed) in table.cells() {
            let expected = table.expected(cell);
            if let Some(cutoff) = self.low_expectation_cutoff {
                if expected < cutoff {
                    ignored += 1;
                    continue;
                }
            }
            if expected > 0.0 {
                let d = observed as f64 - expected;
                stat += d * d / expected;
            }
            // expected == 0 forces observed == 0 (a zero marginal); the
            // cell's contribution is the 0/0 limit, i.e. zero.
        }
        self.outcome(stat, self.df.df_for_dims(table.dims()), ignored)
    }

    /// Tests a sparse table using the occupied-cells-only formula.
    ///
    /// The low-expectation policy cannot drop *unoccupied* cells here (they
    /// are never materialized); their aggregate expectation is retained in
    /// the `+ n` term, matching the paper's treatment.
    pub fn test_sparse(&self, table: &SparseContingencyTable) -> Chi2Outcome {
        let mut stat = table.n() as f64;
        let mut ignored = 0usize;
        for (cell, observed) in table.occupied_cells() {
            let expected = table.expected(cell);
            if let Some(cutoff) = self.low_expectation_cutoff {
                if expected < cutoff {
                    ignored += 1;
                    // Remove this cell's (O−E)²/E ≈ contribution entirely:
                    // we also must remove its E from the Σ E = n term so the
                    // skipped cell is fully excluded from the statistic.
                    stat -= expected;
                    continue;
                }
            }
            let o = observed as f64;
            stat += o * (o - 2.0 * expected) / expected;
            // Note: occupied cells always have expected > 0 unless an item
            // marginal is degenerate, which implies the cell is impossible.
        }
        self.outcome(stat.max(0.0), self.df.df_for_dims(table.dims()), ignored)
    }

    /// Tests a multinomial table with `Π (u_i − 1)` degrees of freedom.
    pub fn test_categorical(&self, table: &CategoricalTable) -> Chi2Outcome {
        let mut stat = 0.0;
        let mut ignored = 0usize;
        for (values, observed) in table.cells() {
            let expected = table.expected(&values);
            if let Some(cutoff) = self.low_expectation_cutoff {
                if expected < cutoff {
                    ignored += 1;
                    continue;
                }
            }
            if expected > 0.0 {
                let d = observed as f64 - expected;
                stat += d * d / expected;
            }
        }
        self.outcome(stat, table.degrees_of_freedom().max(1) as f64, ignored)
    }

    fn outcome(&self, statistic: f64, df: f64, cells_ignored: usize) -> Chi2Outcome {
        crate::contracts::assert_chi2_statistic("χ² statistic", statistic);
        let dist = ChiSquared::new(df);
        let cutoff = dist.quantile(self.level.alpha());
        crate::contracts::assert_chi2_statistic("χ² cutoff", cutoff);
        let ln_p_value = dist.ln_sf(statistic);
        crate::contracts::assert_ln_probability("χ² ln p-value", ln_p_value);
        Chi2Outcome {
            statistic,
            df,
            cutoff,
            significant: statistic >= cutoff,
            ln_p_value,
            cells_ignored,
        }
    }
}

/// The raw statistic of a dense table (no significance machinery).
pub fn chi2_statistic(table: &ContingencyTable) -> f64 {
    Chi2Test::default().test_dense(table).statistic
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::categorical::CategoricalTable;
    use bmb_basket::{BasketDatabase, ContingencyTable, Itemset, SparseContingencyTable};

    /// The paper's Example 3: the 9-basket census sample, items i8 and i9.
    /// Published table (rows i9/!i9 × cols i8/!i8):
    ///   O(i9 i8) = 1, O(i9 !i8) = 2, O(!i9 i8) = 4, O(!i9 !i8) = 2.
    /// χ² = 0.267 + 0.333 + 0.133 + 0.167 = 0.900, not significant.
    fn example3_table() -> ContingencyTable {
        // Our mask convention: bit0 = i8 present, bit1 = i9 present.
        let set = Itemset::from_ids([8, 9]);
        ContingencyTable::from_counts(set, vec![2, 4, 2, 1])
    }

    #[test]
    fn paper_example_3_statistic() {
        let outcome = Chi2Test::default().test_dense(&example3_table());
        assert!(
            (outcome.statistic - 0.900).abs() < 5e-4,
            "χ² = {}, expected 0.900",
            outcome.statistic
        );
        assert!(!outcome.significant, "0.900 < 3.84 must not be significant");
        assert_eq!(outcome.df, 1.0);
        assert!((outcome.cutoff - 3.841).abs() < 1e-3);
    }

    #[test]
    fn independent_table_scores_near_zero() {
        // Perfectly independent 2×2: O = E exactly.
        let set = Itemset::from_ids([0, 1]);
        let t = ContingencyTable::from_counts(set, vec![36, 24, 24, 16]);
        let outcome = Chi2Test::default().test_dense(&t);
        assert!(outcome.statistic.abs() < 1e-9);
        assert!(!outcome.significant);
        assert!((outcome.p_value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perfectly_correlated_table_scores_n() {
        // Items always co-occur: all mass on the diagonal. For a 2×2 with
        // p = 1/2 marginals the statistic equals n.
        let set = Itemset::from_ids([0, 1]);
        let t = ContingencyTable::from_counts(set, vec![50, 0, 0, 50]);
        let outcome = Chi2Test::default().test_dense(&t);
        assert!((outcome.statistic - 100.0).abs() < 1e-9);
        assert!(outcome.significant);
    }

    #[test]
    fn sparse_matches_dense() {
        let db = BasketDatabase::from_id_baskets(
            3,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0],
                vec![1, 2],
                vec![2],
                vec![],
                vec![0, 2],
                vec![1],
            ],
        );
        let test = Chi2Test::default();
        for set in [
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([1, 2]),
            Itemset::from_ids([0, 1, 2]),
        ] {
            let dense = test.test_dense(&ContingencyTable::from_database(&db, &set));
            let sparse = test.test_sparse(&SparseContingencyTable::from_database(&db, &set));
            assert!(
                (dense.statistic - sparse.statistic).abs() < 1e-9,
                "dense {} vs sparse {} for {set}",
                dense.statistic,
                sparse.statistic
            );
            assert_eq!(dense.significant, sparse.significant);
        }
    }

    #[test]
    fn degenerate_marginal_gives_zero_statistic() {
        // Item 1 never occurs: its cells are impossible, E = O = 0 there,
        // and the rest of the table is a perfect 1-dim fit.
        let set = Itemset::from_ids([0, 1]);
        let t = ContingencyTable::from_counts(set, vec![60, 40, 0, 0]);
        let outcome = Chi2Test::default().test_dense(&t);
        assert!(outcome.statistic.abs() < 1e-9);
    }

    #[test]
    fn saturated_df_convention() {
        assert_eq!(DfConvention::Saturated.df_for_dims(2), 1.0);
        assert_eq!(DfConvention::Saturated.df_for_dims(3), 4.0);
        assert_eq!(DfConvention::Saturated.df_for_dims(4), 11.0);
        assert_eq!(DfConvention::PaperSingle.df_for_dims(10), 1.0);
    }

    #[test]
    fn low_expectation_cells_can_be_ignored() {
        // A huge spike in one rare cell: with the policy off it dominates,
        // with the policy on it is excluded.
        let set = Itemset::from_ids([0, 1]);
        // marginals: item0 = 12/1000, item1 = 11/1000, E[both] ≈ 0.13.
        let t = ContingencyTable::from_counts(set, vec![978, 2, 10, 10]);
        let with = Chi2Test::default().test_dense(&t);
        let without = Chi2Test {
            low_expectation_cutoff: Some(1.0),
            ..Chi2Test::default()
        }
        .test_dense(&t);
        assert!(without.cells_ignored >= 1);
        assert!(without.statistic < with.statistic);
    }

    #[test]
    fn categorical_two_by_two_agrees_with_binary() {
        // The 3×2 commute table from bmb-basket's tests, collapsed:
        // compare a 2×2 categorical against the equivalent binary table.
        let cat = CategoricalTable::from_matrix(2, 2, vec![20, 5, 70, 5]);
        let set = Itemset::from_ids([0, 1]);
        // Binary layout bit0 = row-0 ("tea"), bit1 = col-0 ("coffee"):
        // O(t,c) = 20, O(t,!c) = 5, O(!t,c) = 70, O(!t,!c) = 5.
        let bin = ContingencyTable::from_counts(set, vec![5, 5, 70, 20]);
        let a = Chi2Test::default().test_categorical(&cat);
        let b = Chi2Test::default().test_dense(&bin);
        assert!((a.statistic - b.statistic).abs() < 1e-9);
        assert_eq!(a.df, 1.0);
    }

    #[test]
    fn categorical_df_from_cardinalities() {
        let cat = CategoricalTable::from_matrix(3, 2, vec![30, 10, 5, 15, 5, 35]);
        let outcome = Chi2Test::default().test_categorical(&cat);
        assert_eq!(outcome.df, 2.0);
        assert!(outcome.significant); // strongly associated by construction
    }

    #[test]
    fn outcome_pvalue_consistency() {
        let outcome = Chi2Test::default().test_dense(&example3_table());
        // χ²(1) survival at 0.9 is about 0.3428.
        assert!((outcome.p_value() - 0.3428).abs() < 1e-3);
    }
}

//! Effect sizes for contingency tables.
//!
//! A χ² statistic mixes dependence strength with sample size (it scales
//! linearly in `n` for a fixed joint distribution), which is why the paper
//! needs the *interest* measure to say anything about magnitude. The
//! classical effect sizes here complete that picture:
//!
//! * the **phi coefficient** `φ = √(χ²/n)` for 2×2 tables (equals the
//!   Pearson correlation of the two indicator variables, signed here by
//!   the diagonal);
//! * **Cramér's V** `= √(χ²/(n·(min(u₁,u₂)−1)))` for general two-attribute
//!   tables — 0 for independence, 1 for a perfect association;
//! * the **odds ratio** for 2×2 tables.

use bmb_basket::categorical::CategoricalTable;
use bmb_basket::ContingencyTable;

use crate::chi2::chi2_statistic;

/// The signed phi coefficient of a 2-item presence/absence table.
///
/// `φ = (O₁₁O₀₀ − O₁₀O₀₁) / √(r₁r₀c₁c₀)`; NaN for degenerate margins.
///
/// # Panics
///
/// Panics unless the table has exactly 2 dimensions.
pub fn phi_coefficient(table: &ContingencyTable) -> f64 {
    assert_eq!(table.dims(), 2, "phi needs a 2-item table");
    let o11 = table.observed(0b11) as f64;
    let o10 = table.observed(0b01) as f64; // item0 present, item1 absent
    let o01 = table.observed(0b10) as f64;
    let o00 = table.observed(0b00) as f64;
    let r1 = o11 + o10;
    let r0 = o01 + o00;
    let c1 = o11 + o01;
    let c0 = o10 + o00;
    let denom = (r1 * r0 * c1 * c0).sqrt();
    // A zero marginal makes φ undefined; `<= 0.0` also catches the
    // impossible negative (sqrt never yields one) without exact equality.
    if denom <= 0.0 {
        f64::NAN
    } else {
        (o11 * o00 - o10 * o01) / denom
    }
}

/// Cramér's V of a binary presence/absence table (`min(u) − 1 = 1`, so it
/// reduces to `|φ|` for pairs and `√(χ²/n)` generally).
pub fn cramers_v(table: &ContingencyTable) -> f64 {
    // Test emptiness on the integer count, before the float conversion.
    if table.n() == 0 {
        return f64::NAN;
    }
    let n = table.n() as f64;
    (chi2_statistic(table) / n).sqrt().min(1.0)
}

/// Cramér's V of a multinomial two-attribute table.
///
/// # Panics
///
/// Panics unless the table covers exactly two attributes.
pub fn cramers_v_categorical(table: &CategoricalTable) -> f64 {
    assert_eq!(
        table.dims().len(),
        2,
        "Cramér's V needs a two-attribute table"
    );
    // Test emptiness on the integer count, before the float conversion.
    if table.n() == 0 {
        return f64::NAN;
    }
    let n = table.n() as f64;
    let min_dim = table.dims().iter().copied().min().unwrap_or(2);
    if min_dim < 2 {
        return f64::NAN;
    }
    let mut chi2 = 0.0;
    for (values, observed) in table.cells() {
        let e = table.expected(&values);
        if e > 0.0 {
            let d = observed as f64 - e;
            chi2 += d * d / e;
        }
    }
    (chi2 / (n * (min_dim as f64 - 1.0))).sqrt().min(1.0)
}

/// The odds ratio `(O₁₁·O₀₀)/(O₁₀·O₀₁)` of a 2-item table; infinite when
/// the off-diagonal product is zero but the diagonal is not, NaN when both
/// vanish.
///
/// # Panics
///
/// Panics unless the table has exactly 2 dimensions.
pub fn odds_ratio(table: &ContingencyTable) -> f64 {
    assert_eq!(table.dims(), 2, "odds ratio needs a 2-item table");
    let num = table.observed(0b11) as f64 * table.observed(0b00) as f64;
    let den = table.observed(0b01) as f64 * table.observed(0b10) as f64;
    if den > 0.0 {
        num / den
    } else if num > 0.0 {
        f64::INFINITY
    } else {
        f64::NAN
    }
}

/// Pearson's 2×2 statistic with the Yates continuity correction:
/// `Σ (|O − E| − ½)² / E`, clamping each deviation at zero. Less
/// anti-conservative than the plain statistic on small samples.
///
/// # Panics
///
/// Panics unless the table has exactly 2 dimensions.
pub fn yates_chi2(table: &ContingencyTable) -> f64 {
    assert_eq!(table.dims(), 2, "Yates correction applies to 2x2 tables");
    let mut stat = 0.0;
    for (cell, observed) in table.cells() {
        let e = table.expected(cell);
        if e > 0.0 {
            let d = ((observed as f64 - e).abs() - 0.5).max(0.0);
            stat += d * d / e;
        }
    }
    stat
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::categorical::CategoricalTable;
    use bmb_basket::Itemset;

    fn table(counts: Vec<u64>) -> ContingencyTable {
        ContingencyTable::from_counts(Itemset::from_ids([0, 1]), counts)
    }

    #[test]
    fn phi_zero_for_independence() {
        let t = table(vec![36, 24, 24, 16]);
        assert!(phi_coefficient(&t).abs() < 1e-12);
        assert!(cramers_v(&t) < 1e-6);
    }

    #[test]
    fn phi_signs_follow_the_diagonal() {
        // Positive association: diagonal-heavy.
        let pos = table(vec![40, 10, 10, 40]);
        assert!(phi_coefficient(&pos) > 0.5);
        // Negative: off-diagonal heavy (layout: [00, 01, 10, 11]).
        let neg = table(vec![10, 40, 40, 10]);
        assert!(phi_coefficient(&neg) < -0.5);
    }

    #[test]
    fn phi_squared_equals_chi2_over_n() {
        let t = table(vec![35, 25, 20, 20]);
        let phi = phi_coefficient(&t);
        let chi2 = chi2_statistic(&t);
        assert!((phi * phi - chi2 / 100.0).abs() < 1e-12);
        assert!((cramers_v(&t) - phi.abs()).abs() < 1e-12);
    }

    #[test]
    fn perfect_association_is_one() {
        let t = table(vec![50, 0, 0, 50]);
        assert!((phi_coefficient(&t) - 1.0).abs() < 1e-12);
        assert!((cramers_v(&t) - 1.0).abs() < 1e-12);
        assert!(odds_ratio(&t).is_infinite());
    }

    #[test]
    fn effect_size_is_sample_size_invariant_where_chi2_is_not() {
        // Same joint distribution at n and 10n: χ² grows 10×, φ unchanged.
        let small = table(vec![30, 20, 20, 30]);
        let large = table(vec![300, 200, 200, 300]);
        let chi_small = chi2_statistic(&small);
        let chi_large = chi2_statistic(&large);
        assert!((chi_large / chi_small - 10.0).abs() < 1e-9);
        assert!((phi_coefficient(&small) - phi_coefficient(&large)).abs() < 1e-12);
    }

    #[test]
    fn census_example_4_effect_is_moderate() {
        // χ² = 2006 sounds enormous; φ ≈ 0.26 says the association is
        // real but moderate — the effect-size half of the paper's
        // "significance is not magnitude" lesson.
        let db = bmb_datasets_free_table();
        let phi = phi_coefficient(&db).abs();
        assert!(phi > 0.2 && phi < 0.35, "phi = {phi}");
    }

    /// The (i2, i7) table with Table 3's cell counts of n = 30,370.
    fn bmb_datasets_free_table() -> ContingencyTable {
        // masks: [00, 01(i2 only), 10(i7 only), 11] from 8.0/30.4/2.7/58.9%.
        table(vec![2430, 9232, 820, 17888])
    }

    #[test]
    fn odds_ratio_values() {
        let t = table(vec![5, 1, 2, 8]); // OR = (8·5)/(1·2) = 20
        assert!((odds_ratio(&t) - 20.0).abs() < 1e-12);
        let degenerate = table(vec![0, 0, 0, 7]);
        assert!(odds_ratio(&degenerate).is_nan());
    }

    #[test]
    fn yates_is_more_conservative() {
        let t = table(vec![12, 5, 4, 9]);
        let plain = chi2_statistic(&t);
        let corrected = yates_chi2(&t);
        assert!(corrected < plain);
        assert!(corrected >= 0.0);
        // And converges to the plain statistic as counts grow.
        let big = table(vec![1200, 500, 400, 900]);
        let rel = (chi2_statistic(&big) - yates_chi2(&big)) / chi2_statistic(&big);
        assert!(rel < 0.05);
    }

    #[test]
    fn categorical_v_matches_binary_v_on_2x2() {
        let bin = table(vec![30, 20, 25, 25]);
        // Same counts as a 2×2 categorical matrix: rows = item0 present?,
        // layout row-major [present∧present, present∧absent, ...].
        let cat = CategoricalTable::from_matrix(2, 2, vec![25, 20, 25, 30]);
        assert!((cramers_v(&bin) - cramers_v_categorical(&cat)).abs() < 1e-9);
    }

    #[test]
    fn categorical_v_for_three_level_attribute() {
        // Perfect association between a 3-level and a 3-level attribute.
        let cat = CategoricalTable::from_matrix(3, 3, vec![30, 0, 0, 0, 30, 0, 0, 0, 30]);
        assert!((cramers_v_categorical(&cat) - 1.0).abs() < 1e-9);
    }
}

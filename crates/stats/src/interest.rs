//! The interest measure `I(r) = O(r) / E[r]` (Section 3.1 of the paper).
//!
//! Chi-squared decides *whether* a group of items is correlated; interest
//! says *which cell* drives the correlation. Values above 1 indicate
//! positive dependence, below 1 negative dependence, and the cell with the
//! most extreme interest is the one contributing most to χ² — the paper's
//! "major dependence".

use bmb_basket::{CellMask, ContingencyTable};

/// Interest and χ²-contribution of one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellInterest {
    /// The cell (presence bitmask in itemset order).
    pub cell: CellMask,
    /// Observed count `O(r)`.
    pub observed: u64,
    /// Expected count `E[r]` under independence.
    pub expected: f64,
    /// `I(r) = O(r)/E[r]`; infinite when `E[r] = 0` and `O(r) > 0`.
    pub interest: f64,
    /// This cell's term `(O − E)²/E` of the χ² statistic.
    pub chi2_contribution: f64,
}

impl CellInterest {
    /// `|I(r) − 1|` — distance from independence; the paper's criterion for
    /// the most extreme cell. Infinite interest ranks above everything.
    pub fn extremity(&self) -> f64 {
        if self.interest.is_infinite() {
            f64::INFINITY
        } else {
            (self.interest - 1.0).abs()
        }
    }

    /// Whether the dependence is positive (`I > 1`).
    pub fn is_positive(&self) -> bool {
        self.interest > 1.0
    }
}

/// Interest analysis of a full contingency table.
#[derive(Clone, Debug)]
pub struct InterestReport {
    cells: Vec<CellInterest>,
}

impl InterestReport {
    /// Analyzes every cell of `table`.
    pub fn analyze(table: &ContingencyTable) -> Self {
        let cells = table
            .cells()
            .map(|(cell, observed)| {
                let expected = table.expected(cell);
                let interest = if expected > 0.0 {
                    observed as f64 / expected
                } else if observed == 0 {
                    // 0/0: an impossible cell that is indeed empty — treat as
                    // exactly independent.
                    1.0
                } else {
                    f64::INFINITY
                };
                let chi2_contribution = if expected > 0.0 {
                    let d = observed as f64 - expected;
                    d * d / expected
                } else {
                    0.0
                };
                CellInterest {
                    cell,
                    observed,
                    expected,
                    interest,
                    chi2_contribution,
                }
            })
            .collect();
        InterestReport { cells }
    }

    /// All cells, in mask order.
    pub fn cells(&self) -> &[CellInterest] {
        &self.cells
    }

    /// The interest of a specific cell.
    pub fn interest(&self, cell: CellMask) -> f64 {
        self.cells[cell as usize].interest
    }

    /// The paper's *major dependence*: the cell with the largest χ²
    /// contribution (equivalently the most extreme interest).
    ///
    /// A contingency table always has at least one cell, so `cells` is
    /// never empty; `total_cmp` gives a total order even if a
    /// contribution were NaN.
    pub fn major_dependence(&self) -> &CellInterest {
        let mut best = &self.cells[0];
        for c in &self.cells[1..] {
            if c.chi2_contribution
                .total_cmp(&best.chi2_contribution)
                .is_gt()
            {
                best = c;
            }
        }
        best
    }

    /// The cell with the most extreme interest value `|I(r) − 1|`.
    pub fn most_extreme(&self) -> &CellInterest {
        let mut best = &self.cells[0];
        for c in &self.cells[1..] {
            if c.extremity().total_cmp(&best.extremity()).is_gt() {
                best = c;
            }
        }
        best
    }
}

/// The simple dependence ratio of Example 1:
/// `P[A ∧ B] / (P[A] · P[B])` for the all-present cell of a pair.
///
/// Returns `None` if either marginal is zero.
pub fn dependence_ratio(n: u64, count_a: u64, count_b: u64, count_ab: u64) -> Option<f64> {
    if n == 0 || count_a == 0 || count_b == 0 {
        return None;
    }
    let n = n as f64;
    Some((count_ab as f64 / n) / ((count_a as f64 / n) * (count_b as f64 / n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::Itemset;

    /// Example 1's tea/coffee table: bit0 = tea, bit1 = coffee.
    fn tea_coffee() -> ContingencyTable {
        ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![5, 5, 70, 20])
    }

    #[test]
    fn paper_example_1_dependence() {
        // P[t ∧ c]/(P[t]·P[c]) = 0.2/(0.25·0.9) = 0.89.
        let ratio = dependence_ratio(100, 25, 90, 20).unwrap();
        assert!((ratio - 0.888_888).abs() < 1e-5);
        // The same number must come out of the interest machinery.
        let report = InterestReport::analyze(&tea_coffee());
        assert!((report.interest(0b11) - 0.888_888).abs() < 1e-5);
    }

    #[test]
    fn interests_bracket_one() {
        let report = InterestReport::analyze(&tea_coffee());
        // Tea & coffee negatively dependent, tea-without-coffee positively.
        assert!(report.interest(0b11) < 1.0);
        assert!(report.interest(0b01) > 1.0); // tea, no coffee: 5 vs E = 2.5
        assert!((report.interest(0b01) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn major_dependence_is_top_chi2_contributor() {
        let report = InterestReport::analyze(&tea_coffee());
        let major = report.major_dependence();
        for c in report.cells() {
            assert!(major.chi2_contribution >= c.chi2_contribution);
        }
        // For this table the tea-without-coffee cell dominates:
        // (5 − 2.5)²/2.5 = 2.5 beats (20 − 22.5)²/22.5 ≈ 0.278 etc.
        assert_eq!(major.cell, 0b01);
    }

    #[test]
    fn extremity_ranks_infinite_interest_first() {
        // An impossible-but-observed arrangement cannot happen with
        // consistent marginals, so craft infinite interest via a zero
        // marginal... which forces O = 0. Instead verify the finite path:
        let report = InterestReport::analyze(&tea_coffee());
        let extreme = report.most_extreme();
        assert_eq!(extreme.cell, 0b01);
        assert!((extreme.extremity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_empty_cells_read_as_independent() {
        // Item 1 never occurs: cells with it present have E = 0 and O = 0.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![60, 40, 0, 0]);
        let report = InterestReport::analyze(&t);
        assert_eq!(report.interest(0b10), 1.0);
        assert_eq!(report.interest(0b11), 1.0);
    }

    #[test]
    fn interest_zero_flags_impossible_events() {
        // The paper: "These values often have interest levels of 0,
        // indicating an impossible event" — e.g. >3 children and male.
        let t = ContingencyTable::from_counts(
            Itemset::from_ids([1, 8]),
            vec![10, 0, 50, 40], // present-together cell observed 40, (i1,!i8) empty...
        );
        let report = InterestReport::analyze(&t);
        assert_eq!(report.interest(0b01), 0.0);
        assert!(!report.cells()[0b01].is_positive());
    }

    #[test]
    fn sum_of_contributions_is_chi2() {
        let t = tea_coffee();
        let report = InterestReport::analyze(&t);
        let total: f64 = report.cells().iter().map(|c| c.chi2_contribution).sum();
        let stat = crate::chi2::chi2_statistic(&t);
        assert!((total - stat).abs() < 1e-9);
    }

    #[test]
    fn dependence_ratio_degenerate_inputs() {
        assert_eq!(dependence_ratio(0, 0, 0, 0), None);
        assert_eq!(dependence_ratio(10, 0, 5, 0), None);
        assert_eq!(dependence_ratio(10, 5, 0, 0), None);
    }
}

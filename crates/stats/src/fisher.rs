//! Fisher's exact test for 2×2 tables.
//!
//! Section 3.3 of the paper notes the chi-squared approximation breaks down
//! when expected cell values are small, and that "the solution to this
//! problem is to use an exact calculation for the probability". For 2×2
//! tables the exact calculation is classical: condition on the margins and
//! sum hypergeometric point probabilities. We provide it as the validator
//! the paper wished for (the general `2^m` exact test remains open; Agresti
//! 1992 surveys the state of the art the paper cites).

use crate::binomial::hypergeometric_pmf;

/// Alternative hypothesis for the exact test.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Alternative {
    /// Dependence in either direction (point-probability method).
    #[default]
    TwoSided,
    /// The `a` cell is larger than independence predicts.
    Greater,
    /// The `a` cell is smaller than independence predicts.
    Less,
}

/// Result of one exact test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FisherOutcome {
    /// The p-value.
    pub p_value: f64,
    /// The sample odds ratio `(a·d)/(b·c)`; infinite when `b·c = 0 < a·d`,
    /// NaN for fully degenerate tables.
    pub odds_ratio: f64,
}

/// Fisher's exact test on the 2×2 table
///
/// ```text
///         B      !B
///   A     a       b
///  !A     c       d
/// ```
///
/// Margins are fixed; under independence `a` is hypergeometric.
pub fn fisher_exact(a: u64, b: u64, c: u64, d: u64, alternative: Alternative) -> FisherOutcome {
    let row1 = a + b;
    let col1 = a + c;
    let n = a + b + c + d;
    let odds_ratio = {
        let num = a as f64 * d as f64;
        let den = b as f64 * c as f64;
        if den > 0.0 {
            num / den
        } else if num > 0.0 {
            f64::INFINITY
        } else {
            f64::NAN
        }
    };
    if n == 0 {
        return FisherOutcome {
            p_value: 1.0,
            odds_ratio,
        };
    }
    // Feasible range of the a-cell given the margins.
    let a_min = col1.saturating_sub(n - row1);
    let a_max = row1.min(col1);
    let p_observed = hypergeometric_pmf(n, col1, row1, a);
    let p_value = match alternative {
        Alternative::Greater => (a..=a_max)
            .map(|k| hypergeometric_pmf(n, col1, row1, k))
            .sum::<f64>(),
        Alternative::Less => (a_min..=a)
            .map(|k| hypergeometric_pmf(n, col1, row1, k))
            .sum::<f64>(),
        Alternative::TwoSided => {
            // Point-probability method: sum every arrangement at most as
            // probable as the observed one (with a tolerance for ties).
            let tol = p_observed * (1.0 + 1e-7);
            (a_min..=a_max)
                .map(|k| hypergeometric_pmf(n, col1, row1, k))
                .filter(|&p| p <= tol)
                .sum::<f64>()
        }
    };
    FisherOutcome {
        p_value: p_value.min(1.0),
        odds_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn lady_tasting_tea() {
        // Fisher's original experiment: all 4 cups classified correctly.
        //        guessed-milk  guessed-tea
        // milk        4            0
        // tea         0            4
        let out = fisher_exact(4, 0, 0, 4, Alternative::Greater);
        close(out.p_value, 1.0 / 70.0, 1e-10);
        assert!(out.odds_ratio.is_infinite());
    }

    #[test]
    fn two_sided_textbook_value() {
        // scipy reference: fisher_exact([[8, 2], [1, 5]]) two-sided
        // p = 0.03496503496503495.
        let out = fisher_exact(8, 2, 1, 5, Alternative::TwoSided);
        close(out.p_value, 0.034_965_034_965, 1e-9);
        close(out.odds_ratio, 20.0, 1e-12);
    }

    #[test]
    fn one_sided_halves_complement() {
        // greater + less ≥ 1 (the observed point counted twice).
        let g = fisher_exact(8, 2, 1, 5, Alternative::Greater).p_value;
        let l = fisher_exact(8, 2, 1, 5, Alternative::Less).p_value;
        assert!(g + l >= 1.0 - 1e-12);
        assert!(g < l);
    }

    #[test]
    fn independent_table_is_insignificant() {
        let out = fisher_exact(30, 30, 30, 30, Alternative::TwoSided);
        assert!(out.p_value > 0.99);
        close(out.odds_ratio, 1.0, 1e-12);
    }

    #[test]
    fn agrees_with_chi2_for_large_balanced_tables() {
        // For comfortable expectations the exact and asymptotic tests agree
        // on the significance verdict.
        use crate::chi2::Chi2Test;
        use bmb_basket::{ContingencyTable, Itemset};
        let (a, b, c, d) = (60u64, 40u64, 40u64, 60u64);
        let fisher = fisher_exact(a, b, c, d, Alternative::TwoSided);
        // Binary layout: bit0 = A, bit1 = B.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![d, b, c, a]);
        let chi2 = Chi2Test::default().test_dense(&t);
        assert!(chi2.significant);
        assert!(fisher.p_value < 0.05);
    }

    #[test]
    fn degenerate_tables() {
        let out = fisher_exact(0, 0, 0, 0, Alternative::TwoSided);
        assert_eq!(out.p_value, 1.0);
        assert!(out.odds_ratio.is_nan());
        // One empty margin: only one feasible arrangement, p = 1.
        let out = fisher_exact(5, 0, 3, 0, Alternative::TwoSided);
        close(out.p_value, 1.0, 1e-12);
    }
}

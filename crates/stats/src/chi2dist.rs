//! The chi-squared distribution: CDF, survival function, and quantiles.
//!
//! A chi-squared variable with `df` degrees of freedom is a Gamma variable
//! with shape `df/2` and scale 2, so the CDF is `P(df/2, x/2)` with `P` the
//! regularized lower incomplete gamma function of [`crate::gamma`]. The
//! quantile function inverts the CDF with a Wilson–Hilferty starting guess
//! refined by safeguarded Newton iterations.

use crate::gamma::{regularized_gamma_p, regularized_gamma_q};

/// A chi-squared distribution with a fixed number of degrees of freedom.
///
/// # Examples
///
/// ```
/// use bmb_stats::ChiSquared;
///
/// let d = ChiSquared::new(1.0);
/// // The classic 95% critical value for one degree of freedom.
/// assert!((d.quantile(0.95) - 3.841).abs() < 1e-3);
/// assert!((d.cdf(3.841_458_820_694_124) - 0.95).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `df` is finite and positive.
    pub fn new(df: f64) -> Self {
        assert!(
            df.is_finite() && df > 0.0,
            "degrees of freedom must be positive, got {df}"
        );
        ChiSquared { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// `P[X <= x]`.
    ///
    /// # Panics
    ///
    /// Panics if `x < 0`.
    pub fn cdf(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "chi-squared support is non-negative, got {x}");
        let p = regularized_gamma_p(self.df / 2.0, x / 2.0);
        crate::contracts::assert_probability("χ² cdf", p);
        p
    }

    /// `P[X > x]` — the p-value of an observed statistic `x`.
    ///
    /// Computed on the upper-tail branch, so tiny p-values keep full
    /// precision instead of cancelling against 1.
    pub fn sf(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "chi-squared support is non-negative, got {x}");
        let p = regularized_gamma_q(self.df / 2.0, x / 2.0);
        crate::contracts::assert_probability("χ² sf", p);
        p
    }

    /// Natural log of the p-value `ln P[X > x]`, stable for statistics so
    /// extreme that [`ChiSquared::sf`] underflows (the paper's Example 4
    /// statistic of 2006.34 has `p ≈ e^{−1000}`).
    pub fn ln_sf(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "chi-squared support is non-negative, got {x}");
        crate::gamma::ln_regularized_gamma_q(self.df / 2.0, x / 2.0)
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "chi-squared support is non-negative, got {x}");
        let a = self.df / 2.0;
        if x <= 0.0 {
            // Density at the origin (x ≥ 0 is asserted, so this is the
            // boundary): diverges below df = 2, is exactly 1/2 at df = 2,
            // and vanishes above.
            return if self.df < 2.0 {
                f64::INFINITY
            } else if self.df <= 2.0 {
                0.5
            } else {
                0.0
            };
        }
        let log_pdf = (a - 1.0) * x.ln() - x / 2.0 - a * 2.0f64.ln() - crate::gamma::ln_gamma(a);
        log_pdf.exp()
    }

    /// Mean of the distribution (= df).
    pub fn mean(&self) -> f64 {
        self.df
    }

    /// Variance of the distribution (= 2·df).
    pub fn variance(&self) -> f64 {
        2.0 * self.df
    }

    /// The quantile `x` with `cdf(x) = p`; `quantile(0.95)` is the paper's
    /// cutoff value `χ²_α` at significance level α = 0.95.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1` (`p = 0` returns 0).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile needs p in [0, 1), got {p}"
        );
        if p <= 0.0 {
            // The asserted lower edge: the 0-quantile of a non-negative
            // distribution is 0 and needs no iteration.
            return 0.0;
        }
        // Wilson–Hilferty: X/df ≈ (1 − 2/(9df) + z√(2/(9df)))³.
        let z = standard_normal_quantile(p);
        let c = 2.0 / (9.0 * self.df);
        let wh = self.df * (1.0 - c + z * c.sqrt()).powi(3);
        let mut x = if wh.is_finite() && wh > 0.0 {
            wh
        } else {
            self.df
        };

        // Safeguarded Newton on cdf(x) − p with bisection fallback.
        let (mut lo, mut hi) = (0.0f64, f64::MAX);
        for _ in 0..200 {
            let f = self.cdf(x) - p;
            if f > 0.0 {
                hi = hi.min(x);
            } else {
                lo = lo.max(x);
            }
            if f.abs() < 1e-14 {
                break;
            }
            let d = self.pdf(x);
            let mut next = if d > 0.0 && d.is_finite() {
                x - f / d
            } else {
                f64::NAN
            };
            if !(next.is_finite() && next > lo && (hi == f64::MAX || next < hi)) {
                // Newton step escaped the bracket; bisect instead.
                next = if hi == f64::MAX {
                    (lo + x.max(lo) * 2.0).max(1.0)
                } else {
                    0.5 * (lo + hi)
                };
            }
            if (next - x).abs() <= 1e-14 * (1.0 + x.abs()) {
                x = next;
                break;
            }
            x = next;
        }
        crate::contracts::assert_chi2_statistic("χ² quantile", x);
        x
    }
}

/// Standard normal quantile via the Acklam rational approximation
/// (relative error < 1.15e−9), refined by one Halley step on the
/// complementary error function evaluated through [`regularized_gamma_q`].
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "normal quantile needs p in [0,1], got {p}"
    );
    // Closed edges of the asserted range map to the infinite quantiles;
    // the rational approximation below needs an open interval.
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // Acklam coefficients, kept verbatim from the publication.
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement: Φ(x) = Q(1/2, x²/2)/2 for x ≤ 0 by symmetry.
    let cdf = 0.5 * regularized_gamma_q(0.5, x * x / 2.0);
    let phi = if x <= 0.0 { cdf } else { 1.0 - cdf };
    let e = phi - p;
    let pdf = (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if pdf > 0.0 {
        let u = e / pdf;
        x - u / (1.0 + x * u / 2.0)
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a}"
        );
    }

    /// Values from standard chi-squared tables.
    #[test]
    fn textbook_critical_values() {
        let cases = [
            // (df, alpha, critical)
            (1.0, 0.95, 3.841),
            (1.0, 0.99, 6.635),
            (1.0, 0.90, 2.706),
            (2.0, 0.95, 5.991),
            (3.0, 0.95, 7.815),
            (4.0, 0.95, 9.488),
            (5.0, 0.95, 11.070),
            (10.0, 0.95, 18.307),
            (20.0, 0.95, 31.410),
            (30.0, 0.99, 50.892),
            (100.0, 0.95, 124.342),
        ];
        for (df, alpha, crit) in cases {
            let d = ChiSquared::new(df);
            close(d.quantile(alpha), crit, 5e-4);
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        for &df in &[1.0, 2.0, 3.5, 7.0, 50.0, 300.0] {
            let d = ChiSquared::new(df);
            for &p in &[0.001, 0.05, 0.25, 0.5, 0.9, 0.95, 0.999, 0.999999] {
                let x = d.quantile(p);
                close(d.cdf(x), p, 1e-9);
            }
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let d = ChiSquared::new(4.0);
        for &x in &[0.0, 0.5, 2.0, 9.5, 40.0] {
            close(d.cdf(x) + d.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn df_two_is_exponential_half() {
        // df = 2 ⇒ CDF = 1 − e^{−x/2}.
        let d = ChiSquared::new(2.0);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            close(d.cdf(x), 1.0 - (-x / 2.0).exp(), 1e-12);
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid integration of the pdf should track the cdf.
        let d = ChiSquared::new(3.0);
        let mut acc = 0.0;
        let h = 1e-4;
        let mut x = 0.0;
        while x < 5.0 {
            acc += h * 0.5 * (d.pdf(x) + d.pdf(x + h));
            x += h;
        }
        close(acc, d.cdf(5.0), 1e-6);
    }

    #[test]
    fn moments() {
        let d = ChiSquared::new(7.0);
        assert_eq!(d.mean(), 7.0);
        assert_eq!(d.variance(), 14.0);
    }

    #[test]
    fn tiny_pvalues_keep_precision() {
        let d = ChiSquared::new(1.0);
        // x² = 2006.34 from the paper's Example 4 — astronomically
        // significant; sf underflows f64 but ln_sf stays informative.
        let ln_p = d.ln_sf(2006.34);
        assert!(ln_p.is_finite());
        assert!(ln_p < -990.0, "ln p-value too large: {ln_p}");
        // And for moderate statistics, ln_sf agrees with ln(sf).
        close(d.ln_sf(3.84), d.sf(3.84).ln(), 1e-10);
    }

    #[test]
    fn normal_quantile_matches_tables() {
        close(standard_normal_quantile(0.975), 1.959_963_984_540_054, 1e-9);
        close(standard_normal_quantile(0.5), 0.0, 1e-12);
        close(standard_normal_quantile(0.95), 1.644_853_626_951_472, 1e-9);
        close(
            standard_normal_quantile(0.025),
            -1.959_963_984_540_054,
            1e-9,
        );
        close(
            standard_normal_quantile(1e-10),
            -6.361_340_902_404_056,
            1e-6,
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_df_panics() {
        ChiSquared::new(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_stat_panics() {
        ChiSquared::new(1.0).cdf(-1.0);
    }
}

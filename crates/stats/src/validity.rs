//! Validity diagnostics for the chi-squared approximation.
//!
//! Section 3.3: "statistics texts (such as Moore) recommend the use of the
//! chi-squared test only if all cells in the contingency table have expected
//! value greater than 1, and at least 80% of the cells have expected value
//! greater than 5." This module checks those rules so a caller can tell
//! whether a significance verdict rests on solid asymptotics — and, when it
//! does not, fall back to [`crate::fisher`] (2×2) or ignore low-expectation
//! cells.

use bmb_basket::categorical::CategoricalTable;
use bmb_basket::ContingencyTable;

/// Moore's rule-of-thumb thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValidityRule {
    /// Every cell must have expectation above this (Moore: 1.0).
    pub min_expectation: f64,
    /// This fraction of cells must have expectation above
    /// [`ValidityRule::bulk_expectation`] (Moore: 0.8).
    pub bulk_fraction: f64,
    /// The "comfortable" expectation for the bulk (Moore: 5.0).
    pub bulk_expectation: f64,
}

impl Default for ValidityRule {
    fn default() -> Self {
        ValidityRule {
            min_expectation: 1.0,
            bulk_fraction: 0.8,
            bulk_expectation: 5.0,
        }
    }
}

/// The verdict of a validity check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Validity {
    /// Total number of cells examined.
    pub n_cells: usize,
    /// Cells with expectation at or below the minimum threshold.
    pub cells_below_min: usize,
    /// Cells with expectation above the bulk threshold.
    pub cells_above_bulk: usize,
    /// The rule that was applied.
    pub rule: ValidityRule,
}

impl Validity {
    /// Whether the approximation is trustworthy under the rule.
    pub fn is_valid(&self) -> bool {
        self.cells_below_min == 0
            && (self.cells_above_bulk as f64) >= self.rule.bulk_fraction * self.n_cells as f64
    }

    /// Fraction of cells above the bulk threshold.
    pub fn bulk_ratio(&self) -> f64 {
        if self.n_cells == 0 {
            0.0
        } else {
            self.cells_above_bulk as f64 / self.n_cells as f64
        }
    }
}

/// Checks a binary presence/absence table.
pub fn check_dense(table: &ContingencyTable, rule: ValidityRule) -> Validity {
    let mut below = 0usize;
    let mut above = 0usize;
    for (cell, _) in table.cells() {
        let e = table.expected(cell);
        if e <= rule.min_expectation {
            below += 1;
        }
        if e > rule.bulk_expectation {
            above += 1;
        }
    }
    Validity {
        n_cells: table.n_cells(),
        cells_below_min: below,
        cells_above_bulk: above,
        rule,
    }
}

/// Checks a multinomial table.
pub fn check_categorical(table: &CategoricalTable, rule: ValidityRule) -> Validity {
    let mut below = 0usize;
    let mut above = 0usize;
    for (values, _) in table.cells() {
        let e = table.expected(&values);
        if e <= rule.min_expectation {
            below += 1;
        }
        if e > rule.bulk_expectation {
            above += 1;
        }
    }
    Validity {
        n_cells: table.n_cells(),
        cells_below_min: below,
        cells_above_bulk: above,
        rule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::Itemset;

    #[test]
    fn comfortable_table_is_valid() {
        // Example 1's table: expectations 22.5, 2.5... wait, the tea-only
        // cell expects 2.5 < 5 — so only 3/4 = 75% of cells clear the bulk
        // threshold and Moore's rule flags it.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![5, 5, 70, 20]);
        let v = check_dense(&t, ValidityRule::default());
        assert_eq!(v.n_cells, 4);
        assert_eq!(v.cells_below_min, 0);
        assert_eq!(v.cells_above_bulk, 3);
        assert!(!v.is_valid());
        assert!((v.bulk_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn balanced_large_table_is_valid() {
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![250, 250, 250, 250]);
        let v = check_dense(&t, ValidityRule::default());
        assert!(v.is_valid());
        assert_eq!(v.cells_above_bulk, 4);
    }

    #[test]
    fn rare_items_violate_min_expectation() {
        // Item 0 occurs twice in 1000 baskets; item 1 five times.
        // E[both] = 1000·0.002·0.005 = 0.01 ≤ 1.
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![993, 2, 5, 0]);
        let v = check_dense(&t, ValidityRule::default());
        assert!(v.cells_below_min >= 1);
        assert!(!v.is_valid());
    }

    #[test]
    fn paper_dimensionality_argument() {
        // "Even a contingency table with as few as 3 dimensions will have
        // [many] cells ... not all cells can have expected value greater
        // than 1" — with enough rare items, high-dimensional tables always
        // fail. 10 items each at 1% in n = 1000:
        let n = 1000usize;
        let k = 10usize;
        let mut baskets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for item in 0..k {
            for row in 0..10 {
                baskets[item * 10 + row].push(item as u32);
            }
        }
        let db = bmb_basket::BasketDatabase::from_id_baskets(k, baskets);
        let t = ContingencyTable::from_database(
            &db,
            &Itemset::from_items((0..k as u32).map(bmb_basket::ItemId)),
        );
        let v = check_dense(&t, ValidityRule::default());
        assert!(!v.is_valid());
        assert!(v.cells_below_min > 0);
    }

    #[test]
    fn categorical_check() {
        use bmb_basket::categorical::CategoricalTable;
        let good = CategoricalTable::from_matrix(2, 2, vec![100, 100, 100, 100]);
        assert!(check_categorical(&good, ValidityRule::default()).is_valid());
        let bad = CategoricalTable::from_matrix(2, 2, vec![998, 1, 1, 0]);
        assert!(!check_categorical(&bad, ValidityRule::default()).is_valid());
    }

    #[test]
    fn custom_rule_thresholds() {
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![5, 5, 70, 20]);
        let lax = ValidityRule {
            min_expectation: 0.0,
            bulk_fraction: 0.5,
            bulk_expectation: 2.0,
        };
        assert!(check_dense(&t, lax).is_valid());
    }
}

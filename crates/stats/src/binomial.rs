//! Combinatorial and discrete-distribution helpers.
//!
//! Log-space binomial coefficients, binomial and hypergeometric pmfs — the
//! exact-probability machinery behind [`crate::fisher`] and useful on their
//! own for calibrating synthetic workloads.

use crate::gamma::ln_gamma;

/// `ln C(n, k)` in log space, exact to f64 precision for huge `n`.
///
/// Returns `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `C(n, k)` as f64; saturates to infinity past ~10^308.
pub fn choose(n: u64, k: u64) -> f64 {
    ln_choose(n, k).exp()
}

/// Binomial pmf `P[X = k]` for `X ~ Bin(n, p)`.
///
/// # Panics
///
/// Panics unless `0 <= p <= 1`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if k > n {
        return 0.0;
    }
    // Degenerate edges of the asserted [0, 1] range: `p.ln()` or
    // `(1 - p).ln()` would be −∞ there, so answer combinatorially. The
    // inclusive bounds also absorb `-0.0` and values that rounded onto
    // the endpoints.
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Binomial CDF `P[X <= k]` by direct summation.
pub fn binomial_cdf(n: u64, k: u64, p: f64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(n, i, p))
        .sum::<f64>()
        .min(1.0)
}

/// Hypergeometric pmf: drawing `draws` without replacement from a population
/// of `total` containing `successes` marked elements,
/// `P[X = k] = C(successes, k)·C(total−successes, draws−k) / C(total, draws)`.
pub fn hypergeometric_pmf(total: u64, successes: u64, draws: u64, k: u64) -> f64 {
    assert!(successes <= total, "successes exceed population");
    assert!(draws <= total, "draws exceed population");
    if k > draws || k > successes || draws - k > total - successes {
        return 0.0;
    }
    (ln_choose(successes, k) + ln_choose(total - successes, draws - k) - ln_choose(total, draws))
        .exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn small_binomial_coefficients_exact() {
        assert_eq!(choose(5, 2).round() as u64, 10);
        assert_eq!(choose(10, 5).round() as u64, 252);
        assert_eq!(choose(52, 5).round() as u64, 2_598_960);
        assert_eq!(choose(870, 2).round() as u64, 378_015); // Table 5 level 2
        assert_eq!(choose(870, 3).round() as u64, 109_372_340); // Table 5 level 3
    }

    #[test]
    fn choose_boundaries() {
        assert_eq!(choose(7, 0), 1.0);
        assert_eq!(choose(7, 7), 1.0);
        assert_eq!(choose(3, 4), 0.0);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn pascal_identity() {
        for n in 2..40u64 {
            for k in 1..n {
                let lhs = choose(n, k);
                let rhs = choose(n - 1, k - 1) + choose(n - 1, k);
                close(lhs, rhs, 1e-12);
            }
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.5), (40, 0.01), (40, 0.99)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            close(total, 1.0, 1e-12);
        }
    }

    #[test]
    fn binomial_degenerate_p() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
    }

    #[test]
    fn binomial_cdf_monotone_and_complete() {
        let n = 20;
        let p = 0.35;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(n, k, p);
            assert!(c >= prev);
            prev = c;
        }
        close(binomial_cdf(n, n, p), 1.0, 1e-12);
    }

    #[test]
    fn hypergeometric_pmf_sums_to_one() {
        let (total, succ, draws) = (30u64, 12u64, 10u64);
        let total_p: f64 = (0..=draws)
            .map(|k| hypergeometric_pmf(total, succ, draws, k))
            .sum();
        close(total_p, 1.0, 1e-12);
    }

    #[test]
    fn hypergeometric_known_value() {
        // Classic urn: 5 red of 10, draw 4, P[2 red] = C(5,2)C(5,2)/C(10,4)
        //             = 10·10/210 = 10/21.
        close(hypergeometric_pmf(10, 5, 4, 2), 10.0 / 21.0, 1e-12);
    }

    #[test]
    fn hypergeometric_impossible_values() {
        assert_eq!(hypergeometric_pmf(10, 3, 5, 4), 0.0); // more than successes
        assert_eq!(hypergeometric_pmf(10, 9, 5, 1), 0.0); // too few failures
    }
}

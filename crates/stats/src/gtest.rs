//! The likelihood-ratio G-test — the main alternative to Pearson's χ².
//!
//! Section 3.3 of the paper points at the χ² statistic's fragility on
//! small expectations and calls for better tests as future work. The
//! G statistic `G = 2 Σ_r O(r)·ln(O(r)/E[r])` follows the same asymptotic
//! chi-squared distribution but is derived from the likelihood ratio, is
//! additive over table partitions, and degrades differently on sparse
//! tables — a natural companion to compare against, which the ablation
//! benches do.

use bmb_basket::ContingencyTable;

use crate::chi2::{Chi2Outcome, Chi2Test};
use crate::chi2dist::ChiSquared;

/// The raw G statistic of a dense table.
///
/// Cells with `O(r) = 0` contribute zero (the `O·ln O` limit); cells with
/// zero expectation but positive observation cannot occur under consistent
/// marginals and are skipped defensively.
pub fn g_statistic(table: &ContingencyTable) -> f64 {
    let mut g = 0.0;
    for (cell, observed) in table.cells() {
        if observed == 0 {
            continue;
        }
        let expected = table.expected(cell);
        if expected > 0.0 {
            let o = observed as f64;
            g += o * (o / expected).ln();
        }
    }
    2.0 * g
}

/// Runs the G-test with the same configuration conventions as [`Chi2Test`]
/// (significance level, degrees of freedom; the low-expectation policy is
/// not applicable — zero-observation cells already drop out).
pub fn g_test(table: &ContingencyTable, config: &Chi2Test) -> Chi2Outcome {
    let statistic = g_statistic(table).max(0.0);
    let df = config.df.df_for_dims(table.dims());
    let dist = ChiSquared::new(df);
    let cutoff = dist.quantile(config.level.alpha());
    Chi2Outcome {
        statistic,
        df,
        cutoff,
        significant: statistic >= cutoff,
        ln_p_value: dist.ln_sf(statistic),
        cells_ignored: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::Itemset;

    fn table(counts: Vec<u64>) -> ContingencyTable {
        let dims = counts.len().trailing_zeros() as usize;
        ContingencyTable::from_counts(Itemset::from_ids(0..dims as u32), counts)
    }

    #[test]
    fn independent_table_scores_zero() {
        let t = table(vec![36, 24, 24, 16]);
        assert!(g_statistic(&t).abs() < 1e-9);
        assert!(!g_test(&t, &Chi2Test::default()).significant);
    }

    #[test]
    fn g_and_pearson_agree_for_moderate_deviation() {
        // For small relative deviations, G ≈ χ² (second-order Taylor).
        let t = table(vec![380, 220, 215, 185]);
        let g = g_statistic(&t);
        let pearson = crate::chi2::chi2_statistic(&t);
        assert!(pearson > 1.0, "need a non-trivial deviation, got {pearson}");
        assert!(
            (g - pearson).abs() / pearson < 0.05,
            "G = {g} vs chi2 = {pearson}"
        );
    }

    #[test]
    fn g_diverges_from_pearson_on_extreme_tables() {
        // Strong dependence: the two statistics measure differently, but
        // both must be decisively significant.
        let t = table(vec![500, 10, 10, 480]);
        let g = g_test(&t, &Chi2Test::default());
        let pearson = Chi2Test::default().test_dense(&t);
        assert!(g.significant && pearson.significant);
        assert!(g.statistic > 100.0);
        assert!((g.statistic - pearson.statistic).abs() > 1.0);
    }

    #[test]
    fn empty_cells_contribute_nothing() {
        // Perfect exclusion: O(ab) = 0, still finite and significant.
        let t = table(vec![40, 30, 30, 0]);
        let g = g_test(&t, &Chi2Test::default());
        assert!(g.statistic.is_finite());
        assert!(g.significant);
    }

    #[test]
    fn tea_coffee_verdict_matches_pearson() {
        // Example 1's borderline table: both tests agree it misses 3.84.
        let t = table(vec![5, 5, 70, 20]);
        let g = g_test(&t, &Chi2Test::default());
        assert!(!g.significant, "G = {}", g.statistic);
        // And at double the sample both clear it.
        let t2 = table(vec![10, 10, 140, 40]);
        assert!(g_test(&t2, &Chi2Test::default()).significant);
    }

    #[test]
    fn g_is_upward_closed_on_data_like_chi2() {
        // Spot-check Theorem 1's closure behaviour for G on real data.
        let db = bmb_basket::BasketDatabase::from_id_baskets(
            3,
            vec![
                vec![0, 1],
                vec![0, 1, 2],
                vec![0],
                vec![1],
                vec![2],
                vec![],
                vec![0, 2],
                vec![1, 2],
            ],
        );
        let pair = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1]));
        let triple = ContingencyTable::from_database(&db, &Itemset::from_ids([0, 1, 2]));
        assert!(g_statistic(&triple) >= g_statistic(&pair) - 1e-9);
    }
}

//! # bmb-stats — classical statistics, from scratch
//!
//! The statistical substrate of the *Beyond Market Baskets* reproduction:
//! everything the paper's Section 3 and Appendix A rely on, implemented
//! without external numerics crates.
//!
//! * [`gamma`] — `ln Γ`, regularized incomplete gamma functions;
//! * [`ChiSquared`] — CDF / survival / quantiles of the chi-squared
//!   distribution (the paper's `χ²_α` cutoffs);
//! * [`Chi2Test`] — the independence test over dense, sparse, and
//!   multinomial contingency tables, with the paper's single-df convention
//!   and low-expectation cell policy;
//! * [`InterestReport`] — the interest measure `I(r) = O(r)/E[r]` and the
//!   "major dependence" cell;
//! * [`gtest`] — the likelihood-ratio G-test, χ²'s main competitor;
//! * [`effect`] — phi, Cramér's V, odds ratios, Yates correction: the
//!   effect-size complement to significance;
//! * [`fisher`] — Fisher's exact test for 2×2 tables (the exact
//!   calculation Section 3.3 wishes for);
//! * [`validity`] — Moore's rules of thumb for when the chi-squared
//!   approximation can be trusted;
//! * [`binomial`] — log-space combinatorics and discrete pmfs.

#![warn(missing_docs)]

/// Log-space combinatorics and the binomial pmf/CDF.
pub mod binomial;
/// The chi-squared test over contingency tables (the paper's Section 3).
pub mod chi2;
/// The chi-squared distribution: CDF, survival, pdf, quantiles.
pub mod chi2dist;
/// Debug-build numerical invariant contracts (`debug_assert!`-backed).
pub mod contracts;
/// Tabulated and computed critical values `χ²_α`.
pub mod critical;
/// Effect-size measures: φ, Cramér's V, odds ratio, Yates' correction.
pub mod effect;
/// Fisher's exact test for 2×2 tables too sparse for χ².
pub mod fisher;
/// `ln Γ` and the regularized incomplete gamma functions.
pub mod gamma;
/// The likelihood-ratio G-test alternative to Pearson's χ².
pub mod gtest;
/// The interest measure `I(r) = O(r)/E[r]` (Section 3.1).
pub mod interest;
/// Moore's rules of thumb for when the χ² approximation holds.
pub mod validity;

pub use chi2::{chi2_statistic, Chi2Outcome, Chi2Test, DfConvention};
pub use chi2dist::{standard_normal_quantile, ChiSquared};
pub use critical::{critical_value, SignificanceLevel};
pub use effect::{cramers_v, cramers_v_categorical, odds_ratio, phi_coefficient, yates_chi2};
pub use fisher::{fisher_exact, Alternative, FisherOutcome};
pub use gtest::{g_statistic, g_test};
pub use interest::{dependence_ratio, CellInterest, InterestReport};
pub use validity::{check_dense, Validity, ValidityRule};

//! # bmb-stats — classical statistics, from scratch
//!
//! The statistical substrate of the *Beyond Market Baskets* reproduction:
//! everything the paper's Section 3 and Appendix A rely on, implemented
//! without external numerics crates.
//!
//! * [`gamma`] — `ln Γ`, regularized incomplete gamma functions;
//! * [`ChiSquared`] — CDF / survival / quantiles of the chi-squared
//!   distribution (the paper's `χ²_α` cutoffs);
//! * [`Chi2Test`] — the independence test over dense, sparse, and
//!   multinomial contingency tables, with the paper's single-df convention
//!   and low-expectation cell policy;
//! * [`InterestReport`] — the interest measure `I(r) = O(r)/E[r]` and the
//!   "major dependence" cell;
//! * [`gtest`] — the likelihood-ratio G-test, χ²'s main competitor;
//! * [`effect`] — phi, Cramér's V, odds ratios, Yates correction: the
//!   effect-size complement to significance;
//! * [`fisher`] — Fisher's exact test for 2×2 tables (the exact
//!   calculation Section 3.3 wishes for);
//! * [`validity`] — Moore's rules of thumb for when the chi-squared
//!   approximation can be trusted;
//! * [`binomial`] — log-space combinatorics and discrete pmfs.

#![warn(missing_docs)]

pub mod binomial;
pub mod chi2;
pub mod chi2dist;
pub mod critical;
pub mod effect;
pub mod fisher;
pub mod gamma;
pub mod gtest;
pub mod interest;
pub mod validity;

pub use chi2::{chi2_statistic, Chi2Outcome, Chi2Test, DfConvention};
pub use effect::{cramers_v, cramers_v_categorical, odds_ratio, phi_coefficient, yates_chi2};
pub use gtest::{g_statistic, g_test};
pub use chi2dist::{standard_normal_quantile, ChiSquared};
pub use critical::{critical_value, SignificanceLevel};
pub use fisher::{fisher_exact, Alternative, FisherOutcome};
pub use interest::{dependence_ratio, CellInterest, InterestReport};
pub use validity::{check_dense, Validity, ValidityRule};

//! Debug-build numerical invariant contracts.
//!
//! The statistical layer's correctness arguments rest on a handful of
//! invariants — probabilities live in `[0, 1]`, a chi-squared statistic
//! is non-negative, a contingency table's cells sum to its `n`, IPF
//! marginals land within the reported residual. Each contract here is a
//! `debug_assert!`-backed check: free in release builds, loud in debug
//! builds and under `cargo test`, where every pipeline run exercises
//! them end to end.
//!
//! Contracts take a `label` naming the quantity so a violation reads as
//! a diagnosis ("χ² cutoff is -0.3") rather than a bare boolean failure.

use bmb_basket::ContingencyTable;

/// Slack allowed above `ln p = 0` for log-probabilities, covering the
/// rounding of `ln(exp(·))` round trips near certainty.
const LN_PROB_SLACK: f64 = 1e-9;

/// Contract: `p` is a probability — in `[0, 1]`, not NaN.
#[inline]
#[track_caller]
pub fn assert_probability(label: &str, p: f64) {
    debug_assert!(
        (0.0..=1.0).contains(&p),
        "contract violated: {label} = {p} is not a probability in [0, 1]"
    );
}

/// Contract: `ln_p` is the natural log of a probability — at most zero
/// (within rounding slack), never NaN. `-inf` (p = 0) is legal.
#[inline]
#[track_caller]
pub fn assert_ln_probability(label: &str, ln_p: f64) {
    debug_assert!(
        ln_p <= LN_PROB_SLACK,
        "contract violated: {label} = {ln_p} exceeds ln(1) = 0"
    );
}

/// Contract: a chi-squared statistic (or cutoff) is non-negative and
/// never NaN. Infinity is rejected too: every statistic this workspace
/// produces is a finite sum of finite cell terms.
#[inline]
#[track_caller]
pub fn assert_chi2_statistic(label: &str, stat: f64) {
    debug_assert!(
        stat.is_finite() && stat >= 0.0,
        "contract violated: {label} = {stat} is not a finite non-negative χ² value"
    );
}

/// Contract: `value` is within `tolerance` of `target`.
#[inline]
#[track_caller]
pub fn assert_close(label: &str, value: f64, target: f64, tolerance: f64) {
    debug_assert!(
        (value - target).abs() <= tolerance,
        "contract violated: {label} = {value} misses target {target} \
         by more than {tolerance}"
    );
}

/// Contract: `probs` is a probability distribution — every entry in
/// `[0, 1]` and the total within `tolerance` of 1.
#[inline]
#[track_caller]
pub fn assert_distribution(label: &str, probs: &[f64], tolerance: f64) {
    if cfg!(debug_assertions) {
        for (i, &p) in probs.iter().enumerate() {
            debug_assert!(
                (0.0..=1.0).contains(&p),
                "contract violated: {label}[{i}] = {p} is not a probability"
            );
        }
        let total: f64 = probs.iter().sum();
        debug_assert!(
            (total - 1.0).abs() <= tolerance,
            "contract violated: {label} sums to {total}, not 1 ± {tolerance}"
        );
    }
}

/// Contract: a contingency table is internally consistent — its cell
/// counts sum to `n` and each item marginal equals the sum of the cells
/// where that item is present.
///
/// The walk over `2^m` cells only happens in debug builds.
#[inline]
#[track_caller]
pub fn assert_table_consistent(label: &str, table: &ContingencyTable) {
    if cfg!(debug_assertions) {
        let cell_sum: u64 = table.cells().map(|(_, observed)| observed).sum();
        debug_assert!(
            cell_sum == table.n(),
            "contract violated: {label} cells sum to {cell_sum}, n = {}",
            table.n()
        );
        for j in 0..table.dims() {
            let marginal: u64 = table
                .cells()
                .filter(|&(cell, _)| cell & (1 << j) != 0)
                .map(|(_, observed)| observed)
                .sum();
            debug_assert!(
                marginal == table.item_count(j),
                "contract violated: {label} marginal {j} is {marginal}, \
                 item_count says {}",
                table.item_count(j)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::Itemset;

    #[test]
    fn in_range_values_pass() {
        assert_probability("p", 0.0);
        assert_probability("p", 0.5);
        assert_probability("p", 1.0);
        assert_ln_probability("ln p", 0.0);
        assert_ln_probability("ln p", -1234.5);
        assert_ln_probability("ln p", f64::NEG_INFINITY);
        assert_chi2_statistic("χ²", 0.0);
        assert_chi2_statistic("χ²", 2006.34);
        assert_close("x", 1.0, 1.0 + 1e-12, 1e-9);
        assert_distribution("d", &[0.25, 0.25, 0.5], 1e-12);
    }

    #[test]
    fn consistent_table_passes() {
        let t = ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![5, 5, 70, 20]);
        assert_table_consistent("tea/coffee", &t);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "contract violated")]
    fn out_of_range_probability_trips() {
        assert_probability("p", 1.5);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "contract violated")]
    fn nan_statistic_trips() {
        assert_chi2_statistic("χ²", f64::NAN);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "contract violated")]
    fn negative_statistic_trips() {
        assert_chi2_statistic("χ²", -0.001);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "contract violated")]
    fn leaky_distribution_trips() {
        assert_distribution("d", &[0.3, 0.3], 1e-9);
    }
}

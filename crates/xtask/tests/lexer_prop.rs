//! Property tests for the lexer: no panics on arbitrary (multibyte)
//! input, and no token leakage out of string/char/byte-string literals.
//!
//! The lexer underpins every pass, so its two load-bearing contracts
//! are pinned from both sides:
//!
//! * **total** — `lex` never panics, whatever bytes arrive (multibyte
//!   identifiers, stray continuation bytes, unterminated literals);
//! * **opaque literals** — nothing inside a string, raw string, byte
//!   string, or char literal ever becomes a token, and code outside
//!   them always does.

use bmb_xtask::lexer::{lex, TokKind};
use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::TestRng;
use rand::Rng;

/// Characters chosen to stress every lexer branch: ASCII idents and
/// punctuation, quote/escape machinery, raw-string guards, and
/// multibyte code points (2-, 3-, and 4-byte UTF-8).
const POOL: &[char] = &[
    'a', 'Z', '_', '0', '9', ' ', '\n', '\t', '"', '\'', '\\', '/', '*', 'b', 'r', '#', '(', ')',
    '{', '}', '.', ':', ';', '<', '>', '=', '!', '&', '|', ',', '-', '+', 'é', 'ß', 'Ω', '—', '中',
    '🦀', '\u{80}', '\u{7ff}', '\u{fffd}',
];

/// Arbitrary soup over [`POOL`], heavy on the troublesome characters.
struct CharSoup {
    max_len: usize,
}

impl Strategy for CharSoup {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.0.gen_range(0..self.max_len);
        (0..len)
            .map(|_| POOL[rng.0.gen_range(0..POOL.len())])
            .collect()
    }
}

proptest! {
    /// The lexer is total: arbitrary multibyte soup never panics, every
    /// produced token is non-empty, and line numbers never go backward.
    #[test]
    fn lex_never_panics_and_tokens_are_sane(src in CharSoup { max_len: 160 }) {
        let lexed = lex(&src);
        let mut last_line = 1;
        for tok in &lexed.tokens {
            prop_assert!(!tok.text.is_empty(), "empty token from {src:?}");
            prop_assert!(tok.line >= last_line, "line went backward in {src:?}");
            last_line = tok.line;
        }
    }

    /// Anything placed inside a plain string literal stays there: the
    /// canary ident must never leak into the token stream, while the
    /// ident outside the literal must always be found.
    #[test]
    fn string_contents_never_become_tokens(noise in CharSoup { max_len: 40 }) {
        // Escape the noise so the literal stays well-formed; the canary
        // rides along inside it.
        let escaped: String = noise
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        let src = format!("let s = \"{escaped} leakcheck\"; outside(s);");
        let lexed = lex(&src);
        prop_assert!(
            !lexed.tokens.iter().any(|t| t.text == "leakcheck"),
            "literal contents leaked from {src:?}"
        );
        prop_assert!(
            lexed.tokens.iter().any(|t| t.text == "outside"),
            "code after the literal vanished in {src:?}"
        );
    }
}

/// Deterministic corpus of the literal forms that historically trip
/// token-level lexers: escaped quotes in char/byte-char literals, raw
/// and byte-raw strings with `#` guards, and unicode escapes. The
/// canary `leakcheck` sits inside every literal; `ok` sits outside.
#[test]
fn tricky_literals_are_opaque() {
    let corpus = [
        "let a = b'\\''; ok(leak_in_comment); // leakcheck",
        "let b = b\"leakcheck \\xff\"; ok(a);",
        "let c = br#\"leakcheck \" still\"#; ok(b);",
        "let d = r##\"leakcheck \"# nested\"##; ok(c);",
        "let e = '\\u{1F980}'; ok(d); /* leakcheck */",
        "let f = '\\\\'; let g = '\"'; ok(e);",
        "let h = \"\\\"leakcheck\\\"\"; ok(f);",
        "let i = b'\\\\'; ok(g);",
    ];
    for src in corpus {
        let lexed = lex(src);
        assert!(
            !lexed.tokens.iter().any(|t| t.text.contains("leakcheck")),
            "literal/comment contents leaked from {src:?}"
        );
        assert!(
            lexed.tokens.iter().any(|t| t.text == "ok"),
            "real code lost in {src:?}"
        );
    }
}

/// Multibyte identifiers and punctuation survive byte-accurate slicing
/// (the exact inputs that once sliced mid-character).
#[test]
fn multibyte_input_lexes_cleanly() {
    for src in [
        "let café = 1; — Ω中🦀",
        "π\u{80}\u{7ff}\u{fffd}",
        "fn naïve() { résumé.touché(); }",
    ] {
        let lexed = lex(src);
        for tok in &lexed.tokens {
            assert!(!tok.text.is_empty());
        }
    }
    assert!(lex("fn naïve() {}")
        .tokens
        .iter()
        .any(|t| t.text == "naïve"));
}

/// The comment-directive vocabulary parses: `lint:allow` names,
/// `lock:allow` shorthand, `lock:order` chains, and `ordering:` notes.
#[test]
fn directives_parse_and_scope_to_their_lines() {
    let src = "\
let a = 1; // lint:allow(panic)
// lock:allow(io, reentrant)
let b = 2;
// lock:order(state < wal < dir)
// ordering: relaxed is fine, the flag is advisory
let c = 3;
let d = 4;
";
    let lexed = lex(src);
    // lint:allow on its own line and inherited by the next.
    assert!(lexed.allows(1, "panic"));
    assert!(lexed.allows(2, "panic"));
    assert!(!lexed.allows(3, "panic"));
    // lock:allow stores prefixed names; both names of the list parse.
    assert!(lexed.allows(2, "lock_io"));
    assert!(lexed.allows(3, "lock_io"));
    assert!(lexed.allows(2, "lock_reentrant"));
    assert!(!lexed.allows(2, "lock_order"));
    // lock:order chains land with their declaration line.
    assert_eq!(lexed.lock_orders.len(), 1);
    let (line, chain) = &lexed.lock_orders[0];
    assert_eq!(*line, 4);
    assert_eq!(chain, &["state", "wal", "dir"]);
    // ordering: notes cover their line and the line below.
    assert!(lexed.has_ordering_note(5));
    assert!(lexed.has_ordering_note(6));
    assert!(!lexed.has_ordering_note(7));
}

/// Malformed directives neither panic nor register anything.
#[test]
fn malformed_directives_are_ignored() {
    for src in [
        "// lock:order(a)", // needs at least two names
        "// lock:order()",
        "// lock:order(a <",
        "// lint:allow(",
        "// lock:allow",
        "// lint:allow()",
    ] {
        let lexed = lex(src);
        assert!(lexed.lock_orders.is_empty(), "registered from {src:?}");
        assert!(!lexed.allows(1, "panic"), "allowed from {src:?}");
    }
    // An unclosed paren with names still yields nothing.
    assert!(lex("// lock:order(a < b").tokens.is_empty());
}

/// `TokKind` classification is stable for the token shapes the passes
/// key on (idents vs puncts around multibyte neighborhood).
#[test]
fn classification_survives_multibyte_neighbors() {
    let lexed = lex("x—y");
    let kinds: Vec<(TokKind, &str)> = lexed
        .tokens
        .iter()
        .map(|t| (t.kind, t.text.as_str()))
        .collect();
    assert_eq!(
        kinds,
        vec![
            (TokKind::Ident, "x"),
            (TokKind::Punct, "—"),
            (TokKind::Ident, "y"),
        ]
    );
}

//! The analyzer tests the analyzer: lint the seeded-violation fixture
//! workspace under `fixtures/ws` and assert the exact findings, then
//! lint the real workspace and assert it is clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use bmb_xtask::{run_lint, Lint, LintConfig};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// `(lint, relative path, line)` triples, sorted, for comparison.
fn triples(findings: &[bmb_xtask::Finding]) -> Vec<(Lint, String, usize)> {
    let mut v: Vec<(Lint, String, usize)> = findings
        .iter()
        .map(|f| (f.lint, f.file.to_string_lossy().replace('\\', "/"), f.line))
        .collect();
    v.sort();
    v
}

#[test]
fn fixture_workspace_yields_exactly_the_seeded_findings() {
    let findings = run_lint(&fixture_root(), &LintConfig::default()).expect("fixture lint runs");
    let got = triples(&findings);
    let want: Vec<(Lint, String, usize)> = vec![
        (Lint::Panic, "crates/quest/src/lib.rs".into(), 5),
        (Lint::Panic, "crates/stats/src/lib.rs".into(), 8),
        (Lint::FloatEq, "crates/stats/src/lib.rs".into(), 19),
        (Lint::LossyCast, "crates/stats/src/lib.rs".into(), 24),
        (Lint::Dependency, "Cargo.toml".into(), 9),
        (Lint::Dependency, "crates/stats/Cargo.toml".into(), 7),
        (Lint::Dependency, "crates/stats/Cargo.toml".into(), 11),
        (Lint::MissingDocs, "crates/stats/src/lib.rs".into(), 17),
        (Lint::ForbiddenEscape, "crates/stats/src/lib.rs".into(), 14),
        (Lint::LockOrder, "crates/core/src/lib.rs".into(), 31),
        (Lint::LockOrder, "crates/core/src/lib.rs".into(), 38),
        (Lint::LockOrder, "crates/core/src/lib.rs".into(), 45),
        (Lint::LockOrder, "crates/core/src/lib.rs".into(), 53),
        (Lint::LockReentrant, "crates/core/src/lib.rs".into(), 67),
        (Lint::LockAcrossIo, "crates/core/src/lib.rs".into(), 74),
        (
            Lint::AtomicRelaxedHandoff,
            "crates/core/src/lib.rs".into(),
            89,
        ),
        (
            Lint::AtomicRelaxedHandoff,
            "crates/core/src/lib.rs".into(),
            94,
        ),
        (Lint::RenameNoSync, "crates/basket/src/wal.rs".into(), 57),
        (Lint::RenameNoSync, "crates/basket/src/scrub.rs".into(), 15),
        (Lint::AckNoSync, "crates/basket/src/wal.rs".into(), 36),
    ];
    let mut want = want;
    want.sort();
    assert_eq!(
        got, want,
        "seeded fixture findings diverged; analyzer precision or recall regressed"
    );
}

#[test]
fn single_pass_configs_isolate_their_lint() {
    let root = fixture_root();
    let only_deps = LintConfig {
        deps: true,
        ..LintConfig::none()
    };
    let findings = run_lint(&root, &only_deps).expect("deps-only lint runs");
    assert_eq!(findings.len(), 3);
    assert!(findings.iter().all(|f| f.lint == Lint::Dependency));

    let only_panics = LintConfig {
        panics: true,
        ..LintConfig::none()
    };
    let findings = run_lint(&root, &only_panics).expect("panics-only lint runs");
    assert!(findings
        .iter()
        .all(|f| matches!(f.lint, Lint::Panic | Lint::ForbiddenEscape)));
    assert_eq!(findings.len(), 3);

    let only_locks = LintConfig {
        locks: true,
        ..LintConfig::none()
    };
    let findings = run_lint(&root, &only_locks).expect("locks-only lint runs");
    assert!(findings.iter().all(|f| f.lint.pass() == "locks"));
    assert_eq!(findings.len(), 6);

    let only_durability = LintConfig {
        durability: true,
        ..LintConfig::none()
    };
    let findings = run_lint(&root, &only_durability).expect("durability-only lint runs");
    assert!(findings.iter().all(|f| f.lint.pass() == "durability"));
    assert_eq!(findings.len(), 3);
}

/// CI gate: every pass must catch *something* on the seeded fixtures —
/// a pass that reports zero findings there has silently stopped seeing.
#[test]
fn every_pass_reports_findings_on_fixtures() {
    let findings = run_lint(&fixture_root(), &LintConfig::default()).expect("fixture lint runs");
    for pass in [
        "panics",
        "floats",
        "deps",
        "docs",
        "locks",
        "atomics",
        "durability",
    ] {
        assert!(
            findings.iter().any(|f| f.lint.pass() == pass),
            "pass `{pass}` reported zero findings on the seeded fixtures"
        );
    }
}

/// The machine-readable renderer emits one object per finding with the
/// stable field order `file`, `line`, `lint`, `message`.
#[test]
fn json_rendering_is_stable_and_parseable() {
    let findings = run_lint(&fixture_root(), &LintConfig::default()).expect("fixture lint runs");
    let json = bmb_xtask::render_json(&findings);
    assert!(json.starts_with('[') && json.ends_with("]\n"));
    assert_eq!(json.matches("{\"file\":").count(), findings.len());
    assert_eq!(
        json.matches("\"line\":").count(),
        findings.len(),
        "every object carries a line field"
    );
    // Field order is part of the interface: file, line, lint, message.
    for obj in json.split("{\"file\":").skip(1) {
        let line_at = obj.find("\"line\":").expect("line present");
        let lint_at = obj.find("\"lint\":").expect("lint present");
        let msg_at = obj.find("\"message\":").expect("message present");
        assert!(
            line_at < lint_at && lint_at < msg_at,
            "field order is stable"
        );
    }
    assert!(json.contains("\"lint\":\"lock-order\""));
    assert!(json.contains("\"lint\":\"ack-no-sync\""));

    let empty = bmb_xtask::render_json(&[]);
    assert_eq!(empty, "[]\n");
}

#[test]
fn real_workspace_is_clean() {
    let findings =
        run_lint(&workspace_root(), &LintConfig::default()).expect("workspace lint runs");
    let rendered = bmb_xtask::render(&findings);
    assert!(
        findings.is_empty(),
        "the real tree must lint clean:\n{rendered}"
    );
}

#[test]
fn binary_exits_nonzero_on_fixtures_and_zero_on_real_tree() {
    let exe = env!("CARGO_BIN_EXE_bmb-xtask");

    let on_fixtures = Command::new(exe)
        .arg("lint")
        .arg(fixture_root())
        .output()
        .expect("binary runs on fixtures");
    assert_eq!(
        on_fixtures.status.code(),
        Some(1),
        "seeded violations must exit 1; stdout:\n{}",
        String::from_utf8_lossy(&on_fixtures.stdout)
    );

    let on_real = Command::new(exe)
        .arg("lint")
        .arg(workspace_root())
        .output()
        .expect("binary runs on workspace");
    assert_eq!(
        on_real.status.code(),
        Some(0),
        "the real tree must exit 0; stdout:\n{}",
        String::from_utf8_lossy(&on_real.stdout)
    );

    let usage = Command::new(exe).arg("--help").output().expect("help runs");
    assert_eq!(usage.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&usage.stdout).contains("USAGE"));
}

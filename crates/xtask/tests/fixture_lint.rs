//! The analyzer tests the analyzer: lint the seeded-violation fixture
//! workspace under `fixtures/ws` and assert the exact findings, then
//! lint the real workspace and assert it is clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use bmb_xtask::{run_lint, Lint, LintConfig};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// `(lint, relative path, line)` triples, sorted, for comparison.
fn triples(findings: &[bmb_xtask::Finding]) -> Vec<(Lint, String, usize)> {
    let mut v: Vec<(Lint, String, usize)> = findings
        .iter()
        .map(|f| (f.lint, f.file.to_string_lossy().replace('\\', "/"), f.line))
        .collect();
    v.sort();
    v
}

#[test]
fn fixture_workspace_yields_exactly_the_seeded_findings() {
    let findings = run_lint(&fixture_root(), &LintConfig::default()).expect("fixture lint runs");
    let got = triples(&findings);
    let want: Vec<(Lint, String, usize)> = vec![
        (Lint::Panic, "crates/quest/src/lib.rs".into(), 5),
        (Lint::Panic, "crates/stats/src/lib.rs".into(), 8),
        (Lint::FloatEq, "crates/stats/src/lib.rs".into(), 19),
        (Lint::LossyCast, "crates/stats/src/lib.rs".into(), 24),
        (Lint::Dependency, "Cargo.toml".into(), 9),
        (Lint::Dependency, "crates/stats/Cargo.toml".into(), 7),
        (Lint::Dependency, "crates/stats/Cargo.toml".into(), 11),
        (Lint::MissingDocs, "crates/stats/src/lib.rs".into(), 17),
        (Lint::ForbiddenEscape, "crates/stats/src/lib.rs".into(), 14),
    ];
    let mut want = want;
    want.sort();
    assert_eq!(
        got, want,
        "seeded fixture findings diverged; analyzer precision or recall regressed"
    );
}

#[test]
fn single_pass_configs_isolate_their_lint() {
    let root = fixture_root();
    let only_deps = LintConfig {
        panics: false,
        floats: false,
        docs: false,
        deps: true,
    };
    let findings = run_lint(&root, &only_deps).expect("deps-only lint runs");
    assert_eq!(findings.len(), 3);
    assert!(findings.iter().all(|f| f.lint == Lint::Dependency));

    let only_panics = LintConfig {
        panics: true,
        floats: false,
        docs: false,
        deps: false,
    };
    let findings = run_lint(&root, &only_panics).expect("panics-only lint runs");
    assert!(findings
        .iter()
        .all(|f| matches!(f.lint, Lint::Panic | Lint::ForbiddenEscape)));
    assert_eq!(findings.len(), 3);
}

#[test]
fn real_workspace_is_clean() {
    let findings =
        run_lint(&workspace_root(), &LintConfig::default()).expect("workspace lint runs");
    let rendered = bmb_xtask::render(&findings);
    assert!(
        findings.is_empty(),
        "the real tree must lint clean:\n{rendered}"
    );
}

#[test]
fn binary_exits_nonzero_on_fixtures_and_zero_on_real_tree() {
    let exe = env!("CARGO_BIN_EXE_bmb-xtask");

    let on_fixtures = Command::new(exe)
        .arg("lint")
        .arg(fixture_root())
        .output()
        .expect("binary runs on fixtures");
    assert_eq!(
        on_fixtures.status.code(),
        Some(1),
        "seeded violations must exit 1; stdout:\n{}",
        String::from_utf8_lossy(&on_fixtures.stdout)
    );

    let on_real = Command::new(exe)
        .arg("lint")
        .arg(workspace_root())
        .output()
        .expect("binary runs on workspace");
    assert_eq!(
        on_real.status.code(),
        Some(0),
        "the real tree must exit 0; stdout:\n{}",
        String::from_utf8_lossy(&on_real.stdout)
    );

    let usage = Command::new(exe).arg("--help").output().expect("help runs");
    assert_eq!(usage.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&usage.stdout).contains("USAGE"));
}

//! Fixture: seeded durability violation on the quarantine path.
//!
//! Mirrors the scrub module's quarantine/repair publishes: moving
//! damaged evidence aside (or publishing a rebuilt artifact) must
//! follow write-temp → fsync → rename like any other publish, or a
//! crash can lose the only copy of the damage (DESIGN.md §15).

use std::io;

use crate::wal::{Dir, Media};

/// Flagged [rename-no-sync]: quarantines evidence without syncing the
/// written bytes first.
pub fn quarantine_unsynced(dir: &mut dyn Dir) -> io::Result<()> {
    dir.rename("wal.000001", "quarantine.0001.wal.000001") // RenameNoSync
}

/// Not flagged: the evidence bytes reach stable storage before the
/// rename publishes them under the quarantine name.
pub fn quarantine_synced(dir: &mut dyn Dir, media: &mut Media) -> io::Result<()> {
    media.sync()?;
    dir.rename("wal.000001", "quarantine.0001.wal.000001")
}

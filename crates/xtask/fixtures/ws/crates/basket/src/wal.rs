//! Fixture: seeded durability violations on the WAL ack surface.

use std::io;

/// A minimal storage handle the fixture syncs through.
pub struct Media {
    synced: bool,
}

impl Media {
    /// Flushes written bytes to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.synced = true;
        Ok(())
    }

    /// Whether a sync has been observed.
    pub fn is_synced(&self) -> bool {
        self.synced
    }
}

/// A directory abstraction with rename-based publish.
pub trait Dir {
    /// Atomically renames `from` to `to`.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;
}

/// A write-ahead log over the media.
pub struct Wal {
    media: Media,
}

impl Wal {
    /// Flagged [ack-no-sync]: acknowledges without ever syncing.
    pub fn append_unsynced(&mut self, payload: &[u8]) -> io::Result<()> {
        self.stage(payload)
    }

    /// Not flagged: reaches a sync through the commit helper.
    pub fn append_synced(&mut self, payload: &[u8]) -> io::Result<()> {
        self.stage(payload)?;
        self.commit()
    }

    fn stage(&mut self, _payload: &[u8]) -> io::Result<()> {
        Ok(())
    }

    fn commit(&mut self) -> io::Result<()> {
        self.media.sync()
    }
}

/// Flagged [rename-no-sync]: publishes without fsyncing the temp file.
pub fn publish_unsynced(dir: &mut dyn Dir) -> io::Result<()> {
    dir.rename("tmp", "final") // RenameNoSync
}

/// Not flagged: the temp bytes are synced before the rename.
pub fn publish_synced(dir: &mut dyn Dir, media: &mut Media) -> io::Result<()> {
    media.sync()?;
    dir.rename("tmp", "final")
}

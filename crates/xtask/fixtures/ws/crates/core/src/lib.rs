//! Fixture: seeded lock- and atomics-discipline violations.
//!
//! Every marker comment names the finding the analyzer must emit (or
//! must not). The integration tests assert the exact set.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Shared state guarded by several independently-ordered mutexes.
pub struct Hub {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
    delta: Mutex<u32>,
    first: Mutex<u32>,
    second: Mutex<u32>,
    running: AtomicBool,
    hits: AtomicU64,
}

/// Acquires a mutex, recovering from poisoning.
fn lock(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Hub {
    /// Flagged [lock-order]: `alpha` then `beta`, no declared order.
    pub fn undeclared_nesting(&self) -> u32 {
        let a = lock(&self.alpha);
        let b = lock(&self.beta); // LockOrder (undeclared)
        *a + *b
    }

    /// Flagged [lock-order] conflict: `gamma` then `delta` here…
    pub fn conflict_one_way(&self) -> u32 {
        let g = lock(&self.gamma);
        let d = lock(&self.delta); // LockOrder (cycle witness)
        *g + *d
    }

    /// …but `delta` then `gamma` here — a deadlock cycle.
    pub fn conflict_other_way(&self) -> u32 {
        let d = lock(&self.delta);
        let g = lock(&self.gamma); // LockOrder (cycle witness)
        *g + *d
    }

    // lock:order(first < second)
    /// Flagged [lock-order]: violates the declared order above.
    pub fn violates_declared(&self) -> u32 {
        let s = lock(&self.second);
        let f = lock(&self.first); // LockOrder (declared-order violation)
        *s + *f
    }

    /// Not flagged: respects the declared `first < second` order.
    pub fn respects_declared(&self) -> u32 {
        let f = lock(&self.first);
        let s = lock(&self.second);
        *f + *s
    }

    /// Flagged [lock-reentrant]: re-acquires `alpha` while held.
    pub fn reentrant(&self) -> u32 {
        let a = lock(&self.alpha);
        let again = lock(&self.alpha); // LockReentrant
        *a + *again
    }

    /// Flagged [lock-across-io]: guard held across a blocking flush.
    pub fn io_under_guard(&self, out: &mut dyn Write) -> u32 {
        let a = lock(&self.alpha);
        let _ = out.flush(); // LockAcrossIo
        *a
    }

    /// Not flagged: holding the guard across the flush is the design.
    pub fn io_allowed(&self, out: &mut dyn Write) -> u32 {
        // lock:allow(io)
        let a = lock(&self.alpha);
        let _ = out.flush();
        *a
    }

    /// Flagged [atomic-relaxed-handoff]: `running` gates control flow,
    /// and this relaxed load has no intent note.
    pub fn should_run(&self) -> bool {
        self.running.load(Ordering::Relaxed) // AtomicRelaxedHandoff
    }

    /// Flagged [atomic-relaxed-handoff]: relaxed store, same flag.
    pub fn stop(&self) {
        self.running.store(false, Ordering::Relaxed); // AtomicRelaxedHandoff
    }

    /// Not flagged: the note explains why relaxed is sound here.
    pub fn start(&self) {
        // ordering: the flag is advisory; a stale read only delays work.
        self.running.store(true, Ordering::Relaxed);
    }

    /// Not flagged: `hits` is a plain counter, never load-bearing.
    pub fn record(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The load that makes `running` load-bearing (and is itself noted).
    pub fn drain(&self) -> u64 {
        // ordering: shutdown check; staleness only delays the drain.
        while self.running.load(Ordering::Relaxed) {
            return self.hits.load(Ordering::Acquire);
        }
        0
    }
}

//! Fixture: a *strict* library crate seeded with violations.
//!
//! Every marker comment below names the finding the analyzer must emit
//! (or must not). The integration tests assert the exact set.

/// Flagged [panic]: unwrap in library code.
pub fn seeded_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // line 8: Panic
}

/// Flagged [forbidden-escape]: strict crates reject even the escape.
pub fn escaped_panic() {
    // lint:allow(panic)
    panic!("strict crates reject the escape") // line 14: ForbiddenEscape
}

pub fn undocumented(x: f64) -> bool {
    // line 17: MissingDocs
    x == 0.5 // line 19: FloatEq
}

/// Flagged [lossy-cast]: silent truncation.
pub fn lossy(x: f64) -> u64 {
    x as u64 // line 24: LossyCast
}

/// Not flagged: an integer `df` must not be poisoned by the float `df`
/// parameter of `other_scope` below (per-function ident scoping).
pub fn integer_df_compare(df: u32) -> bool {
    df == 2 // no finding
}

/// Not flagged: the float `df` lives in this scope only.
pub fn other_scope(df: f64) -> f64 {
    df + 1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        // Not flagged: inside #[cfg(test)].
        Option::<u32>::Some(3).unwrap();
        assert!(0.5_f64 == 0.5); // not flagged either
    }
}

//! Fixture: a non-strict library crate.

/// Flagged [panic]: unwrap in library code.
pub fn plain_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // line 5: Panic
}

/// Not flagged: the escape is honored outside strict crates.
pub fn escaped_unwrap(v: Option<u32>) -> u32 {
    // lint:allow(panic)
    v.unwrap()
}

/// Not flagged: macro_rules! bodies are token soup, not library code.
macro_rules! fixture_macro {
    () => {
        Option::<u32>::None.unwrap()
    };
}

/// Not flagged: no float/doc lints run in this crate, and the macro
/// invocation itself contains no panicky tokens.
pub fn uses_macro(x: f64) -> bool {
    let _ = fixture_macro!();
    x == 1.0
}

//! Finding model and human-readable rendering.

use std::fmt;
use std::path::PathBuf;

/// Which lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!` in library code.
    Panic,
    /// `==`/`!=` on float operands.
    FloatEq,
    /// A potentially lossy `as` cast on a float operand.
    LossyCast,
    /// External dependency outside the allowlist.
    Dependency,
    /// Missing `//!` module docs or `///` on a public item.
    MissingDocs,
    /// A `lint:allow` escape used in a crate where escapes are banned.
    ForbiddenEscape,
}

impl Lint {
    /// The directive name that suppresses this lint (when suppressible).
    pub fn allow_name(self) -> &'static str {
        match self {
            Lint::Panic => "panic",
            Lint::FloatEq => "float_eq",
            Lint::LossyCast => "lossy_cast",
            Lint::Dependency => "dependency",
            Lint::MissingDocs => "missing_docs",
            Lint::ForbiddenEscape => "forbidden_escape",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Lint::Panic => "panic-freedom",
            Lint::FloatEq => "float-eq",
            Lint::LossyCast => "lossy-cast",
            Lint::Dependency => "dependency-allowlist",
            Lint::MissingDocs => "missing-docs",
            Lint::ForbiddenEscape => "forbidden-escape",
        };
        f.write_str(name)
    }
}

/// One lint violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// File the violation is in (workspace-relative when possible).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Renders all findings plus a summary line, sorted by file then line.
pub fn render(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut out = String::new();
    for finding in &sorted {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("xtask lint: clean\n");
    } else {
        out.push_str(&format!("xtask lint: {} finding(s)\n", findings.len()));
    }
    out
}

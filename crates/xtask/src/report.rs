//! Finding model and human-readable rendering.

use std::fmt;
use std::path::PathBuf;

/// Which lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!` in library code.
    Panic,
    /// `==`/`!=` on float operands.
    FloatEq,
    /// A potentially lossy `as` cast on a float operand.
    LossyCast,
    /// External dependency outside the allowlist.
    Dependency,
    /// Missing `//!` module docs or `///` on a public item.
    MissingDocs,
    /// A `lint:allow` escape used in a crate where escapes are banned.
    ForbiddenEscape,
    /// Inconsistent or undeclared lock acquisition order.
    LockOrder,
    /// Re-entrant acquisition of a lock already held.
    LockReentrant,
    /// A guard held across a blocking I/O or sync call.
    LockAcrossIo,
    /// `Ordering::Relaxed` on a control-flow atomic without intent note.
    AtomicRelaxedHandoff,
    /// A rename/publish without a preceding fsync of the written bytes.
    RenameNoSync,
    /// A WAL ack path that never reaches a sync call.
    AckNoSync,
}

impl Lint {
    /// The directive name that suppresses this lint (when suppressible).
    pub fn allow_name(self) -> &'static str {
        match self {
            Lint::Panic => "panic",
            Lint::FloatEq => "float_eq",
            Lint::LossyCast => "lossy_cast",
            Lint::Dependency => "dependency",
            Lint::MissingDocs => "missing_docs",
            Lint::ForbiddenEscape => "forbidden_escape",
            Lint::LockOrder => "lock_order",
            Lint::LockReentrant => "lock_reentrant",
            Lint::LockAcrossIo => "lock_io",
            Lint::AtomicRelaxedHandoff => "atomic_ordering",
            Lint::RenameNoSync => "durability",
            Lint::AckNoSync => "durability",
        }
    }

    /// The pass this lint belongs to (summary / `--only` name).
    pub fn pass(self) -> &'static str {
        match self {
            Lint::Panic | Lint::ForbiddenEscape => "panics",
            Lint::FloatEq | Lint::LossyCast => "floats",
            Lint::Dependency => "deps",
            Lint::MissingDocs => "docs",
            Lint::LockOrder | Lint::LockReentrant | Lint::LockAcrossIo => "locks",
            Lint::AtomicRelaxedHandoff => "atomics",
            Lint::RenameNoSync | Lint::AckNoSync => "durability",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Lint::Panic => "panic-freedom",
            Lint::FloatEq => "float-eq",
            Lint::LossyCast => "lossy-cast",
            Lint::Dependency => "dependency-allowlist",
            Lint::MissingDocs => "missing-docs",
            Lint::ForbiddenEscape => "forbidden-escape",
            Lint::LockOrder => "lock-order",
            Lint::LockReentrant => "lock-reentrant",
            Lint::LockAcrossIo => "lock-across-io",
            Lint::AtomicRelaxedHandoff => "atomic-relaxed-handoff",
            Lint::RenameNoSync => "rename-no-sync",
            Lint::AckNoSync => "ack-no-sync",
        };
        f.write_str(name)
    }
}

/// One lint violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// File the violation is in (workspace-relative when possible).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// The passes, in display order for the summary line.
const PASSES: &[&str] = &[
    "panics",
    "floats",
    "deps",
    "docs",
    "locks",
    "atomics",
    "durability",
];

/// Renders all findings plus per-pass counts and a summary line,
/// sorted by file then line.
pub fn render(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut out = String::new();
    for finding in &sorted {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    out.push_str("passes:");
    for pass in PASSES {
        let count = findings.iter().filter(|f| f.lint.pass() == *pass).count();
        out.push_str(&format!(" {pass}={count}"));
    }
    out.push('\n');
    if findings.is_empty() {
        out.push_str("xtask lint: clean\n");
    } else {
        out.push_str(&format!("xtask lint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Renders findings as a JSON array with stable field order
/// (`file`, `line`, `lint`, `message`), sorted by file then line.
pub fn render_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut out = String::from("[");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file.display().to_string()),
            f.line,
            f.lint,
            json_escape(&f.message)
        ));
    }
    if !sorted.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

//! A small Rust lexer: just enough tokenization for reliable linting.
//!
//! The lints must not fire on text inside string literals, comments, or
//! char literals, and must see multi-char operators (`==`, `!=`) as one
//! token — that is the difference between a token-aware analyzer and a
//! grep. The lexer also harvests `// lint:allow(name)` directives from
//! comments, keyed by line, so lints can honor local escape hatches.

use std::collections::{HashMap, HashSet};

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `pub`, …).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// Operator or delimiter, possibly multi-char (`==`, `::`, `{`).
    Punct,
    /// A lifetime (`'a`) — kept so char literals are not confused.
    Lifetime,
}

/// One lexeme with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokKind,
    /// The raw text of the lexeme.
    pub text: String,
    /// 1-based source line the lexeme starts on.
    pub line: usize,
}

/// A tokenized source file plus the comment directives found in it.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in order. Comments and literals' contents are gone.
    pub tokens: Vec<Token>,
    /// `line -> directive names` from `// lint:allow(a, b)` comments.
    pub directives: HashMap<usize, HashSet<String>>,
}

impl Lexed {
    /// Whether `name` is allowed on `line` — by a directive on the same
    /// line (trailing comment) or on the line directly above.
    pub fn allows(&self, line: usize, name: &str) -> bool {
        let hit = |l: usize| self.directives.get(&l).is_some_and(|s| s.contains(name));
        hit(line) || (line > 1 && hit(line - 1))
    }
}

/// Multi-char operators merged into single tokens, longest first.
const COMPOUND: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenizes `src`. Unterminated literals end the token stream early —
/// good enough for linting, and the compiler rejects such files anyway.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();

    let push = |out: &mut Lexed, kind: TokKind, text: &str, line: usize| {
        out.tokens.push(Token {
            kind,
            text: text.to_string(),
            line,
        });
    };

    while i < n {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                record_directives(&mut out, &src[start..i], line);
                // Doc comments still matter to the doc lint, which works on
                // raw lines; the token stream drops them all.
            }
            '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte_string(bytes, i, &mut line);
            }
            '\'' => {
                // Lifetime or char literal.
                if i + 1 < n
                    && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
                    && !(i + 2 < n && bytes[i + 2] == b'\'')
                {
                    let start = i;
                    i += 1;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                    push(&mut out, TokKind::Lifetime, &src[start..i], line);
                } else {
                    i += 1; // opening quote
                    if i < n && bytes[i] == b'\\' {
                        i += 2;
                        while i < n && bytes[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        // Possibly multi-byte char.
                        while i < n && bytes[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                if c == '0' && i + 1 < n && matches!(bytes[i + 1], b'x' | b'o' | b'b') {
                    i += 2;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                } else {
                    while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                    if i < n && bytes[i] == b'.' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                        is_float = true;
                        i += 1;
                        while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                            i += 1;
                        }
                    } else if i < n
                        && bytes[i] == b'.'
                        && !(i + 1 < n
                            && (bytes[i + 1] == b'.'
                                || bytes[i + 1].is_ascii_alphabetic()
                                || bytes[i + 1] == b'_'))
                    {
                        // `1.` — a float with empty fraction.
                        is_float = true;
                        i += 1;
                    }
                    if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < n && bytes[j].is_ascii_digit() {
                            is_float = true;
                            i = j;
                            while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                                i += 1;
                            }
                        }
                    }
                    // Type suffix.
                    let suffix_start = i;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                    let suffix = &src[suffix_start..i];
                    if suffix.starts_with('f') {
                        is_float = true;
                    }
                }
                let kind = if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                };
                push(&mut out, kind, &src[start..i], line);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push(&mut out, TokKind::Ident, &src[start..i], line);
            }
            _ => {
                let rest = &src[i..];
                let compound = COMPOUND.iter().find(|op| rest.starts_with(**op));
                match compound {
                    Some(op) => {
                        push(&mut out, TokKind::Punct, op, line);
                        i += op.len();
                    }
                    None => {
                        let len = c.len_utf8();
                        push(&mut out, TokKind::Punct, &src[i..i + len], line);
                        i += len;
                    }
                }
            }
        }
    }
    out
}

/// Parses `lint:allow(a, b)` out of one line comment, if present.
fn record_directives(out: &mut Lexed, comment: &str, line: usize) {
    let Some(pos) = comment.find("lint:allow(") else {
        return;
    };
    let after = &comment[pos + "lint:allow(".len()..];
    let Some(close) = after.find(')') else { return };
    let names = out.directives.entry(line).or_default();
    for name in after[..close].split(',') {
        let name = name.trim();
        if !name.is_empty() {
            names.insert(name.to_string());
        }
    }
}

/// Whether position `i` starts a raw string (`r"`/`r#`) or byte string
/// (`b"`/`br"`/`br#`) rather than an identifier beginning with r/b.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let n = bytes.len();
    match bytes[i] {
        b'r' => i + 1 < n && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#'),
        b'b' => {
            (i + 1 < n && bytes[i + 1] == b'"')
                || (i + 2 < n
                    && bytes[i + 1] == b'r'
                    && (bytes[i + 2] == b'"' || bytes[i + 2] == b'#'))
                || (i + 1 < n && bytes[i + 1] == b'\'')
        }
        _ => false,
    }
}

/// Skips a plain `"…"` string with escapes; returns the index after it.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let n = bytes.len();
    i += 1;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'`; returns the
/// index after the literal.
fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let n = bytes.len();
    if bytes[i] == b'b' {
        i += 1;
        if i < n && bytes[i] == b'\'' {
            // Byte literal b'x'.
            i += 1;
            if i < n && bytes[i] == b'\\' {
                i += 2;
            } else {
                i += 1;
            }
            while i < n && bytes[i] != b'\'' {
                i += 1;
            }
            return (i + 1).min(n);
        }
        if i < n && bytes[i] == b'"' {
            return skip_string(bytes, i, line);
        }
    }
    // r or br: count hashes.
    if i < n && bytes[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0;
    while i < n && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || bytes[i] != b'"' {
        return i; // Not actually a raw string (e.g. `r#raw_ident`); resume.
    }
    i += 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while i < n {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        if bytes[i] == b'"' && bytes[i..].starts_with(&closer) {
            return i + closer.len();
        }
        i += 1;
    }
    i
}

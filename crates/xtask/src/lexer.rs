//! A small Rust lexer: just enough tokenization for reliable linting.
//!
//! The lints must not fire on text inside string literals, comments, or
//! char literals, and must see multi-char operators (`==`, `!=`) as one
//! token — that is the difference between a token-aware analyzer and a
//! grep. The lexer also harvests `// lint:allow(name)` directives from
//! comments, keyed by line, so lints can honor local escape hatches.

use std::collections::{HashMap, HashSet};

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `pub`, …).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// Operator or delimiter, possibly multi-char (`==`, `::`, `{`).
    Punct,
    /// A lifetime (`'a`) — kept so char literals are not confused.
    Lifetime,
}

/// One lexeme with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokKind,
    /// The raw text of the lexeme.
    pub text: String,
    /// 1-based source line the lexeme starts on.
    pub line: usize,
}

/// A tokenized source file plus the comment directives found in it.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in order. Comments and literals' contents are gone.
    pub tokens: Vec<Token>,
    /// `line -> directive names` from `// lint:allow(a, b)` comments.
    /// `// lock:allow(io)` records as the prefixed name `lock_io`.
    pub directives: HashMap<usize, HashSet<String>>,
    /// `(line, chain)` from `// lock:order(a < b < c)` declarations:
    /// each chain asserts a strict acquisition order, left before right.
    pub lock_orders: Vec<(usize, Vec<String>)>,
    /// Lines whose comment carries an `ordering:` intent note
    /// (documenting why a relaxed atomic handoff is sound).
    pub ordering_notes: HashSet<usize>,
}

impl Lexed {
    /// Whether `name` is allowed on `line` — by a directive on the same
    /// line (trailing comment) or on the line directly above.
    pub fn allows(&self, line: usize, name: &str) -> bool {
        let hit = |l: usize| self.directives.get(&l).is_some_and(|s| s.contains(name));
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// Whether `line` (or the line directly above) carries an
    /// `// ordering:` intent note.
    pub fn has_ordering_note(&self, line: usize) -> bool {
        self.ordering_notes.contains(&line)
            || (line > 1 && self.ordering_notes.contains(&(line - 1)))
    }
}

/// Multi-char operators merged into single tokens, longest first.
const COMPOUND: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenizes `src`. Unterminated literals end the token stream early —
/// good enough for linting, and the compiler rejects such files anyway.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();

    let push = |out: &mut Lexed, kind: TokKind, text: &str, line: usize| {
        out.tokens.push(Token {
            kind,
            text: text.to_string(),
            line,
        });
    };

    while i < n {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                record_directives(&mut out, &src[start..i], line);
                // Doc comments still matter to the doc lint, which works on
                // raw lines; the token stream drops them all.
            }
            '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte_string(bytes, i, &mut line);
            }
            '\'' => {
                // Lifetime or char literal.
                if i + 1 < n
                    && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
                    && !(i + 2 < n && bytes[i + 2] == b'\'')
                {
                    let start = i;
                    i += 1;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                    push(&mut out, TokKind::Lifetime, &src[start..i], line);
                } else {
                    i += 1; // opening quote
                    if i < n && bytes[i] == b'\\' {
                        i += 2;
                        while i < n && bytes[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        // Possibly multi-byte char.
                        while i < n && bytes[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                if c == '0' && i + 1 < n && matches!(bytes[i + 1], b'x' | b'o' | b'b') {
                    i += 2;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                } else {
                    while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                    if i < n && bytes[i] == b'.' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                        is_float = true;
                        i += 1;
                        while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                            i += 1;
                        }
                    } else if i < n
                        && bytes[i] == b'.'
                        && !(i + 1 < n
                            && (bytes[i + 1] == b'.'
                                || bytes[i + 1].is_ascii_alphabetic()
                                || bytes[i + 1] == b'_'))
                    {
                        // `1.` — a float with empty fraction.
                        is_float = true;
                        i += 1;
                    }
                    if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < n && bytes[j].is_ascii_digit() {
                            is_float = true;
                            i = j;
                            while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                                i += 1;
                            }
                        }
                    }
                    // Type suffix.
                    let suffix_start = i;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                    let suffix = &src[suffix_start..i];
                    if suffix.starts_with('f') {
                        is_float = true;
                    }
                }
                let kind = if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                };
                push(&mut out, kind, &src[start..i], line);
            }
            c if c.is_alphabetic() || c == '_' => {
                // `c` is only the lead byte; decode full chars so that
                // multi-byte identifiers never split mid-character.
                let start = i;
                while i < n {
                    match src.get(i..).and_then(|s| s.chars().next()) {
                        Some(ch) if ch.is_alphanumeric() || ch == '_' => i += ch.len_utf8(),
                        _ => break,
                    }
                }
                if i == start {
                    // A multi-byte char whose lead byte looked alphabetic
                    // but which is not an identifier char (e.g. `—`).
                    let len = char_len_at(src, i);
                    push(&mut out, TokKind::Punct, &src[i..i + len], line);
                    i += len;
                } else {
                    push(&mut out, TokKind::Ident, &src[start..i], line);
                }
            }
            _ => {
                let rest = &src[i..];
                let compound = COMPOUND.iter().find(|op| rest.starts_with(**op));
                match compound {
                    Some(op) => {
                        push(&mut out, TokKind::Punct, op, line);
                        i += op.len();
                    }
                    None => {
                        let len = char_len_at(src, i);
                        push(&mut out, TokKind::Punct, &src[i..i + len], line);
                        i += len;
                    }
                }
            }
        }
    }
    out
}

/// Parses the directive vocabulary out of one line comment, if present:
/// `lint:allow(a, b)`, `lock:allow(io)` (recorded as `lock_io`),
/// `lock:order(a < b < c)`, and `ordering:` intent notes.
fn record_directives(out: &mut Lexed, comment: &str, line: usize) {
    if let Some(names) = directive_args(comment, "lint:allow(") {
        let set = out.directives.entry(line).or_default();
        for name in names.split(',') {
            let name = name.trim();
            if !name.is_empty() {
                set.insert(name.to_string());
            }
        }
    }
    if let Some(names) = directive_args(comment, "lock:allow(") {
        let set = out.directives.entry(line).or_default();
        for name in names.split(',') {
            let name = name.trim();
            if !name.is_empty() {
                set.insert(format!("lock_{name}"));
            }
        }
    }
    if let Some(chain) = directive_args(comment, "lock:order(") {
        let names: Vec<String> = chain
            .split('<')
            .map(|n| n.trim().to_string())
            .filter(|n| !n.is_empty())
            .collect();
        if names.len() >= 2 {
            out.lock_orders.push((line, names));
        }
    }
    if comment.contains("ordering:") {
        out.ordering_notes.insert(line);
    }
}

/// The text between `prefix(` and its closing `)` in `comment`, if any.
fn directive_args<'a>(comment: &'a str, prefix: &str) -> Option<&'a str> {
    let pos = comment.find(prefix)?;
    let after = &comment[pos + prefix.len()..];
    let close = after.find(')')?;
    Some(&after[..close])
}

/// Byte length of the UTF-8 char starting at `i` (1 if `i` is somehow
/// not a char boundary, which keeps the lexer advancing instead of
/// panicking on malformed input).
fn char_len_at(src: &str, i: usize) -> usize {
    src.get(i..)
        .and_then(|s| s.chars().next())
        .map_or(1, char::len_utf8)
}

/// Whether position `i` starts a raw string (`r"`/`r#`) or byte string
/// (`b"`/`br"`/`br#`) rather than an identifier beginning with r/b.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let n = bytes.len();
    match bytes[i] {
        b'r' => i + 1 < n && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#'),
        b'b' => {
            (i + 1 < n && bytes[i + 1] == b'"')
                || (i + 2 < n
                    && bytes[i + 1] == b'r'
                    && (bytes[i + 2] == b'"' || bytes[i + 2] == b'#'))
                || (i + 1 < n && bytes[i + 1] == b'\'')
        }
        _ => false,
    }
}

/// Skips a plain `"…"` string with escapes; returns the index after it.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let n = bytes.len();
    i += 1;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'`; returns the
/// index after the literal.
fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let n = bytes.len();
    if bytes[i] == b'b' {
        i += 1;
        if i < n && bytes[i] == b'\'' {
            // Byte literal b'x'.
            i += 1;
            if i < n && bytes[i] == b'\\' {
                i += 2;
            } else {
                i += 1;
            }
            while i < n && bytes[i] != b'\'' {
                i += 1;
            }
            return (i + 1).min(n);
        }
        if i < n && bytes[i] == b'"' {
            return skip_string(bytes, i, line);
        }
    }
    // r or br: count hashes.
    if i < n && bytes[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0;
    while i < n && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || bytes[i] != b'"' {
        return i; // Not actually a raw string (e.g. `r#raw_ident`); resume.
    }
    i += 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while i < n {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        if bytes[i] == b'"' && bytes[i..].starts_with(&closer) {
            return i + closer.len();
        }
        i += 1;
    }
    i
}

//! Structural span detection over the token stream.
//!
//! Two kinds of regions are carved out of every file before linting:
//! `#[cfg(test)]` items (test code is allowed to panic and skip docs)
//! and `macro_rules!` definitions (their bodies are templates, not
//! expressions the lints can reason about).

use crate::lexer::{Lexed, TokKind};

/// Token-index and line ranges excluded from linting.
#[derive(Debug, Default)]
pub struct ExcludedSpans {
    /// Half-open token-index ranges `[start, end)`.
    ranges: Vec<(usize, usize)>,
}

impl ExcludedSpans {
    /// Whether token index `idx` falls in an excluded region.
    pub fn contains_token(&self, idx: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= idx && idx < e)
    }

    /// The set of excluded source lines (for line-oriented lints).
    pub fn line_set(&self, lexed: &Lexed) -> std::collections::HashSet<usize> {
        let mut lines = std::collections::HashSet::new();
        for &(s, e) in &self.ranges {
            if s >= lexed.tokens.len() {
                continue;
            }
            let start_line = lexed.tokens[s].line;
            let end_line = lexed.tokens[(e - 1).min(lexed.tokens.len() - 1)].line;
            lines.extend(start_line..=end_line);
        }
        lines
    }
}

/// Finds `#[cfg(test)]`-guarded items and `macro_rules!` definitions.
pub fn excluded_spans(lexed: &Lexed) -> ExcludedSpans {
    let toks = &lexed.tokens;
    let mut out = ExcludedSpans::default();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr_start(lexed, i) {
            let attr_end = match matching_bracket(lexed, i + 1) {
                Some(e) => e,
                None => break,
            };
            if let Some((start, end)) = guarded_item_span(lexed, attr_end + 1) {
                out.ranges.push((i, end));
                i = start.max(i + 1);
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "macro_rules"
            && i + 1 < toks.len()
            && toks[i + 1].text == "!"
        {
            if let Some((_, end)) = guarded_item_span(lexed, i + 2) {
                out.ranges.push((i, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Whether tokens at `i` begin `#[cfg(test)]` / `#[cfg(all(test, …))]`.
fn is_cfg_test_attr_start(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.tokens;
    if toks[i].text != "#" || i + 2 >= toks.len() || toks[i + 1].text != "[" {
        return false;
    }
    if toks[i + 2].text != "cfg" {
        return false;
    }
    let Some(close) = matching_bracket(lexed, i + 1) else {
        return false;
    };
    toks[i + 3..close]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "test")
}

/// Given the index of an opening `[`/`{`/`(`, returns its matching
/// closer's index.
pub(crate) fn matching_bracket(lexed: &Lexed, open_idx: usize) -> Option<usize> {
    let toks = &lexed.tokens;
    let (open, close) = match toks.get(open_idx)?.text.as_str() {
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        _ => return None,
    };
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Starting after an attribute (or `macro_rules!`), finds the span of the
/// guarded item: through the matching `}` of its first brace block, or
/// through a terminating `;` for braceless items (`use`, `mod x;`).
/// Returns `(start, end_exclusive)` token indexes.
fn guarded_item_span(lexed: &Lexed, mut i: usize) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let start = i;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    let end = matching_bracket(lexed, i)?;
                    return Some((start, end + 1));
                }
                // `(…)`/`[…]` groups may contain `;` (array types) —
                // skip them wholesale so they can't end the item early.
                "(" | "[" => {
                    i = matching_bracket(lexed, i)? + 1;
                    continue;
                }
                ";" => return Some((start, i + 1)),
                // A further attribute on the same item: skip it.
                "#" if i + 1 < toks.len() && toks[i + 1].text == "[" => {
                    i = matching_bracket(lexed, i + 1)? + 1;
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

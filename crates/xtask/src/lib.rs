//! `bmb-xtask` — the workspace's zero-dependency static analyzer.
//!
//! `cargo run -p bmb-xtask -- lint` runs seven token-aware passes over
//! the workspace (see DESIGN.md §"Static analysis & contracts"):
//!
//! 1. **panic-freedom** — no `unwrap`/`expect`/`panic!`/`todo!`/
//!    `unreachable!` in library crates outside `#[cfg(test)]`;
//! 2. **float discipline** — no exact `==`/`!=` on floats and no lossy
//!    `as` casts in the statistical hot paths;
//! 3. **dependency allowlist** — every `Cargo.toml` may only name
//!    vetted external crates;
//! 4. **doc coverage** — library crates must document their module
//!    files and public items;
//! 5. **lock discipline** — consistent `Mutex`/`RwLock` acquisition
//!    order (declared via `// lock:order(a < b)`), no re-entrant
//!    acquisition, no guard held across blocking I/O;
//! 6. **atomics intent** — `Ordering::Relaxed` on control-flow atomics
//!    must carry an `// ordering:` intent note;
//! 7. **sync-before-publish** — renames must be preceded by an fsync
//!    and WAL ack paths must reach a sync (`bmb-basket`).
//!
//! Escape hatch: `// lint:allow(panic | float_eq | lossy_cast |
//! missing_docs | lock_order | lock_reentrant | lock_io |
//! atomic_ordering | durability)` on the violating line or the line
//! above (`// lock:allow(io)` is shorthand for the lock names). The
//! crates whose numbers the paper's tables depend on (`bmb-stats`,
//! `bmb-basket`) are *strict*: even the panic escape is rejected there.

/// Atomics-intent pass: `Relaxed` on control-flow atomics needs notes.
pub mod atomics;
/// Call extraction and conservative unique-name callee resolution.
pub mod callgraph;
/// Dependency-allowlist pass over `Cargo.toml` manifests.
pub mod deps;
/// Doc-coverage pass: module docs and `///` on public items.
pub mod docs;
/// Sync-before-publish pass: fsync before rename / before WAL ack.
pub mod durability;
/// Float-discipline pass: no exact compares or lossy casts.
pub mod floats;
/// `fn` item extraction (name, visibility, body span).
pub mod funcs;
/// The token-aware lexer and comment-directive parser.
pub mod lexer;
/// Lock-discipline pass: order, re-entrancy, I/O under guard.
pub mod locks;
/// Panic-freedom pass for library crates.
pub mod panics;
/// Finding model and text/JSON rendering.
pub mod report;
/// `#[cfg(test)]` / `macro_rules!` span exclusion.
pub mod spans;
/// Workspace traversal: crates, manifests, library sources.
pub mod walk;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use report::{render, render_json, Finding, Lint};

/// Crates whose `src/` must be panic-free (library crates).
pub const LIBRARY_CRATES: &[&str] = &[
    "obs", "basket", "stats", "lattice", "apriori", "quest", "sampling", "datasets", "core",
    "serve", "cluster", "xtask",
];

/// Crates where even `lint:allow(panic)` is rejected.
pub const STRICT_CRATES: &[&str] = &["basket", "stats"];

/// Crates whose statistical hot paths get the float-discipline pass.
pub const FLOAT_CRATES: &[&str] = &[
    "obs", "basket", "stats", "core", "sampling", "serve", "cluster",
];

/// Crates that must document every public item.
pub const DOC_CRATES: &[&str] = &[
    "obs", "basket", "stats", "core", "serve", "cluster", "lattice", "apriori", "quest",
    "sampling", "datasets", "xtask",
];

/// Crates under the sync-before-publish durability pass.
pub const DURABILITY_CRATES: &[&str] = &["basket"];

/// A lexed-and-analyzed source file, shared by the per-crate passes.
#[derive(Debug)]
pub struct SourceUnit {
    /// Path relative to the analysis root (for reporting).
    pub rel: PathBuf,
    /// Name of the crate the file belongs to.
    pub crate_name: String,
    /// Whether the file is library code (`src/`, not tests/bins).
    pub is_library: bool,
    /// The token stream and comment directives.
    pub lexed: lexer::Lexed,
    /// `#[cfg(test)]` / `macro_rules!` regions excluded from linting.
    pub excluded: spans::ExcludedSpans,
    /// Extracted `fn` items.
    pub funcs: Vec<funcs::FuncDef>,
}

/// Which passes to run; all on by default.
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// Panic-freedom pass.
    pub panics: bool,
    /// Float-discipline pass.
    pub floats: bool,
    /// Dependency-allowlist pass.
    pub deps: bool,
    /// Doc-coverage pass.
    pub docs: bool,
    /// Lock-discipline pass.
    pub locks: bool,
    /// Atomics-intent pass.
    pub atomics: bool,
    /// Sync-before-publish pass.
    pub durability: bool,
}

impl LintConfig {
    /// A config with every pass disabled (enable selected ones).
    pub fn none() -> Self {
        LintConfig {
            panics: false,
            floats: false,
            deps: false,
            docs: false,
            locks: false,
            atomics: false,
            durability: false,
        }
    }
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            panics: true,
            floats: true,
            deps: true,
            docs: true,
            locks: true,
            atomics: true,
            durability: true,
        }
    }
}

/// Runs the configured passes over the workspace at `root`.
///
/// Returns every finding; an empty vector means the tree is clean.
pub fn run_lint(root: &Path, config: &LintConfig) -> std::io::Result<Vec<Finding>> {
    let files = walk::collect(root)?;
    let mut findings = Vec::new();

    if config.deps {
        for (rel, manifest) in &files.manifests {
            deps::check(rel, manifest, &mut findings);
        }
    }

    // Lex every source once; the per-file passes run inline, the
    // per-crate passes run over the collected units afterwards.
    let mut units: Vec<SourceUnit> = Vec::new();
    for source in &files.sources {
        let src = std::fs::read_to_string(&source.path)?;
        let lexed = lexer::lex(&src);
        let excluded = spans::excluded_spans(&lexed);

        if config.panics
            && source.is_library
            && LIBRARY_CRATES.contains(&source.crate_name.as_str())
        {
            let strict = STRICT_CRATES.contains(&source.crate_name.as_str());
            panics::check(&source.rel, &lexed, &excluded, strict, &mut findings);
        }
        if config.floats && source.is_library && FLOAT_CRATES.contains(&source.crate_name.as_str())
        {
            floats::check(&source.rel, &lexed, &excluded, &mut findings);
        }
        if config.docs && source.is_library && DOC_CRATES.contains(&source.crate_name.as_str()) {
            let excluded_lines = excluded.line_set(&lexed);
            docs::check(&source.rel, &src, &lexed, &excluded_lines, &mut findings);
        }

        if config.locks || config.atomics || config.durability {
            let funcs = funcs::functions(&lexed, &excluded);
            units.push(SourceUnit {
                rel: source.rel.clone(),
                crate_name: source.crate_name.clone(),
                is_library: source.is_library,
                lexed,
                excluded,
                funcs,
            });
        }
    }

    let mut by_crate: BTreeMap<&str, Vec<&SourceUnit>> = BTreeMap::new();
    for unit in units.iter().filter(|u| u.is_library) {
        by_crate
            .entry(unit.crate_name.as_str())
            .or_default()
            .push(unit);
    }
    for (crate_name, crate_units) in &by_crate {
        if config.locks {
            locks::check_crate(crate_units, &mut findings);
        }
        if config.atomics {
            atomics::check_crate(crate_units, &mut findings);
        }
        if config.durability && DURABILITY_CRATES.contains(crate_name) {
            durability::check_crate(crate_units, &mut findings);
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::lexer::{lex, TokKind};
    use super::spans::excluded_spans;

    #[test]
    fn lexer_skips_strings_and_comments() {
        let src = concat!(
            "// a panic! in a comment\n",
            "/* block panic! comment /* nested */ still */\n",
            "let s = \"panic!(\\\"no\\\")\";\n",
            "let r = r#\"also panic! here\"#;\n",
            "call(s);\n",
        );
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "panic"));
        assert!(lexed.tokens.iter().any(|t| t.text == "call"));
    }

    #[test]
    fn lexer_merges_compound_operators() {
        let lexed = lex("if a == b && c != 1.0 {}");
        let puncts: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "&&", "!=", "{", "}"]);
    }

    #[test]
    fn lexer_classifies_numbers() {
        let lexed = lex("let a = 1.0; let b = 2e-3; let c = 42; let d = 5f64; let e = 0xff;");
        let kinds: Vec<(TokKind, &str)> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokKind::Float, "1.0"),
                (TokKind::Float, "2e-3"),
                (TokKind::Int, "42"),
                (TokKind::Float, "5f64"),
                (TokKind::Int, "0xff"),
            ]
        );
    }

    #[test]
    fn lexer_separates_int_from_range_and_method() {
        let lexed = lex("for i in 0..10 { x.1.max(2) }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Int && t.text == "0"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == ".."));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Float));
    }

    #[test]
    fn directives_parsed_with_multiple_names() {
        let lexed = lex("let x = 1; // lint:allow(panic, float_eq)\n");
        assert!(lexed.allows(1, "panic"));
        assert!(lexed.allows(1, "float_eq"));
        assert!(!lexed.allows(1, "lossy_cast"));
        // The next line inherits from the line above.
        assert!(lexed.allows(2, "panic"));
        assert!(!lexed.allows(3, "panic"));
    }

    #[test]
    fn cfg_test_spans_cover_test_modules() {
        let src = r#"
fn library_code() { value.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { other.unwrap(); }
}
"#;
        let lexed = lex(src);
        let excluded = excluded_spans(&lexed);
        let unwraps: Vec<usize> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(
            !excluded.contains_token(unwraps[0]),
            "library unwrap must be visible"
        );
        assert!(
            excluded.contains_token(unwraps[1]),
            "test unwrap must be excluded"
        );
    }

    #[test]
    fn macro_rules_bodies_are_excluded() {
        let src = r#"
macro_rules! gen {
    () => { x.unwrap() };
}
fn real() { y.unwrap(); }
"#;
        let lexed = lex(src);
        let excluded = excluded_spans(&lexed);
        let unwraps: Vec<usize> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert!(excluded.contains_token(unwraps[0]));
        assert!(!excluded.contains_token(unwraps[1]));
    }
}

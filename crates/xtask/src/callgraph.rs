//! A per-crate, name-resolved call graph over extracted functions.
//!
//! Token-level analysis has no type information, so callee resolution
//! is deliberately conservative: a call site `foo(…)` or `x.foo(…)`
//! resolves to a definition only when exactly one function named `foo`
//! exists in the scope being indexed (a crate, or a single file).
//! Ambiguous names are treated as opaque — the passes then neither
//! follow them nor report through them. This under-approximates
//! reachability but never fabricates an edge, which is the right
//! trade-off for lints that must not cry wolf.

use std::collections::HashMap;

use crate::funcs::FuncDef;
use crate::lexer::{Lexed, TokKind};

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// The called name (method or free function; path tail for paths).
    pub callee: String,
    /// Token index of the callee ident.
    pub tok: usize,
    /// 1-based source line of the call.
    pub line: usize,
}

/// Keywords and intrinsically-known idents that look like calls but
/// are not function calls we should resolve.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "fn", "let", "else", "in", "as",
    "unsafe", "ref", "mut", "await", "where", "impl", "dyn", "use", "pub", "crate", "super",
    "struct", "enum", "trait", "mod", "type", "static", "const", "break", "continue",
];

/// Extracts call sites from the token range `(lo, hi)` (exclusive on
/// both ends — pass a function's body braces). Macro invocations
/// (`name!(…)`) and nested `fn` definitions are not calls.
pub fn calls_in(lexed: &Lexed, lo: usize, hi: usize) -> Vec<Call> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in (lo + 1)..hi.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALLEES.contains(&t.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        if i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn" {
            continue; // nested definition, not a call
        }
        out.push(Call {
            callee: t.text.clone(),
            tok: i,
            line: t.line,
        });
    }
    out
}

/// An index of function definitions across one scope (crate or file),
/// supporting unique-name resolution.
#[derive(Debug, Default)]
pub struct DefIndex {
    /// `name -> (scope-local file id, func index)` for every definition.
    defs: HashMap<String, Vec<(usize, usize)>>,
}

impl DefIndex {
    /// Builds an index over `(file_id, funcs)` pairs.
    pub fn build<'a>(files: impl IntoIterator<Item = (usize, &'a [FuncDef])>) -> Self {
        let mut defs: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (file_id, funcs) in files {
            for (fi, f) in funcs.iter().enumerate() {
                defs.entry(f.name.clone()).or_default().push((file_id, fi));
            }
        }
        DefIndex { defs }
    }

    /// Resolves `name` iff exactly one definition carries it.
    pub fn unique(&self, name: &str) -> Option<(usize, usize)> {
        match self.defs.get(name) {
            Some(v) if v.len() == 1 => v.first().copied(),
            _ => None,
        }
    }

    /// Whether any definition carries `name`.
    pub fn defines(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::functions;
    use crate::lexer::lex;
    use crate::spans::excluded_spans;

    #[test]
    fn calls_exclude_macros_keywords_and_nested_defs() {
        let src = "fn f() { helper(1); vec![2]; if cond(3) { } panic!(\"x\"); fn g() {} g(); }";
        let lexed = lex(src);
        let excluded = excluded_spans(&lexed);
        let funcs = functions(&lexed, &excluded);
        assert_eq!(funcs.len(), 1);
        let calls = calls_in(&lexed, funcs[0].body_open, funcs[0].body_close);
        let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["helper", "cond", "g"]);
    }

    #[test]
    fn unique_resolution_rejects_ambiguity() {
        let src_a = "fn only_here() {} fn twice() {}";
        let src_b = "fn twice() {}";
        let la = lex(src_a);
        let lb = lex(src_b);
        let ea = excluded_spans(&la);
        let eb = excluded_spans(&lb);
        let fa = functions(&la, &ea);
        let fb = functions(&lb, &eb);
        let idx = DefIndex::build([(0, fa.as_slice()), (1, fb.as_slice())]);
        assert_eq!(idx.unique("only_here"), Some((0, 0)));
        assert_eq!(idx.unique("twice"), None);
        assert!(idx.defines("twice"));
        assert!(!idx.defines("absent"));
    }
}

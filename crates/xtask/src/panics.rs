//! Panic-freedom lint.
//!
//! Library crates must not contain `.unwrap()`, `.expect(…)`, `panic!`,
//! `todo!`, or `unreachable!` outside `#[cfg(test)]` items. A site that
//! is genuinely a can't-happen logic error may carry an explicit
//! `// lint:allow(panic)` on its own or the preceding line — except in
//! crates configured as *strict*, where the escape itself is a finding.

use std::path::Path;

use crate::lexer::{Lexed, TokKind};
use crate::report::{Finding, Lint};
use crate::spans::ExcludedSpans;

/// Method names that panic on the failure path.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that abort unconditionally when reached.
const PANICKY_MACROS: &[&str] = &["panic", "todo", "unreachable"];

/// Runs the lint over one lexed file.
///
/// `strict` bans even `lint:allow(panic)` escapes (used for the crates
/// whose statistical output the paper's guarantees rest on).
pub fn check(
    file: &Path,
    lexed: &Lexed,
    excluded: &ExcludedSpans,
    strict: bool,
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || excluded.contains_token(i) {
            continue;
        }
        let is_method_call = PANICKY_METHODS.contains(&tok.text.as_str())
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|t| t.text == "(");
        let is_macro = PANICKY_MACROS.contains(&tok.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.text == "!");
        if !is_method_call && !is_macro {
            continue;
        }
        let what = if is_macro {
            format!("`{}!`", tok.text)
        } else {
            format!("`.{}()`", tok.text)
        };
        if lexed.allows(tok.line, Lint::Panic.allow_name()) {
            if strict {
                findings.push(Finding {
                    lint: Lint::ForbiddenEscape,
                    file: file.to_path_buf(),
                    line: tok.line,
                    message: format!(
                        "{what} escaped with lint:allow(panic), but escapes are \
                         banned in this crate — return a Result instead"
                    ),
                });
            }
            continue;
        }
        findings.push(Finding {
            lint: Lint::Panic,
            file: file.to_path_buf(),
            line: tok.line,
            message: format!(
                "{what} in library code — propagate an error instead \
                 (or annotate a proven-unreachable site with // lint:allow(panic))"
            ),
        });
    }
}

//! Workspace file discovery.
//!
//! The analyzer works from the filesystem, not `cargo metadata`: it
//! walks `crates/*` (and the root `src`/`tests`/`examples`) collecting
//! `.rs` sources and `Cargo.toml` manifests. The `shims/` directory is
//! deliberately out of scope — those are vendored stand-ins for external
//! crates, not workspace code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file scheduled for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the analysis root (for reporting).
    pub rel: PathBuf,
    /// Name of the crate the file belongs to (`stats`, `core`, …), or
    /// `"(root)"` for the umbrella crate's own files.
    pub crate_name: String,
    /// Whether the file is library code (under `src/`, not a test or
    /// example target) — panic-freedom applies only here.
    pub is_library: bool,
}

/// All analyzable inputs below a root.
#[derive(Debug, Default)]
pub struct WorkspaceFiles {
    /// Rust sources.
    pub sources: Vec<SourceFile>,
    /// `(relative path, contents)` of every manifest.
    pub manifests: Vec<(PathBuf, String)>,
}

/// Directories under a crate whose contents are never library code.
const NON_LIBRARY_DIRS: &[&str] = &["tests", "examples", "benches", "fixtures", "bin"];

/// Collects sources + manifests under `root` (a workspace checkout).
pub fn collect(root: &Path) -> io::Result<WorkspaceFiles> {
    // A missing or manifest-less root must be an error, not a silently
    // "clean" empty workspace — a typo'd ROOT would otherwise pass CI.
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} has no Cargo.toml — not a workspace root",
                root.display()
            ),
        ));
    }
    let mut out = WorkspaceFiles::default();

    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.manifests.push((
            PathBuf::from("Cargo.toml"),
            fs::read_to_string(&root_manifest)?,
        ));
    }
    // The umbrella crate's own tree.
    for dir in ["src", "tests", "examples"] {
        let path = root.join(dir);
        if path.is_dir() {
            walk_sources(&path, root, "(root)", dir == "src", &mut out)?;
        }
    }

    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for crate_dir in entries {
            if !crate_dir.is_dir() {
                continue;
            }
            let crate_name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let manifest = crate_dir.join("Cargo.toml");
            if manifest.is_file() {
                let rel = manifest
                    .strip_prefix(root)
                    .unwrap_or(&manifest)
                    .to_path_buf();
                out.manifests.push((rel, fs::read_to_string(&manifest)?));
            }
            walk_crate(&crate_dir, root, &crate_name, &mut out)?;
        }
    }
    Ok(out)
}

/// Walks one crate directory, classifying library vs auxiliary targets.
fn walk_crate(
    crate_dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut WorkspaceFiles,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(crate_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if !entry.is_dir() {
            continue;
        }
        let dir_name = entry.file_name().map(|n| n.to_string_lossy().into_owned());
        let Some(dir_name) = dir_name else { continue };
        match dir_name.as_str() {
            "src" => walk_sources(&entry, root, crate_name, true, out)?,
            d if NON_LIBRARY_DIRS.contains(&d) => {
                walk_sources(&entry, root, crate_name, false, out)?
            }
            _ => {}
        }
    }
    Ok(())
}

/// Recursively collects `.rs` files under `dir`.
fn walk_sources(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    mut is_library: bool,
    out: &mut WorkspaceFiles,
) -> io::Result<()> {
    // `src/bin/*` are binary targets, not library code.
    if dir.file_name().is_some_and(|n| n == "bin") {
        is_library = false;
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            walk_sources(&entry, root, crate_name, is_library, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = entry.strip_prefix(root).unwrap_or(&entry).to_path_buf();
            out.sources.push(SourceFile {
                path: entry,
                rel,
                crate_name: crate_name.to_string(),
                is_library,
            });
        }
    }
    Ok(())
}

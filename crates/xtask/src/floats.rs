//! Float-discipline lint for the statistical hot paths.
//!
//! Two defect classes silently corrupt a chi-squared pipeline:
//!
//! * **Exact float comparison** — `p == 0.0` style tests that miss
//!   `-0.0`, NaN, and values a ulp away; the paper's upward-closure
//!   argument assumes the statistic is computed and compared correctly.
//! * **Lossy `as` casts** — `x as u64` truncates toward zero and
//!   saturates silently; `x as f32` drops half the mantissa.
//!
//! The lint builds a table of float-typed identifiers (from `ident: f64`
//! annotations and `let ident = <float literal>` bindings) and flags
//! comparisons/casts whose operand is a float literal or a known float
//! identifier. Identifiers are scoped per `fn` item — a `df: f64`
//! parameter in one function must not poison an integer `df` in the
//! next — with file-level items (consts, statics) visible everywhere.
//! Intentional sites carry `// lint:allow(float_eq)` /
//! `// lint:allow(lossy_cast)`.

use std::collections::HashSet;
use std::path::Path;

use crate::lexer::{Lexed, TokKind};
use crate::report::{Finding, Lint};
use crate::spans::{matching_bracket, ExcludedSpans};

/// Integer types a float must not be silently truncated into.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Token-index ranges (inclusive) of `fn` items: signature through the
/// body's closing brace. Nested functions are absorbed into their outer
/// span, which only widens the scope — never narrows it incorrectly.
fn function_spans(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            i += 1;
            continue;
        }
        let start = i;
        // Scan to the body's `{` (or a `;` for bodyless trait methods and
        // fn-pointer type aliases) at paren/bracket depth zero.
        let mut depth = 0i64;
        let mut j = i + 1;
        let mut end = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    end = matching_bracket(lexed, j);
                    break;
                }
                ";" if depth == 0 => {
                    end = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end = end.unwrap_or(toks.len().saturating_sub(1));
        spans.push((start, end));
        i = end + 1;
    }
    spans
}

/// Collects float-typed identifiers declared inside `[lo, hi]`.
fn float_idents_in(lexed: &Lexed, lo: usize, hi: usize, set: &mut HashSet<String>) {
    let toks = &lexed.tokens;
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        // `name : f64` / `name : f32` — params, fields, lets, consts.
        if toks[i].kind == TokKind::Ident
            && i + 2 < toks.len()
            && toks[i + 1].text == ":"
            && (toks[i + 2].text == "f64" || toks[i + 2].text == "f32")
        {
            set.insert(toks[i].text.clone());
        }
        // `let name = <float literal>`.
        if toks[i].text == "let"
            && i + 3 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].text == "="
            && toks[i + 3].kind == TokKind::Float
        {
            set.insert(toks[i + 1].text.clone());
        }
    }
}

/// Whether the token is a float literal or a known float identifier.
fn is_floatish(lexed: &Lexed, idx: usize, floats: &HashSet<String>) -> bool {
    let tok = &lexed.tokens[idx];
    match tok.kind {
        TokKind::Float => true,
        TokKind::Ident => floats.contains(&tok.text),
        _ => false,
    }
}

/// Runs the lint over one lexed file.
pub fn check(file: &Path, lexed: &Lexed, excluded: &ExcludedSpans, findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let spans = function_spans(lexed);

    // File-level declarations (outside every fn) are visible everywhere.
    let mut file_level = HashSet::new();
    {
        let mut cursor = 0;
        for &(lo, hi) in &spans {
            if cursor < lo {
                float_idents_in(lexed, cursor, lo - 1, &mut file_level);
            }
            cursor = hi + 1;
        }
        if cursor < toks.len() {
            float_idents_in(lexed, cursor, toks.len() - 1, &mut file_level);
        }
    }
    // Per-function scope: file-level idents plus the function's own.
    let scopes: Vec<HashSet<String>> = spans
        .iter()
        .map(|&(lo, hi)| {
            let mut s = file_level.clone();
            float_idents_in(lexed, lo, hi, &mut s);
            s
        })
        .collect();
    let mut span_idx = 0usize;

    for i in 0..toks.len() {
        // Advance to the function span containing token `i`, if any.
        while span_idx < spans.len() && spans[span_idx].1 < i {
            span_idx += 1;
        }
        let floats = match spans.get(span_idx) {
            Some(&(lo, _)) if lo <= i => &scopes[span_idx],
            _ => &file_level,
        };
        if excluded.contains_token(i) {
            continue;
        }
        let t = &toks[i];
        // Exact comparison on a float operand.
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i > 0 && is_floatish(lexed, i - 1, floats);
            let next_float = i + 1 < toks.len() && is_floatish(lexed, i + 1, floats);
            if (prev_float || next_float) && !lexed.allows(t.line, Lint::FloatEq.allow_name()) {
                findings.push(Finding {
                    lint: Lint::FloatEq,
                    file: file.to_path_buf(),
                    line: t.line,
                    message: format!(
                        "exact float `{}` comparison — handle the edge case \
                         explicitly (`<= 0.0`, epsilon tolerance) or annotate \
                         with // lint:allow(float_eq)",
                        t.text
                    ),
                });
            }
        }
        // Lossy cast: `<float> as <int>` or `<f64-ish> as f32`.
        if t.kind == TokKind::Ident && t.text == "as" && i > 0 && i + 1 < toks.len() {
            let src_is_float = is_floatish(lexed, i - 1, floats);
            let dst = toks[i + 1].text.as_str();
            let lossy = src_is_float && (INT_TYPES.contains(&dst) || dst == "f32");
            if lossy && !lexed.allows(t.line, Lint::LossyCast.allow_name()) {
                findings.push(Finding {
                    lint: Lint::LossyCast,
                    file: file.to_path_buf(),
                    line: t.line,
                    message: format!(
                        "float cast `as {dst}` truncates silently — round \
                         explicitly or annotate with // lint:allow(lossy_cast)"
                    ),
                });
            }
        }
    }
}

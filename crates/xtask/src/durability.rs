//! Sync-before-publish pass.
//!
//! Encodes the DESIGN.md §9/§11 durability protocol as a lint over the
//! durability-critical crates:
//!
//! - **rename-before-sync**: an atomic publish (`…rename(tmp, final)`)
//!   must be preceded — earlier in the same function body, or inside a
//!   directly-called helper one call-graph hop away — by an fsync of
//!   the written bytes (`sync`/`sync_all`/`sync_data`). Functions named
//!   `rename` are exempt: they *are* the primitive being wrapped.
//! - **ack-before-sync**: in `wal.rs`, every `pub fn append*` (the WAL
//!   ack surface) must transitively reach a sync call through the
//!   file's own helpers — acknowledging an append that never syncs
//!   would break crash-durability of acknowledged writes.
//!
//! Escape: `// lint:allow(durability)` on the flagged line (rule 1) or
//! the `fn` line (rule 2).

use std::collections::HashSet;

use crate::callgraph::{calls_in, DefIndex};
use crate::report::{Finding, Lint};
use crate::SourceUnit;

/// Calls that count as flushing written bytes to stable storage.
const SYNC_FAMILY: &[&str] = &["sync", "sync_all", "sync_data"];

/// Runs the sync-before-publish pass over one crate's library sources.
pub fn check_crate(files: &[&SourceUnit], findings: &mut Vec<Finding>) {
    let crate_index = DefIndex::build(
        files
            .iter()
            .enumerate()
            .map(|(i, u)| (i, u.funcs.as_slice())),
    );

    for (fi, unit) in files.iter().enumerate() {
        // Rule 1: rename-without-preceding-sync.
        for f in &unit.funcs {
            if f.name == "rename" {
                continue;
            }
            let calls = calls_in(&unit.lexed, f.body_open, f.body_close);
            for (ci, c) in calls.iter().enumerate() {
                if c.callee != "rename" || unit.excluded.contains_token(c.tok) {
                    continue;
                }
                let synced_before = calls[..ci].iter().any(|prev| {
                    SYNC_FAMILY.contains(&prev.callee.as_str())
                        || crate_index
                            .unique(&prev.callee)
                            .is_some_and(|(gi, gx)| directly_syncs(files[gi], gx))
                });
                if synced_before || unit.lexed.allows(c.line, Lint::RenameNoSync.allow_name()) {
                    continue;
                }
                findings.push(Finding {
                    lint: Lint::RenameNoSync,
                    file: unit.rel.clone(),
                    line: c.line,
                    message: format!(
                        "`rename(…)` in `{}` publishes without a preceding sync of \
                         the written bytes — fsync the temp file first (write-temp \
                         → fsync → rename), see DESIGN.md §9",
                        f.name
                    ),
                });
            }
        }

        // Rule 2: WAL ack surface must reach a sync.
        if unit.rel.file_name().is_none_or(|n| n != "wal.rs") {
            continue;
        }
        let file_index = DefIndex::build([(fi, unit.funcs.as_slice())]);
        for (xi, f) in unit.funcs.iter().enumerate() {
            if !f.is_pub || !f.name.starts_with("append") {
                continue;
            }
            let mut seen = HashSet::new();
            if reaches_sync(unit, &file_index, xi, &mut seen)
                || unit.lexed.allows(f.line, Lint::AckNoSync.allow_name())
            {
                continue;
            }
            findings.push(Finding {
                lint: Lint::AckNoSync,
                file: unit.rel.clone(),
                line: f.line,
                message: format!(
                    "WAL ack path `pub fn {}` never reaches a sync call — an \
                     acknowledged append must be durable (sync-before-ack, \
                     DESIGN.md §11)",
                    f.name
                ),
            });
        }
    }
}

/// Whether the function's own body calls the sync family directly.
fn directly_syncs(unit: &SourceUnit, func: usize) -> bool {
    let f = &unit.funcs[func];
    calls_in(&unit.lexed, f.body_open, f.body_close)
        .iter()
        .any(|c| SYNC_FAMILY.contains(&c.callee.as_str()))
}

/// Whether function `func` reaches a sync call through helpers that
/// resolve uniquely within the same file (cycle-safe).
fn reaches_sync(
    unit: &SourceUnit,
    file_index: &DefIndex,
    func: usize,
    seen: &mut HashSet<usize>,
) -> bool {
    if !seen.insert(func) {
        return false;
    }
    let f = &unit.funcs[func];
    for c in calls_in(&unit.lexed, f.body_open, f.body_close) {
        if SYNC_FAMILY.contains(&c.callee.as_str()) {
            return true;
        }
        if let Some((_, gx)) = file_index.unique(&c.callee) {
            if reaches_sync(unit, file_index, gx, seen) {
                return true;
            }
        }
    }
    false
}

//! Atomics-intent pass.
//!
//! Catalogs every named `Atomic*` in a crate (identity is the declared
//! field/binding name, like the lock pass). An atomic becomes
//! *load-bearing* when any site in the crate loads it inside an `if`/
//! `while` condition or `match` scrutinee — a flag, epoch, or shutdown
//! signal rather than a counter. Every `Ordering::Relaxed` operation on
//! a load-bearing atomic must then carry an `// ordering:` intent note
//! (same line or the line above) explaining why relaxed is sound for
//! that handoff. Plain counters — atomics never loaded for control
//! flow — may stay bare.
//!
//! Escape: `// lint:allow(atomic_ordering)` besides the note itself.

use std::collections::{HashMap, HashSet};

use crate::lexer::TokKind;
use crate::report::{Finding, Lint};
use crate::SourceUnit;

/// Atomic operation method names whose `Ordering` argument matters.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One atomic operation site.
struct Site {
    /// Index into the crate's file list.
    file: usize,
    /// Token index of the op ident.
    tok: usize,
    /// 1-based line.
    line: usize,
    /// The op name (`load`, `store`, …).
    op: String,
    /// Whether the arguments mention `Relaxed`.
    relaxed: bool,
}

/// Runs the atomics-intent pass over one crate's library sources.
pub fn check_crate(files: &[&SourceUnit], findings: &mut Vec<Finding>) {
    let catalog = atomic_catalog(files);
    if catalog.is_empty() {
        return;
    }

    // All op sites on cataloged atomics, keyed by atomic name.
    let mut sites: HashMap<&str, Vec<Site>> = HashMap::new();
    for (fi, unit) in files.iter().enumerate() {
        let toks = &unit.lexed.tokens;
        for i in 0..toks.len() {
            if unit.excluded.contains_token(i) || toks[i].kind != TokKind::Ident {
                continue;
            }
            if !ATOMIC_OPS.contains(&toks[i].text.as_str()) {
                continue;
            }
            if i < 2 || toks[i - 1].text != "." || toks.get(i + 1).is_none_or(|t| t.text != "(") {
                continue;
            }
            let recv = &toks[i - 2];
            if recv.kind != TokKind::Ident {
                continue;
            }
            let Some(name) = catalog.get(recv.text.as_str()) else {
                continue;
            };
            let close = crate::spans::matching_bracket(&unit.lexed, i + 1).unwrap_or(i + 1);
            let relaxed = toks[i + 2..close]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "Relaxed");
            sites.entry(name.as_str()).or_default().push(Site {
                file: fi,
                tok: i,
                line: toks[i].line,
                op: toks[i].text.clone(),
                relaxed,
            });
        }
    }

    // Which atomics are loaded for control flow anywhere in the crate.
    let mut load_bearing: HashSet<&str> = HashSet::new();
    for (fi, unit) in files.iter().enumerate() {
        let toks = &unit.lexed.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if unit.excluded.contains_token(i)
                || tok.kind != TokKind::Ident
                || !matches!(tok.text.as_str(), "if" | "while" | "match")
            {
                continue;
            }
            let cond_end = condition_end(unit, i);
            for (name, list) in &sites {
                if list
                    .iter()
                    .any(|s| s.file == fi && s.op == "load" && i < s.tok && s.tok < cond_end)
                {
                    load_bearing.insert(*name);
                }
            }
        }
    }

    for name in &load_bearing {
        let Some(list) = sites.get(*name) else {
            continue;
        };
        for site in list.iter().filter(|s| s.relaxed) {
            let unit = files[site.file];
            if unit.lexed.has_ordering_note(site.line)
                || unit
                    .lexed
                    .allows(site.line, Lint::AtomicRelaxedHandoff.allow_name())
            {
                continue;
            }
            findings.push(Finding {
                lint: Lint::AtomicRelaxedHandoff,
                file: unit.rel.clone(),
                line: site.line,
                message: format!(
                    "relaxed `{}` on `{name}`, which other sites load for control \
                     flow — add an `// ordering:` note explaining why Relaxed is \
                     sound here, or strengthen the ordering",
                    site.op
                ),
            });
        }
    }
}

/// Token index where the `if`/`while` condition or `match` scrutinee
/// starting at keyword `kw` ends (its body's `{`).
fn condition_end(unit: &SourceUnit, kw: usize) -> usize {
    let toks = &unit.lexed.tokens;
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(kw + 1) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return j,
            ";" if depth == 0 => return j, // malformed; stop scanning
            _ => {}
        }
    }
    toks.len()
}

/// `declared name -> canonical name` for every `Atomic*`-typed field,
/// static, or binding in the crate (skipping `&`-typed borrows, whose
/// owner declares the canonical name).
fn atomic_catalog(files: &[&SourceUnit]) -> HashMap<String, String> {
    let mut catalog = HashMap::new();
    for unit in files {
        let toks = &unit.lexed.tokens;
        for i in 0..toks.len() {
            if unit.excluded.contains_token(i) || toks[i].kind != TokKind::Ident {
                continue;
            }
            if toks.get(i + 1).is_none_or(|t| t.text != ":")
                || toks
                    .get(i + 2)
                    .is_some_and(|t| t.text == ":" || t.text == "&")
            {
                continue;
            }
            let end = (i + 2 + 24).min(toks.len());
            let is_atomic = toks[i + 2..end]
                .iter()
                .take_while(|t| t.text != ",")
                .any(|t| {
                    t.kind == TokKind::Ident && t.text.starts_with("Atomic") && t.text.len() > 6
                });
            if is_atomic {
                catalog.insert(toks[i].text.clone(), toks[i].text.clone());
            }
        }
    }
    catalog
}

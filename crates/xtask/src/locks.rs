//! Lock-discipline pass.
//!
//! Catalogs every named `Mutex`/`RwLock` in a crate (lock identity is
//! the *declared field/binding name*, per crate — two locks must not
//! share a name), computes which guards are held at each point of every
//! function, and reports:
//!
//! - **inconsistent acquisition order** between two locks (both `a→b`
//!   and `b→a` observed — a potential deadlock cycle), and nested
//!   acquisitions not covered by a `// lock:order(a < b)` declaration;
//! - **re-entrant acquisition** of a lock already held (self-deadlock);
//! - **guards held across blocking I/O** (`sync`, `rename`, `recv`, …),
//!   directly or one call-graph hop away.
//!
//! Guard extents follow the language's temporary-scope rules closely
//! enough for linting: `let`-bound guards live to end of block (or an
//! explicit `drop(guard)`); `match`/`for` scrutinee temporaries live
//! through the construct's body (so does `if let`/`while let`, per the
//! 2021 edition); plain `if`/`while` condition temporaries drop at the
//! body's `{`; other temporaries drop at the statement's `;`.
//!
//! Escapes: `// lock:allow(order | reentrant | io)` on the flagged line
//! or the line above; for `io`, an annotation on the guard's own
//! acquisition line covers every blocking call under that guard.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::callgraph::{calls_in, Call, DefIndex};
use crate::lexer::{Lexed, TokKind};
use crate::report::{Finding, Lint};
use crate::SourceUnit;

/// Method/function names treated as blocking I/O when called under a
/// guard. Tuned to this workspace's storage traits plus std I/O.
const IO_PRIMITIVES: &[&str] = &[
    "sync",
    "sync_all",
    "sync_data",
    "flush",
    "rename",
    "create",
    "delete",
    "truncate",
    "read_all",
    "write_all",
    "read_to_end",
    "read_exact",
    "recv",
    "recv_timeout",
    "send",
    "append",
    "file_len",
    "list",
    "open",
    "remove_file",
    "create_dir_all",
    "set_len",
    "accept",
    "connect",
];

/// What kind of primitive a cataloged lock is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

/// One guard acquisition with its computed lexical extent.
#[derive(Clone, Debug)]
struct Acq {
    /// Name of the acquired lock.
    lock: String,
    /// Token index of the acquiring ident (`lock`/`read`/`write`).
    tok: usize,
    /// 1-based line of the acquisition.
    line: usize,
    /// Last token index (inclusive) at which the guard may be held.
    scope_end: usize,
}

/// A two-lock nesting observation: `held` was held when `inner` was
/// acquired (directly or transitively) at a witness site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Witness {
    /// Index into the crate's file list.
    file: usize,
    /// 1-based line of the nested acquisition.
    line: usize,
}

/// Runs the lock-discipline pass over one crate's library sources.
pub fn check_crate(files: &[&SourceUnit], findings: &mut Vec<Finding>) {
    let catalog = lock_catalog(files);
    if catalog.is_empty() {
        return;
    }
    let index = DefIndex::build(
        files
            .iter()
            .enumerate()
            .map(|(i, u)| (i, u.funcs.as_slice())),
    );

    // Per (file, func): direct acquisitions and direct-I/O presence.
    let mut acqs: HashMap<(usize, usize), Vec<Acq>> = HashMap::new();
    let mut direct_io: HashSet<(usize, usize)> = HashSet::new();
    for (fi, unit) in files.iter().enumerate() {
        for (xi, f) in unit.funcs.iter().enumerate() {
            let found = find_acquisitions(unit, f.body_open, f.body_close, &catalog);
            let body_calls = body_calls(unit, f.body_open, f.body_close, &found);
            if body_calls
                .iter()
                .any(|c| IO_PRIMITIVES.contains(&c.callee.as_str()))
            {
                direct_io.insert((fi, xi));
            }
            acqs.insert((fi, xi), found);
        }
    }

    // Transitive lock sets through uniquely-resolvable callees.
    let mut trans: HashMap<(usize, usize), BTreeSet<String>> = HashMap::new();
    for (fi, unit) in files.iter().enumerate() {
        for xi in 0..unit.funcs.len() {
            let mut seen = HashSet::new();
            let set = transitive_acquires(files, &index, &acqs, (fi, xi), &mut seen);
            trans.insert((fi, xi), set);
        }
    }

    // Event scan: collect nesting pairs, re-entrancy, and I/O-under-guard.
    let mut pairs: BTreeMap<(String, String), BTreeSet<Witness>> = BTreeMap::new();
    for (fi, unit) in files.iter().enumerate() {
        for (xi, f) in unit.funcs.iter().enumerate() {
            let here = &acqs[&(fi, xi)];
            // Direct nested acquisitions.
            for b in here {
                for a in held_at(here, b.tok) {
                    record_nesting(unit, fi, a, &b.lock, b.line, &mut pairs, findings);
                }
            }
            // Calls under a guard: I/O and transitive acquisitions.
            for c in body_calls(unit, f.body_open, f.body_close, here) {
                let held: Vec<&Acq> = held_at(here, c.tok);
                if held.is_empty() {
                    continue;
                }
                if IO_PRIMITIVES.contains(&c.callee.as_str()) {
                    for a in &held {
                        report_io(unit, a, &c, None, findings);
                    }
                    continue;
                }
                let Some(target) = index.unique(&c.callee) else {
                    continue;
                };
                // `x.clear()` resolving to the very function it sits in
                // is a container method sharing the fn's name, not
                // recursion — skip self-edges.
                if target == (fi, xi) {
                    continue;
                }
                for inner in &trans[&target] {
                    for a in &held {
                        record_nesting(unit, fi, a, inner, c.line, &mut pairs, findings);
                    }
                }
                if direct_io.contains(&target) {
                    for a in &held {
                        report_io(unit, a, &c, Some(&c.callee), findings);
                    }
                }
            }
        }
    }

    // Declared order: edges from every `// lock:order(a < b < c)`.
    let declared = declared_order(files, findings);

    // Verdicts per distinct ordered pair.
    for ((a, b), witnesses) in &pairs {
        let fwd = declared.contains(&(a.clone(), b.clone()));
        let rev = declared.contains(&(b.clone(), a.clone()));
        let flipped = pairs.get(&(b.clone(), a.clone()));
        for w in witnesses {
            let unit = files[w.file];
            if unit.lexed.allows(w.line, Lint::LockOrder.allow_name()) {
                continue;
            }
            let message = if rev {
                format!(
                    "acquires `{b}` while holding `{a}`, but the declared order is \
                     `lock:order({b} < {a})` — restructure to respect it"
                )
            } else if fwd {
                continue;
            } else if let Some(other) = flipped.and_then(|s| s.iter().next()) {
                format!(
                    "lock order conflict: `{a}` then `{b}` here, but `{b}` then `{a}` \
                     at {}:{} — potential deadlock cycle",
                    files[other.file].rel.display(),
                    other.line
                )
            } else {
                format!(
                    "acquires `{b}` while holding `{a}` with no declared order — \
                     declare `// lock:order({a} < {b})` to write the contract down"
                )
            };
            findings.push(Finding {
                lint: Lint::LockOrder,
                file: unit.rel.clone(),
                line: w.line,
                message,
            });
        }
    }
}

/// Guards from `here` whose extent covers token index `at` (excluding
/// an acquisition happening exactly at `at`).
fn held_at(here: &[Acq], at: usize) -> Vec<&Acq> {
    here.iter()
        .filter(|a| a.tok < at && at <= a.scope_end)
        .collect()
}

/// Records one nesting observation; re-entrant same-lock nesting is
/// reported immediately, distinct-lock pairs are accumulated.
fn record_nesting(
    unit: &SourceUnit,
    file: usize,
    held: &Acq,
    inner: &str,
    line: usize,
    pairs: &mut BTreeMap<(String, String), BTreeSet<Witness>>,
    findings: &mut Vec<Finding>,
) {
    if held.lock == inner {
        if !unit.lexed.allows(line, Lint::LockReentrant.allow_name()) {
            findings.push(Finding {
                lint: Lint::LockReentrant,
                file: unit.rel.clone(),
                line,
                message: format!(
                    "re-acquires `{inner}` while a guard for `{inner}` is already \
                     held (from line {}) — self-deadlock",
                    held.line
                ),
            });
        }
        return;
    }
    pairs
        .entry((held.lock.clone(), inner.to_string()))
        .or_default()
        .insert(Witness { file, line });
}

/// Reports a guard held across blocking I/O, honoring `lock:allow(io)`
/// on the call line or on the guard's acquisition line.
fn report_io(
    unit: &SourceUnit,
    held: &Acq,
    call: &Call,
    via: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    let name = Lint::LockAcrossIo.allow_name();
    if unit.lexed.allows(call.line, name) || unit.lexed.allows(held.line, name) {
        return;
    }
    let how = match via {
        Some(helper) => format!("via `{helper}(…)`"),
        None => format!("`{}(…)`", call.callee),
    };
    findings.push(Finding {
        lint: Lint::LockAcrossIo,
        file: unit.rel.clone(),
        line: call.line,
        message: format!(
            "holds guard `{}` (acquired line {}) across blocking call {how} — \
             shrink the critical section, or annotate the acquisition with \
             // lock:allow(io) if holding it is the design",
            held.lock, held.line
        ),
    });
}

/// Calls inside a body, excluding excluded spans, acquisition sites
/// themselves, and `drop(…)`.
fn body_calls(unit: &SourceUnit, open: usize, close: usize, acqs: &[Acq]) -> Vec<Call> {
    let acq_toks: HashSet<usize> = acqs.iter().map(|a| a.tok).collect();
    calls_in(&unit.lexed, open, close)
        .into_iter()
        .filter(|c| !unit.excluded.contains_token(c.tok))
        .filter(|c| !acq_toks.contains(&c.tok))
        .filter(|c| c.callee != "drop")
        .collect()
}

/// Locks a function acquires, directly or through uniquely-resolved
/// callees (cycle-safe fixpoint).
fn transitive_acquires(
    files: &[&SourceUnit],
    index: &DefIndex,
    acqs: &HashMap<(usize, usize), Vec<Acq>>,
    at: (usize, usize),
    seen: &mut HashSet<(usize, usize)>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if !seen.insert(at) {
        return out;
    }
    let Some(direct) = acqs.get(&at) else {
        return out;
    };
    out.extend(direct.iter().map(|a| a.lock.clone()));
    let unit = files[at.0];
    let f = &unit.funcs[at.1];
    for c in body_calls(unit, f.body_open, f.body_close, direct) {
        if let Some(target) = index.unique(&c.callee) {
            out.extend(transitive_acquires(files, index, acqs, target, seen));
        }
    }
    out
}

/// Builds the crate's lock catalog: `name -> kind` from field/binding
/// declarations whose type mentions `Mutex`/`RwLock` (directly or via a
/// crate-local type alias), plus `let name = Mutex::new(…)` bindings.
/// `&`-typed declarations (borrowed params) are skipped — the lock is
/// owned elsewhere under its real name.
fn lock_catalog(files: &[&SourceUnit]) -> HashMap<String, LockKind> {
    // Pass 1: type aliases that wrap a lock.
    let mut aliases: HashMap<String, LockKind> = HashMap::new();
    for unit in files {
        let toks = &unit.lexed.tokens;
        for i in 0..toks.len() {
            if toks[i].text != "type" || toks[i].kind != TokKind::Ident {
                continue;
            }
            let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if toks.get(i + 2).is_none_or(|t| t.text != "=") {
                continue;
            }
            let end = toks[i + 3..]
                .iter()
                .position(|t| t.text == ";")
                .map_or(toks.len(), |p| i + 3 + p);
            if let Some(kind) = lockish_kind(&unit.lexed, i + 3, end, &HashMap::new()) {
                aliases.insert(name.text.clone(), kind);
            }
        }
    }

    // Pass 2: declarations.
    let mut catalog: HashMap<String, LockKind> = HashMap::new();
    for unit in files {
        let toks = &unit.lexed.tokens;
        for i in 0..toks.len() {
            if unit.excluded.contains_token(i) {
                continue;
            }
            // `name : Type-with-lock`
            if toks[i].kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.text == ":")
                && toks
                    .get(i + 2)
                    .is_some_and(|t| t.text != ":" && t.text != "&")
            {
                let end = type_end(&unit.lexed, i + 2);
                if let Some(kind) = lockish_kind(&unit.lexed, i + 2, end, &aliases) {
                    catalog.insert(toks[i].text.clone(), kind);
                }
            }
            // `let [mut] name = Mutex::new(…)` / `RwLock::new(…)`
            if toks[i].text == "let" && toks[i].kind == TokKind::Ident {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                    continue;
                };
                if toks.get(j + 1).is_none_or(|t| t.text != "=") {
                    continue;
                }
                let is_ctor = toks
                    .get(j + 2)
                    .is_some_and(|t| t.text == "Mutex" || t.text == "RwLock")
                    && toks.get(j + 3).is_some_and(|t| t.text == "::")
                    && toks.get(j + 4).is_some_and(|t| t.text == "new");
                if is_ctor {
                    let kind = if toks[j + 2].text == "RwLock" {
                        LockKind::RwLock
                    } else {
                        LockKind::Mutex
                    };
                    catalog.insert(name.text.clone(), kind);
                }
            }
        }
    }
    catalog
}

/// Whether tokens `[lo, hi)` mention a lock type; returns its kind.
fn lockish_kind(
    lexed: &Lexed,
    lo: usize,
    hi: usize,
    aliases: &HashMap<String, LockKind>,
) -> Option<LockKind> {
    let toks = &lexed.tokens;
    for t in toks.get(lo..hi.min(toks.len()))? {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "RwLock" => return Some(LockKind::RwLock),
            "Mutex" => return Some(LockKind::Mutex),
            other => {
                if let Some(kind) = aliases.get(other) {
                    return Some(*kind);
                }
            }
        }
    }
    None
}

/// End (exclusive) of a type starting at token `lo`: the first `,`,
/// `;`, `=`, `)`, `{`, or `}` outside angle brackets and groups.
/// Bounded to keep pathological input cheap.
fn type_end(lexed: &Lexed, lo: usize) -> usize {
    let toks = &lexed.tokens;
    let mut angle = 0i64;
    let mut group = 0i64;
    for (off, t) in toks.iter().skip(lo).take(48).enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "(" | "[" => group += 1,
            ")" | "]" => {
                if group == 0 {
                    return lo + off;
                }
                group -= 1;
            }
            "," | ";" | "=" | "{" | "}" if angle <= 0 && group == 0 => {
                return lo + off;
            }
            _ => {}
        }
    }
    (lo + 48).min(toks.len())
}

/// Finds guard acquisitions in `(open, close)` and computes each one's
/// lexical extent.
fn find_acquisitions(
    unit: &SourceUnit,
    open: usize,
    close: usize,
    catalog: &HashMap<String, LockKind>,
) -> Vec<Acq> {
    let toks = &unit.lexed.tokens;
    let mut out = Vec::new();
    for i in (open + 1)..close.min(toks.len()) {
        if unit.excluded.contains_token(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        // Method style: `receiver.lock()` / `.read()` / `.write()`.
        let method = matches!(toks[i].text.as_str(), "lock" | "read" | "write")
            && i >= 2
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks[i - 2].kind == TokKind::Ident;
        if method {
            let recv = &toks[i - 2].text;
            let kind_ok = match catalog.get(recv) {
                Some(LockKind::Mutex) => toks[i].text == "lock",
                Some(LockKind::RwLock) => toks[i].text == "read" || toks[i].text == "write",
                None => false,
            };
            if kind_ok {
                let start = chain_start(&unit.lexed, i - 2);
                out.push(make_acq(unit, open, close, recv.clone(), i, start));
            }
            continue;
        }
        // Helper style: `lock(&self.wal)`, `lock_state(&self.entries)`.
        let helper = toks[i].text.starts_with("lock")
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "fn"));
        if helper {
            let Some(close_paren) = crate::spans::matching_bracket(&unit.lexed, i + 1) else {
                continue;
            };
            let arg = toks[i + 2..close_paren]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && catalog.contains_key(&t.text));
            if let Some(arg) = arg {
                out.push(make_acq(unit, open, close, arg.text.clone(), i, i));
            }
        }
    }
    out
}

/// Walks a field-access chain (`self.a.b`) back to its first ident.
fn chain_start(lexed: &Lexed, mut j: usize) -> usize {
    let toks = &lexed.tokens;
    while j >= 2 && toks[j - 1].text == "." && toks[j - 2].kind == TokKind::Ident {
        j -= 2;
    }
    // A leading `&` or `*` belongs to the expression, not the chain.
    j
}

/// Builds an [`Acq`] with its scope computed from the binding shape.
fn make_acq(
    unit: &SourceUnit,
    open: usize,
    close: usize,
    lock: String,
    tok: usize,
    expr_start: usize,
) -> Acq {
    let (scope_end, guard_var) = guard_scope(&unit.lexed, open, close, tok, expr_start);
    let scope_end = match guard_var {
        Some(name) => drop_site(&unit.lexed, &name, tok, scope_end).unwrap_or(scope_end),
        None => scope_end,
    };
    Acq {
        lock,
        tok,
        line: unit.lexed.tokens[tok].line,
        scope_end,
    }
}

/// Computes a guard's lexical extent; returns `(end, bound_var)`.
fn guard_scope(
    lexed: &Lexed,
    open: usize,
    close: usize,
    tok: usize,
    expr_start: usize,
) -> (usize, Option<String>) {
    let toks = &lexed.tokens;
    let s = expr_start;
    // Simple binding: `let [mut] name = <acquisition>…`?
    if s >= 3 && toks[s - 1].text == "=" && toks[s - 2].kind == TokKind::Ident {
        let name = &toks[s - 2];
        let mut k = s - 3;
        if toks[k].text == "mut" && k >= 1 {
            k -= 1;
        }
        if toks[k].text == "let" && toks[k].kind == TokKind::Ident {
            let in_cond = k >= 1 && matches!(toks[k - 1].text.as_str(), "if" | "while");
            let end = if in_cond {
                construct_body_close(lexed, tok, close)
            } else {
                enclosing_block_close(lexed, tok, close)
            };
            return (end, Some(name.text.clone()));
        }
    }
    // Temporary: classify the enclosing statement.
    let (has_match_or_for, has_if_while, has_let) = statement_shape(lexed, open, s);
    let end = if has_match_or_for || (has_if_while && has_let) {
        construct_body_close(lexed, tok, close)
    } else if has_if_while {
        body_open_after(lexed, tok, close)
    } else {
        statement_end(lexed, tok, close)
    };
    (end, None)
}

/// Looks backward from `s` to the statement boundary, noting `match`/
/// `for`, `if`/`while`, and `let` keywords at the statement's own depth.
fn statement_shape(lexed: &Lexed, open: usize, s: usize) -> (bool, bool, bool) {
    let toks = &lexed.tokens;
    let (mut m, mut iw, mut l) = (false, false, false);
    let mut depth = 0i64;
    let mut j = s;
    while j > open + 1 {
        j -= 1;
        let t = &toks[j];
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "}" => {
                if depth == 0 {
                    break;
                }
                depth += 1;
            }
            "(" | "[" | "{" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => break,
            "match" | "for" if depth == 0 && t.kind == TokKind::Ident => m = true,
            "if" | "while" if depth == 0 && t.kind == TokKind::Ident => iw = true,
            "let" if depth == 0 && t.kind == TokKind::Ident => l = true,
            _ => {}
        }
    }
    (m, iw, l)
}

/// The matching `}` of the first `{` at relative depth 0 after `from`
/// (the body of an `if`/`while`/`match`/`for` the guard lives through).
fn construct_body_close(lexed: &Lexed, from: usize, close: usize) -> usize {
    let open = body_open_after(lexed, from, close);
    crate::spans::matching_bracket(lexed, open)
        .unwrap_or(close)
        .min(close)
}

/// The first `{` at relative depth 0 after `from`.
fn body_open_after(lexed: &Lexed, from: usize, close: usize) -> usize {
    let toks = &lexed.tokens;
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(close).skip(from + 1) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return j,
            _ => {}
        }
    }
    close
}

/// The end of the statement containing `from`: its `;` at relative
/// depth ≤ 0, or the closer that exits the current block/group.
fn statement_end(lexed: &Lexed, from: usize, close: usize) -> usize {
    let toks = &lexed.tokens;
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(close).skip(from + 1) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth <= 0 => return j,
            _ => {}
        }
    }
    close
}

/// The enclosing block's `}` after `from` (for `let`-bound guards).
fn enclosing_block_close(lexed: &Lexed, from: usize, close: usize) -> usize {
    let toks = &lexed.tokens;
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(close).skip(from + 1) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    close
}

/// An explicit `drop(name)` between `from` and `until`, if any.
fn drop_site(lexed: &Lexed, name: &str, from: usize, until: usize) -> Option<usize> {
    let toks = &lexed.tokens;
    ((from + 1)..until.min(toks.len())).find(|&j| {
        toks[j].text == "drop"
            && toks[j].kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|t| t.text == "(")
            && toks.get(j + 2).is_some_and(|t| t.text == *name)
            && toks.get(j + 3).is_some_and(|t| t.text == ")")
    })
}

/// Collects the crate's declared partial order as its transitive
/// closure; reports a finding if the declarations are cyclic.
fn declared_order(
    files: &[&SourceUnit],
    findings: &mut Vec<Finding>,
) -> BTreeSet<(String, String)> {
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut first_decl: Option<(usize, usize)> = None;
    for (fi, unit) in files.iter().enumerate() {
        for (line, chain) in &unit.lexed.lock_orders {
            first_decl.get_or_insert((fi, *line));
            for pair in chain.windows(2) {
                edges.insert((pair[0].clone(), pair[1].clone()));
            }
        }
    }
    // Transitive closure (the name universe is tiny).
    let names: BTreeSet<String> = edges
        .iter()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    let mut closure = edges;
    loop {
        let mut grew = false;
        for k in &names {
            let mut add = Vec::new();
            for (a, b) in &closure {
                if b == k {
                    for (c, d) in &closure {
                        if c == k && !closure.contains(&(a.clone(), d.clone())) {
                            add.push((a.clone(), d.clone()));
                        }
                    }
                }
            }
            for e in add {
                grew |= closure.insert(e);
            }
        }
        if !grew {
            break;
        }
    }
    if let Some(cycle) = closure.iter().find(|(a, b)| a == b) {
        if let Some((fi, line)) = first_decl {
            findings.push(Finding {
                lint: Lint::LockOrder,
                file: files[fi].rel.clone(),
                line,
                message: format!(
                    "declared lock order is cyclic through `{}` — fix the \
                     lock:order(…) declarations",
                    cycle.0
                ),
            });
        }
    }
    closure
}

//! Function extraction over the token stream.
//!
//! The concurrency and durability passes reason per function: which
//! guards a body holds, which callees it reaches, whether a publish is
//! preceded by a sync. This module finds every `fn` item in a lexed
//! file and records its name, visibility, and body token span. Nested
//! `fn` items are absorbed into their enclosing function — the passes
//! treat a function body as one lexical region.

use crate::lexer::{Lexed, TokKind};
use crate::spans::{matching_bracket, ExcludedSpans};

/// One `fn` item: its name and the token span of its body.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item is `pub` (plain `pub`, not `pub(crate)`).
    pub is_pub: bool,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}` (inclusive).
    pub body_close: usize,
}

impl FuncDef {
    /// Whether token index `idx` falls inside the body braces.
    pub fn contains(&self, idx: usize) -> bool {
        self.body_open < idx && idx < self.body_close
    }
}

/// Qualifier keywords that may sit between `pub` and `fn`.
const FN_QUALIFIERS: &[&str] = &["const", "unsafe", "async", "extern"];

/// Extracts every `fn` item with a body from `lexed`, skipping items
/// inside excluded spans (`#[cfg(test)]`, `macro_rules!`). Bodyless
/// declarations (trait methods without defaults) are skipped too.
pub fn functions(lexed: &Lexed, excluded: &ExcludedSpans) -> Vec<FuncDef> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "fn" || excluded.contains_token(i) {
            i += 1;
            continue;
        }
        // `fn` in type position (`fn(u32) -> u32`) has no name ident.
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let Some((open, close)) = body_span(lexed, i + 2) else {
            i += 2;
            continue;
        };
        out.push(FuncDef {
            name: name_tok.text.clone(),
            line: t.line,
            is_pub: is_plain_pub(lexed, i),
            body_open: open,
            body_close: close,
        });
        // Absorb nested fns: resume after the body.
        i = close + 1;
    }
    out
}

/// Whether the `fn` at token `fn_idx` is declared plain `pub`
/// (`pub(crate)` and friends count as private, matching the doc pass).
fn is_plain_pub(lexed: &Lexed, fn_idx: usize) -> bool {
    let toks = &lexed.tokens;
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokKind::Ident && FN_QUALIFIERS.contains(&t.text.as_str()) {
            continue;
        }
        return t.kind == TokKind::Ident && t.text == "pub";
    }
    false
}

/// From just after the function name, finds the body braces: the first
/// `{` at bracket depth 0 (skipping parameter lists, where-clauses and
/// attribute groups), matched to its closer. A `;` first means no body.
fn body_span(lexed: &Lexed, mut i: usize) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" => {
                i = matching_bracket(lexed, i)? + 1;
            }
            "{" => {
                let close = matching_bracket(lexed, i)?;
                return Some((i, close));
            }
            ";" => return None,
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::spans::excluded_spans;

    fn extract(src: &str) -> Vec<FuncDef> {
        let lexed = lex(src);
        let excluded = excluded_spans(&lexed);
        functions(&lexed, &excluded)
    }

    #[test]
    fn finds_named_functions_and_visibility() {
        let fns = extract(
            "pub fn alpha(x: u32) -> u32 { x }\n\
             fn beta() {}\n\
             pub(crate) fn gamma() {}\n\
             pub const fn delta() -> usize { 0 }\n",
        );
        let names: Vec<(&str, bool)> = fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            vec![
                ("alpha", true),
                ("beta", false),
                ("gamma", false),
                ("delta", true)
            ]
        );
    }

    #[test]
    fn skips_bodyless_and_type_position_fn() {
        let fns = extract(
            "trait T { fn decl(&self); fn with_default(&self) { } }\n\
             fn takes(f: fn(u32) -> u32) { f(1); }\n",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default", "takes"]);
    }

    #[test]
    fn absorbs_nested_fns_and_skips_test_mods() {
        let fns = extract(
            "fn outer() { fn inner() {} inner(); }\n\
             #[cfg(test)]\nmod tests { fn helper() {} }\n",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer"]);
    }

    #[test]
    fn where_clause_does_not_confuse_body() {
        let fns = extract("fn generic<T: Ord>(x: T) -> Vec<T> where T: Clone { vec![x] }\n");
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.name, "generic");
        // Body must contain the vec! call, i.e. open brace after `where`.
        assert!(f.body_close > f.body_open + 2);
    }
}

//! CLI entry point: `cargo run -p bmb-xtask -- lint [ROOT] [--only PASS]`.
//!
//! Exits 0 when the tree is clean, 1 when findings exist, 2 on usage or
//! I/O errors. `ROOT` defaults to the workspace this binary was built
//! from (two levels above `crates/xtask`), so the command works from any
//! working directory.

use std::path::PathBuf;
use std::process::ExitCode;

use bmb_xtask::{render, render_json, run_lint, LintConfig};

const USAGE: &str = "\
bmb-xtask — workspace static analysis

USAGE:
    cargo run -p bmb-xtask -- lint [ROOT] [--only PASS]... [--json]
    cargo run -p bmb-xtask -- bench [ARGS passed to bench_suite]...

PASSES (default: all):
    panics      panic-freedom in library crates
    floats      float comparison / lossy-cast discipline
    deps        Cargo.toml dependency allowlist
    docs        doc coverage in library crates
    locks       Mutex/RwLock acquisition order, re-entrancy, I/O under guard
    atomics     Ordering::Relaxed intent notes on control-flow atomics
    durability  sync-before-publish / sync-before-ack (bmb-basket)

FLAGS:
    --json   machine-readable findings (file/line/lint/message)

`bench` builds and runs the committed perf suite (bmb-bench's
`bench_suite` binary, release profile) from the workspace root with
`--compare-dir .` by default, writing `BENCH_<rev>.json` and failing
on a noise-gated regression against committed baselines. Extra ARGS
are forwarded verbatim (e.g. `--out PATH`, `--seed N`).

Exit codes: 0 clean, 1 findings, 2 usage/IO error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--only" => match iter.next() {
                Some(pass) => only.push(pass.clone()),
                None => {
                    eprintln!("--only needs a pass name\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    eprintln!("more than one ROOT given\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let config = match build_config(&only) {
        Some(config) => config,
        None => return ExitCode::from(2),
    };
    let root = root.unwrap_or_else(default_root);

    match run_lint(&root, &config) {
        Ok(findings) => {
            if json {
                print!("{}", render_json(&findings));
            } else {
                print!("{}", render(&findings));
            }
            ExitCode::from(u8::from(!findings.is_empty()))
        }
        Err(err) => {
            eprintln!("xtask lint: cannot analyze {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Build and run the committed perf suite, gating on regressions
/// against the `BENCH_<rev>.json` files at the workspace root.
fn bench(args: &[String]) -> ExitCode {
    let root = default_root();
    let mut command = std::process::Command::new("cargo");
    command
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "bmb-bench",
            "--bin",
            "bench_suite",
            "--",
        ])
        .current_dir(&root);
    if !args.iter().any(|a| a == "--compare-dir") {
        command.args(["--compare-dir", "."]);
    }
    command.args(args);
    match command.status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(err) => {
            eprintln!("xtask bench: cannot run cargo in {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

fn build_config(only: &[String]) -> Option<LintConfig> {
    if only.is_empty() {
        return Some(LintConfig::default());
    }
    let mut config = LintConfig::none();
    for pass in only {
        match pass.as_str() {
            "panics" => config.panics = true,
            "floats" => config.floats = true,
            "deps" => config.deps = true,
            "docs" => config.docs = true,
            "locks" => config.locks = true,
            "atomics" => config.atomics = true,
            "durability" => config.durability = true,
            other => {
                eprintln!(
                    "unknown pass `{other}` (panics, floats, deps, docs, locks, \
                     atomics, durability)\n\n{USAGE}"
                );
                return None;
            }
        }
    }
    Some(config)
}

/// The workspace root this binary was compiled in.
fn default_root() -> PathBuf {
    // crates/xtask → crates → workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

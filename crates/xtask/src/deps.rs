//! Dependency-allowlist check.
//!
//! Every `Cargo.toml` in the workspace is parsed (a minimal
//! section-aware scan — no TOML crate, by design) and every dependency
//! key in a `[dependencies]`-like section must be either workspace-
//! internal (a `bmb-*` crate, the umbrella crate, or a `path =` entry)
//! or on the fixed external allowlist. Anything else — a typo-squat, a
//! convenience crate snuck in, a transitive-by-hand addition — fails.

use std::path::Path;

use crate::report::{Finding, Lint};

/// External crates this workspace may depend on, and nothing else.
pub const ALLOWED_EXTERNAL: &[&str] = &[
    "rand",
    "proptest",
    "criterion",
    "serde",
    "crossbeam",
    "parking_lot",
];

/// Internal name prefixes that are always allowed.
const INTERNAL_PREFIXES: &[&str] = &["bmb-", "bmb_"];

/// The umbrella crate name.
const UMBRELLA: &str = "beyond-market-baskets";

/// Whether a `[section]` header names a dependency table.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim();
    h.ends_with("dependencies]")
        && (h.starts_with("[dependencies")
            || h.starts_with("[dev-dependencies")
            || h.starts_with("[build-dependencies")
            || h.starts_with("[workspace.dependencies")
            || h.starts_with("[target."))
}

/// Runs the check over one manifest's text.
pub fn check(file: &Path, manifest: &str, findings: &mut Vec<Finding>) {
    let mut in_deps = false;
    // Set when inside `[dependencies.foo]`-style subtables.
    let mut subtable_dep: Option<String> = None;
    let mut subtable_line = 0usize;
    let mut subtable_has_path = false;

    let flush_subtable =
        |findings: &mut Vec<Finding>, name: &Option<String>, line: usize, has_path: bool| {
            if let Some(name) = name {
                if !allowed(name, has_path) {
                    findings.push(disallowed(file, line, name));
                }
            }
        };

    for (idx, raw) in manifest.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.starts_with('[') {
            flush_subtable(findings, &subtable_dep, subtable_line, subtable_has_path);
            subtable_dep = None;
            subtable_has_path = false;
            // `[dependencies.foo]` names the dep in the header itself.
            if let Some(rest) = strip_dependency_subtable(line) {
                in_deps = false;
                subtable_dep = Some(rest.to_string());
                subtable_line = line_no;
            } else {
                in_deps = is_dependency_section(line);
            }
            continue;
        }
        if subtable_dep.is_some() && line.starts_with("path") {
            subtable_has_path = true;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        // `foo.workspace = true` → the dep name is the first segment.
        let name = key.split('.').next().unwrap_or(key).trim_matches('"');
        if name.is_empty() {
            continue;
        }
        let value = &line[eq + 1..];
        let has_path = value.contains("path");
        if !allowed(name, has_path) {
            findings.push(disallowed(file, line_no, name));
        }
    }
    flush_subtable(findings, &subtable_dep, subtable_line, subtable_has_path);
}

/// `[dependencies.foo]` / `[dev-dependencies.foo]` → `Some("foo")`.
fn strip_dependency_subtable(header: &str) -> Option<&str> {
    for prefix in [
        "[dependencies.",
        "[dev-dependencies.",
        "[build-dependencies.",
    ] {
        if let Some(rest) = header.strip_prefix(prefix) {
            return rest.strip_suffix(']');
        }
    }
    None
}

fn allowed(name: &str, has_path: bool) -> bool {
    has_path
        || name == UMBRELLA
        || INTERNAL_PREFIXES.iter().any(|p| name.starts_with(p))
        || ALLOWED_EXTERNAL.contains(&name)
}

fn disallowed(file: &Path, line: usize, name: &str) -> Finding {
    Finding {
        lint: Lint::Dependency,
        file: file.to_path_buf(),
        line,
        message: format!(
            "dependency `{name}` is outside the allowlist \
             ({}) — the workspace builds hermetically and every external \
             crate must be vetted here first",
            ALLOWED_EXTERNAL.join(", ")
        ),
    }
}

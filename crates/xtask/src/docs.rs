//! Documentation-coverage lint for the contract crates.
//!
//! `bmb-stats` and `bmb-core` carry the statistical machinery the paper's
//! guarantees rest on; their public surface must explain itself. Every
//! module file needs `//!` docs and every public item (`pub fn`, `pub
//! struct`, `pub enum`, `pub trait`, `pub const`, `pub type`, `pub mod`)
//! needs a `///` comment. `pub use` re-exports and `#[cfg(test)]` items
//! are exempt, as are lines carrying `// lint:allow(missing_docs)`.

use std::collections::HashSet;
use std::path::Path;

use crate::lexer::Lexed;
use crate::report::{Finding, Lint};

/// Item introducers that require a doc comment.
const DOCUMENTED_ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "type", "mod", "static", "union",
];

/// Runs the lint over one file's raw text.
///
/// `excluded_lines` holds lines inside `#[cfg(test)]` items or
/// `macro_rules!` bodies (from the token-level span pass).
pub fn check(
    file: &Path,
    src: &str,
    lexed: &Lexed,
    excluded_lines: &HashSet<usize>,
    findings: &mut Vec<Finding>,
) {
    let lines: Vec<&str> = src.lines().collect();

    if !lines.iter().any(|l| l.trim_start().starts_with("//!")) {
        findings.push(Finding {
            lint: Lint::MissingDocs,
            file: file.to_path_buf(),
            line: 1,
            message: "file has no `//!` module documentation".to_string(),
        });
    }

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        if excluded_lines.contains(&line_no) {
            continue;
        }
        let trimmed = raw.trim_start();
        let Some(item) = public_item(trimmed) else {
            continue;
        };
        if lexed.allows(line_no, Lint::MissingDocs.allow_name()) {
            continue;
        }
        if has_preceding_doc(&lines, idx) {
            continue;
        }
        findings.push(Finding {
            lint: Lint::MissingDocs,
            file: file.to_path_buf(),
            line: line_no,
            message: format!(
                "public `{item}` has no `///` documentation — the statistical \
                 crates document every exported item"
            ),
        });
    }
}

/// If the line begins a documented-required public item, returns the item
/// keyword (`fn`, `struct`, …).
fn public_item(trimmed: &str) -> Option<&'static str> {
    // `pub(crate)` and friends are not part of the public API.
    let rest = trimmed.strip_prefix("pub ")?;
    // Skip qualifiers: `const fn`, `unsafe fn`, `async fn`, `extern "C" fn`.
    let mut words = rest.split_whitespace().peekable();
    while let Some(&w) = words.peek() {
        match w {
            "const" => {
                // `pub const fn` vs `pub const NAME:` — look ahead.
                let mut lookahead = words.clone();
                lookahead.next();
                if lookahead.peek() == Some(&"fn") {
                    words.next();
                    continue;
                }
                return Some("const");
            }
            "unsafe" | "async" | "extern" => {
                words.next();
                continue;
            }
            _ => break,
        }
    }
    let first = words.next()?;
    DOCUMENTED_ITEMS.iter().find(|&&k| k == first).copied()
}

/// Whether the nearest non-attribute line above is a doc comment.
fn has_preceding_doc(lines: &[&str], item_idx: usize) -> bool {
    let mut i = item_idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("///") || t.starts_with("//!") || t.starts_with("#[doc") {
            return true;
        }
        // Attributes (and their continuation lines) sit between docs and
        // the item; skip them.
        if t.starts_with("#[") || t.ends_with(']') || t.ends_with(',') || t.ends_with('(') {
            continue;
        }
        return false;
    }
    false
}

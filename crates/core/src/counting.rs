//! Batch support counting and contingency-table assembly.
//!
//! The miner needs, at each level, the support `O(S)` of every candidate.
//! Both strategies of [`crate::config::CountingStrategy`] are implemented,
//! each optionally parallelized with crossbeam scoped threads. Full
//! contingency tables are then assembled *without further passes*: every
//! proper subset of a candidate was itself counted at a lower level (that
//! is the invariant of candidate generation), so the `2^m` cell counts
//! follow from stored subset supports by Möbius inversion.

use std::collections::HashMap;
use std::fmt;

use bmb_basket::{BasketDatabase, BitmapIndex, ContingencyTable, ItemId, Itemset};
use bmb_lattice::FnvHashMap;

/// The per-item marginals table assembly needs: basket count, item-space
/// size, and singleton supports. A [`BasketDatabase`] provides them
/// directly; a cluster coordinator provides a [`Marginals`] summed from
/// per-shard answers — either way the downstream arithmetic is the same
/// integer arithmetic, which is what keeps distributed evaluation
/// bit-identical to local evaluation.
pub trait MarginalSource {
    /// `n`: baskets visible to this source.
    fn n_baskets(&self) -> u64;
    /// `k`: the item-space size.
    fn n_items(&self) -> usize;
    /// `O(i)`: baskets containing item `i`.
    fn item_count(&self, item: ItemId) -> u64;
}

impl MarginalSource for BasketDatabase {
    fn n_baskets(&self) -> u64 {
        self.len() as u64
    }

    fn n_items(&self) -> usize {
        self.n_items()
    }

    fn item_count(&self, item: ItemId) -> u64 {
        self.item_count(item)
    }
}

/// Owned marginals, e.g. gathered from cluster shards (each shard's
/// basket count and singleton supports sum exactly).
#[derive(Clone, Debug, Default)]
pub struct Marginals {
    /// Total baskets across the source.
    pub n_baskets: u64,
    /// `item_counts[i]` = baskets containing item `i`; its length is the
    /// item-space size.
    pub item_counts: Vec<u64>,
}

impl MarginalSource for Marginals {
    fn n_baskets(&self) -> u64 {
        self.n_baskets
    }

    fn n_items(&self) -> usize {
        self.item_counts.len()
    }

    fn item_count(&self, item: ItemId) -> u64 {
        self.item_counts.get(item.index()).copied().unwrap_or(0)
    }
}

/// Rejoins a scoped-thread result, re-raising a worker's panic payload
/// in the calling thread. Unlike `.expect(...)`, the original panic
/// message and location survive intact.
pub(crate) fn propagate<T>(result: Result<T, Box<dyn std::any::Any + Send + 'static>>) -> T {
    match result {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Stored supports of all itemsets counted so far (singletons live in the
/// database's item counts and are consulted directly).
///
/// Keyed with FNV-1a: the store is probed several times per candidate in
/// the miner's hottest loop, and the keys are internal itemsets, not
/// untrusted input.
#[derive(Debug, Default)]
pub struct SupportStore {
    map: FnvHashMap<Itemset, u64>,
}

impl SupportStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a counted support.
    pub fn insert(&mut self, set: Itemset, support: u64) {
        self.map.insert(set, support);
    }

    /// Number of stored itemsets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `O(S)` for a set of size >= 2; singletons and the empty set
    /// are answered from the marginal source.
    pub fn support_of<M: MarginalSource>(&self, marginals: &M, set: &Itemset) -> Option<u64> {
        self.support_of_sorted(marginals, set.items())
    }

    /// Slice-keyed variant of [`SupportStore::support_of`]: `items` must be
    /// strictly sorted. Allocation-free — the miner's hot path.
    pub fn support_of_sorted<M: MarginalSource>(
        &self,
        marginals: &M,
        items: &[bmb_basket::ItemId],
    ) -> Option<u64> {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        match items {
            [] => Some(marginals.n_baskets()),
            [single] => Some(marginals.item_count(*single)),
            _ => self.map.get(items).copied(),
        }
    }
}

/// Counts `O(S)` for every candidate by bitmap intersection, using up to
/// `threads` workers.
pub fn count_with_bitmaps(index: &BitmapIndex, candidates: &[Itemset], threads: usize) -> Vec<u64> {
    let threads = threads.max(1).min(candidates.len().max(1));
    if threads == 1 || candidates.len() < 64 {
        return candidates
            .iter()
            .map(|c| index.support_count(c.items()))
            .collect();
    }
    let mut out = vec![0u64; candidates.len()];
    let chunk = candidates.len().div_ceil(threads);
    propagate(crossbeam::thread::scope(|scope| {
        for (cand_chunk, out_chunk) in candidates.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (c, slot) in cand_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = index.support_count(c.items());
                }
            });
        }
    }));
    out
}

/// Counts `O(S)` for every candidate with one pass over the horizontal
/// database (the paper's per-level pass), using up to `threads` workers
/// over disjoint basket ranges.
pub fn count_with_scan(db: &BasketDatabase, candidates: &[Itemset], threads: usize) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let level = candidates[0].len();
    debug_assert!(candidates.iter().all(|c| c.len() == level));
    let lookup: HashMap<&Itemset, usize> =
        candidates.iter().enumerate().map(|(i, c)| (c, i)).collect();
    let n = db.len();
    let threads = threads.max(1).min(n.max(1));
    let count_range = |lo: usize, hi: usize| -> Vec<u64> {
        let mut local = vec![0u64; candidates.len()];
        for b in lo..hi {
            let basket = db.basket(b);
            if basket.len() < level {
                continue;
            }
            // Baskets are stored sorted+deduplicated, so skip the re-sort.
            let basket_set = Itemset::from_sorted_slice(basket);
            if subsets_cheaper(basket.len(), level, candidates.len()) {
                for subset in basket_set.subsets_of_size(level) {
                    if let Some(&idx) = lookup.get(&subset) {
                        local[idx] += 1;
                    }
                }
            } else {
                for (idx, candidate) in candidates.iter().enumerate() {
                    if candidate.is_subset_of(&basket_set) {
                        local[idx] += 1;
                    }
                }
            }
        }
        local
    };
    if threads == 1 {
        return count_range(0, n);
    }
    let chunk = n.div_ceil(threads);
    let partials: Vec<Vec<u64>> = propagate(crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                let count_range = &count_range;
                scope.spawn(move |_| count_range(lo, hi))
            })
            .collect();
        handles.into_iter().map(|h| propagate(h.join())).collect()
    }));
    let mut out = vec![0u64; candidates.len()];
    for partial in partials {
        for (acc, v) in out.iter_mut().zip(partial) {
            *acc += v;
        }
    }
    out
}

/// Whether enumerating the basket's size-`level` subsets beats testing
/// every candidate.
fn subsets_cheaper(basket_len: usize, level: usize, n_candidates: usize) -> bool {
    let mut combos: u64 = 1;
    for i in 0..level {
        combos = combos.saturating_mul((basket_len - i) as u64) / (i as u64 + 1);
        if combos > 1 << 40 {
            return false;
        }
    }
    combos <= n_candidates as u64
}

/// Error from [`try_table_from_supports`]: a proper subset's support was
/// absent from the store, violating the candidate-generation invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissingSupport {
    /// The subset whose support was not stored.
    pub subset: Vec<bmb_basket::ItemId>,
}

impl fmt::Display for MissingSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "support of {:?} missing from the store", self.subset)
    }
}

impl std::error::Error for MissingSupport {}

/// Assembles the full `2^m` contingency table of `set` from stored subset
/// supports plus the set's own support `own_support = O(set)`, by Möbius
/// inversion of the superset-sum relation.
///
/// Passing `own_support` explicitly lets the miner assemble a candidate's
/// table *before* deciding whether its support is worth retaining — only
/// NOTSIG members' supports are needed by future levels.
///
/// # Panics
///
/// Panics if any proper subset's support is missing — candidate generation
/// guarantees presence, so a miss is a logic error. Use
/// [`try_table_from_supports`] to observe the failure as a value instead.
pub fn table_from_supports<M: MarginalSource>(
    marginals: &M,
    store: &SupportStore,
    set: &Itemset,
    own_support: u64,
) -> ContingencyTable {
    match try_table_from_supports(marginals, store, set, own_support) {
        Ok(table) => table,
        // Documented contract: a missing subset support is a candidate-
        // generation bug that must not silently corrupt mining results.
        // lint:allow(panic)
        Err(err) => panic!("{err}"),
    }
}

/// Fallible variant of [`table_from_supports`], reporting a missing
/// subset support as a [`MissingSupport`] error instead of panicking.
pub fn try_table_from_supports<M: MarginalSource>(
    marginals: &M,
    store: &SupportStore,
    set: &Itemset,
    own_support: u64,
) -> Result<ContingencyTable, MissingSupport> {
    let m = set.len();
    assert!(
        (1..=24).contains(&m),
        "table assembly supports 1..=24 items"
    );
    let items = set.items();
    let full: u32 = if m == 32 { u32::MAX } else { (1u32 << m) - 1 };
    let mut supp: Vec<u64> = vec![0; 1 << m];
    // Scratch buffer for subset keys — no per-mask allocation.
    let mut subset: Vec<bmb_basket::ItemId> = Vec::with_capacity(m);
    for mask in 0u32..(1 << m) {
        if mask == full {
            supp[mask as usize] = own_support;
            continue;
        }
        subset.clear();
        subset.extend((0..m).filter(|&j| mask & (1 << j) != 0).map(|j| items[j]));
        let Some(value) = store.support_of_sorted(marginals, &subset) else {
            return Err(MissingSupport {
                subset: subset.clone(),
            });
        };
        supp[mask as usize] = value;
    }
    Ok(table_from_subset_supports(set, &supp))
}

/// Enumerates the `2^m` subsets of `set` in mask order: bit `j` of mask
/// `i` selects the `j`-th (ascending) item. This is the canonical order
/// of a *support vector* — [`table_from_subset_supports`] consumes
/// supports in exactly this order, and a cluster coordinator uses the
/// same enumeration to build its scatter requests so gathered vectors
/// line up without any per-entry keying.
pub fn subset_itemsets(set: &Itemset) -> Vec<Vec<ItemId>> {
    let m = set.len();
    assert!(m <= 24, "subset enumeration supports up to 24 items");
    let items = set.items();
    let mut out = Vec::with_capacity(1 << m);
    for mask in 0u32..(1 << m) {
        out.push(
            (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(|j| items[j])
                .collect(),
        );
    }
    out
}

/// Element-wise sum of per-shard support vectors. Integer supports are
/// additive across disjoint shards, so the accumulated vector equals the
/// vector a single store holding every basket would produce — exactly,
/// not approximately.
///
/// # Panics
///
/// Panics if the vectors' lengths differ (shards answered different
/// subset enumerations — a protocol bug, not a data condition).
pub fn merge_support_vectors(acc: &mut [u64], shard: &[u64]) {
    assert_eq!(
        acc.len(),
        shard.len(),
        "support vectors must cover the same subset enumeration"
    );
    for (a, &s) in acc.iter_mut().zip(shard) {
        *a += s;
    }
}

/// Möbius inversion of a complete support vector (in
/// [`subset_itemsets`] order) into the `2^m` contingency table of
/// `set`. This is the same inversion [`try_table_from_supports`] and
/// `Snapshot::contingency_table` run — one shared code path, so a
/// coordinator that gathers and sums per-shard vectors, then calls
/// this, reproduces the single-store table bit for bit.
///
/// # Panics
///
/// Panics if `subset_supports.len() != 2^set.len()` or the set is empty
/// or larger than 24 items.
pub fn table_from_subset_supports(set: &Itemset, subset_supports: &[u64]) -> ContingencyTable {
    let m = set.len();
    assert!(
        (1..=24).contains(&m),
        "table assembly supports 1..=24 items"
    );
    assert_eq!(
        subset_supports.len(),
        1 << m,
        "support vector must hold all 2^m subset supports"
    );
    let mut supp: Vec<i64> = subset_supports.iter().map(|&v| v as i64).collect();
    for bit in 0..m {
        for mask in 0..(1u32 << m) {
            if mask & (1 << bit) == 0 {
                supp[mask as usize] -= supp[(mask | (1 << bit)) as usize];
            }
        }
    }
    let counts: Vec<u64> = supp.into_iter().map(|c| c.max(0) as u64).collect();
    ContingencyTable::from_counts(set.clone(), counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> BasketDatabase {
        BasketDatabase::from_id_baskets(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![0, 2],
                vec![],
                vec![3],
                vec![0, 1, 2, 3],
                vec![2, 3],
            ],
        )
    }

    fn all_pairs() -> Vec<Itemset> {
        let mut v = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                v.push(Itemset::from_ids([a, b]));
            }
        }
        v
    }

    #[test]
    fn bitmap_and_scan_agree() {
        let db = db();
        let index = BitmapIndex::build(&db);
        let candidates = all_pairs();
        let a = count_with_bitmaps(&index, &candidates, 1);
        let b = count_with_scan(&db, &candidates, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = db();
        let index = BitmapIndex::build(&db);
        // Enough candidates to engage the parallel path.
        let candidates: Vec<Itemset> = (0..200)
            .map(|i| Itemset::from_ids([i % 4, (i + 1) % 4]))
            .collect();
        let seq = count_with_bitmaps(&index, &candidates, 1);
        let par = count_with_bitmaps(&index, &candidates, 4);
        assert_eq!(seq, par);
        let seq = count_with_scan(&db, &candidates, 1);
        let par = count_with_scan(&db, &candidates, 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn assembled_table_matches_direct_construction() {
        let db = db();
        let mut store = SupportStore::new();
        let index = BitmapIndex::build(&db);
        // Count and store all pairs, then a triple.
        for pair in all_pairs() {
            let supp = index.support_count(pair.items());
            store.insert(pair, supp);
        }
        let triple = Itemset::from_ids([0, 1, 2]);
        for set in [Itemset::from_ids([0, 1]), triple] {
            let own = index.support_count(set.items());
            let assembled = table_from_supports(&db, &store, &set, own);
            let direct = ContingencyTable::from_database(&db, &set);
            assert_eq!(assembled, direct, "mismatch for {set}");
        }
    }

    #[test]
    fn store_answers_trivial_sets_from_database() {
        let db = db();
        let store = SupportStore::new();
        assert_eq!(store.support_of(&db, &Itemset::empty()), Some(8));
        assert_eq!(store.support_of(&db, &Itemset::from_ids([2])), Some(5));
        assert_eq!(store.support_of(&db, &Itemset::from_ids([0, 1])), None);
    }

    #[test]
    #[should_panic(expected = "missing from the store")]
    fn missing_subset_is_a_logic_error() {
        let db = db();
        let store = SupportStore::new();
        // A triple needs its pair subsets in the store; none are there.
        table_from_supports(&db, &store, &Itemset::from_ids([0, 1, 2]), 1);
    }

    #[test]
    fn empty_candidate_list() {
        let db = db();
        assert!(count_with_scan(&db, &[], 4).is_empty());
    }

    #[test]
    fn marginals_answer_like_the_database() {
        let db = db();
        let marginals = Marginals {
            n_baskets: db.len() as u64,
            item_counts: db.item_counts().to_vec(),
        };
        assert_eq!(marginals.n_baskets(), 8);
        assert_eq!(marginals.n_items(), 4);
        for i in 0..4u32 {
            assert_eq!(
                MarginalSource::item_count(&marginals, ItemId(i)),
                db.item_count(ItemId(i))
            );
        }
        let store = SupportStore::new();
        assert_eq!(store.support_of(&marginals, &Itemset::empty()), Some(8));
        assert_eq!(
            store.support_of(&marginals, &Itemset::from_ids([2])),
            Some(5)
        );
    }

    #[test]
    fn sharded_vectors_merge_into_the_single_store_table() {
        // Split the database into two "shards"; per-shard support
        // vectors must sum into the whole-database table, bit for bit.
        let whole = db();
        let baskets: Vec<Vec<u32>> = (0..whole.len())
            .map(|i| whole.basket(i).iter().map(|id| id.0).collect())
            .collect();
        let (left, right): (Vec<_>, Vec<_>) = baskets
            .iter()
            .cloned()
            .enumerate()
            .partition(|(i, _)| i % 2 == 0);
        let shard_a =
            BasketDatabase::from_id_baskets(4, left.into_iter().map(|(_, b)| b).collect());
        let shard_b =
            BasketDatabase::from_id_baskets(4, right.into_iter().map(|(_, b)| b).collect());
        for set in [Itemset::from_ids([0, 2]), Itemset::from_ids([0, 1, 3])] {
            let subsets = subset_itemsets(&set);
            let index_a = BitmapIndex::build(&shard_a);
            let index_b = BitmapIndex::build(&shard_b);
            let vec_of = |index: &BitmapIndex| -> Vec<u64> {
                subsets.iter().map(|s| index.support_count(s)).collect()
            };
            let mut acc = vec_of(&index_a);
            merge_support_vectors(&mut acc, &vec_of(&index_b));
            let gathered = table_from_subset_supports(&set, &acc);
            let direct = ContingencyTable::from_database(&whole, &set);
            assert_eq!(gathered, direct, "mismatch for {set}");
        }
    }

    #[test]
    fn subset_enumeration_is_in_mask_order() {
        let set = Itemset::from_ids([3, 7]);
        let subsets = subset_itemsets(&set);
        assert_eq!(subsets.len(), 4);
        assert!(subsets[0].is_empty());
        assert_eq!(subsets[1], vec![ItemId(3)]);
        assert_eq!(subsets[2], vec![ItemId(7)]);
        assert_eq!(subsets[3], vec![ItemId(3), ItemId(7)]);
    }
}

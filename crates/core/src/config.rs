//! Configuration of the `x²-support` miner (Figure 1 of the paper).

use bmb_stats::DfConvention;

/// Minimum cell support `s`, as an absolute count or fraction of `n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SupportSpec {
    /// At least this many baskets in a cell.
    Count(u64),
    /// At least this fraction of all baskets in a cell (the paper's census
    /// run uses 1%, i.e. count 304 of 30,370).
    Fraction(f64),
}

impl SupportSpec {
    /// Resolves to an absolute count for a database of `n` baskets.
    pub fn to_count(self, n: u64) -> u64 {
        match self {
            SupportSpec::Count(c) => c,
            SupportSpec::Fraction(f) => {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "support fraction out of range: {f}"
                );
                (f * n as f64).ceil() as u64
            }
        }
    }
}

/// How candidate pairs are formed at level 1 (the paper's Step 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Level1Prune {
    /// The paper's Step 3 verbatim: keep `{i_a, i_b}` only when *both*
    /// `O(i_a) >= s` and `O(i_b) >= s`. Aggressive: a pair of one rare and
    /// one common item can still meet cell support through the
    /// rare-absent cells, so this can miss borderline pairs — but it is
    /// what produced the paper's Table 5 candidate counts.
    #[default]
    PaperBothFrequent,
    /// Sound variant: prune only pairs where *neither* item reaches `s`
    /// (then at most the both-absent cell can reach `s`, which cannot
    /// satisfy `p > 0.25` of 4 cells). Never loses a supported pair.
    BothRare,
    /// No level-1 pruning: all `C(k,2)` pairs become candidates.
    Off,
}

/// How contingency tables are counted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CountingStrategy {
    /// Build a vertical bitmap index once; intersect per candidate.
    #[default]
    Bitmap,
    /// One horizontal pass per level counting all candidates at once (the
    /// paper's "one pass over the database at each level").
    BasketScan,
}

/// Full miner configuration.
#[derive(Clone, Copy, Debug)]
pub struct MinerConfig {
    /// Chi-squared significance level α (the paper uses 0.95).
    pub alpha: f64,
    /// Cell support threshold `s`.
    pub support: SupportSpec,
    /// Support fraction `p`: at least this fraction of the contingency
    /// table's cells must have observed count `>= s`. The paper requires
    /// `p > 0.25` for level-1 pruning to be available.
    pub support_fraction: f64,
    /// Level-1 candidate pruning policy.
    pub level1: Level1Prune,
    /// Hard cap on itemset size (`usize::MAX` for none).
    pub max_level: usize,
    /// Contingency counting strategy.
    pub counting: CountingStrategy,
    /// Degrees-of-freedom convention for the chi-squared cutoff.
    pub df: DfConvention,
    /// Optionally ignore cells with expectation below this in the χ²
    /// statistic (Section 3.3's workaround).
    pub low_expectation_cutoff: Option<f64>,
    /// Worker threads for candidate counting (1 = sequential).
    pub threads: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            alpha: 0.95,
            support: SupportSpec::Fraction(0.01),
            support_fraction: 0.3,
            level1: Level1Prune::default(),
            max_level: usize::MAX,
            counting: CountingStrategy::default(),
            df: DfConvention::PaperSingle,
            low_expectation_cutoff: None,
            threads: 1,
        }
    }
}

impl MinerConfig {
    /// The paper's census-experiment settings: α = 95%, s = 1%, p just
    /// above 25% so one-in-four cells suffices at level 2.
    pub fn paper_census() -> Self {
        MinerConfig {
            support_fraction: 0.26,
            ..Default::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range α or support fraction, on zero threads, or —
    /// per the paper's Step 3 precondition — when level-1 pruning is
    /// requested with `p <= 0.25`.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0,1)"
        );
        assert!(
            self.support_fraction > 0.0 && self.support_fraction <= 1.0,
            "support fraction must be in (0,1]"
        );
        assert!(self.threads >= 1, "need at least one thread");
        if self.level1 == Level1Prune::PaperBothFrequent {
            assert!(
                self.support_fraction > 0.25,
                "the paper's level-1 pruning requires p > 0.25 (got {})",
                self.support_fraction
            );
        }
        if let SupportSpec::Fraction(f) = self.support {
            assert!(
                (0.0..=1.0).contains(&f),
                "support fraction out of range: {f}"
            );
        }
    }

    /// Cells required for support in an `m`-item table:
    /// `ceil(p · 2^m)`, at least 1.
    pub fn cells_required(&self, dims: usize) -> usize {
        let cells = (1u64 << dims) as f64;
        ((self.support_fraction * cells).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_resolution() {
        assert_eq!(SupportSpec::Fraction(0.01).to_count(30_370), 304);
        assert_eq!(SupportSpec::Fraction(0.01).to_count(99_997), 1000);
        assert_eq!(SupportSpec::Count(42).to_count(1), 42);
    }

    #[test]
    fn cells_required_by_level() {
        let config = MinerConfig {
            support_fraction: 0.26,
            ..Default::default()
        };
        assert_eq!(config.cells_required(2), 2); // ceil(0.26·4)
        assert_eq!(config.cells_required(3), 3); // ceil(0.26·8)
        let quarter = MinerConfig {
            support_fraction: 0.25,
            level1: Level1Prune::Off,
            ..Default::default()
        };
        assert_eq!(quarter.cells_required(2), 1);
        assert_eq!(quarter.cells_required(3), 2);
    }

    #[test]
    fn default_config_validates() {
        MinerConfig::default().validate();
        MinerConfig::paper_census().validate();
    }

    #[test]
    #[should_panic(expected = "p > 0.25")]
    fn paper_prune_demands_p_above_quarter() {
        MinerConfig {
            support_fraction: 0.2,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        MinerConfig {
            alpha: 1.0,
            ..Default::default()
        }
        .validate();
    }
}

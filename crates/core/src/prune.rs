//! Alternative pruning criteria (Section 4's discussion).
//!
//! Beyond cell support the paper sketches two more pruning ideas:
//!
//! * **anti-support** — "only rarely occurring combinations of items are
//!   interesting", e.g. for fire-code mining where the conditions leading
//!   to fires are rare. Since `O(S)` only shrinks as items are added,
//!   anti-support is *upward* closed and composes naturally with the
//!   random-walk miner (it cannot drive a level-wise prune);
//! * **a chi-squared ceiling** — "prune itemsets with very high χ² values,
//!   under the theory that these correlations are probably so obvious as
//!   to be uninteresting". Not closed in either direction; again a
//!   predicate for walks, not levels.

use bmb_basket::{ContingencyTable, Itemset, SupportCounter};

/// Anti-support: `S` qualifies when its all-present count is at most
/// `threshold` — the combination is *rare*.
pub fn anti_supported<C: SupportCounter>(counter: &C, set: &Itemset, threshold: u64) -> bool {
    counter.itemset_support(set) <= threshold
}

/// The chi-squared ceiling: `true` when the statistic is "interestingly"
/// significant — at or above `cutoff` but below `ceiling`.
pub fn within_chi2_window(statistic: f64, cutoff: f64, ceiling: f64) -> bool {
    statistic >= cutoff && statistic < ceiling
}

/// Convenience: evaluates the windowed-χ² predicate on a table.
pub fn table_in_window(table: &ContingencyTable, test: &bmb_stats::Chi2Test, ceiling: f64) -> bool {
    let outcome = test.test_dense(table);
    within_chi2_window(outcome.statistic, outcome.cutoff, ceiling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::{BasketDatabase, ScanCounter};

    #[test]
    fn anti_support_is_upward_closed_on_data() {
        let db = BasketDatabase::from_id_baskets(
            3,
            vec![
                vec![0, 1],
                vec![0],
                vec![1],
                vec![0, 1, 2],
                vec![2],
                vec![0, 1],
            ],
        );
        let counter = ScanCounter::new(&db);
        let t = 3u64;
        // Exhaustive: if S anti-supported, every superset is too.
        let universe = Itemset::from_ids(0..3);
        for size in 1..3usize {
            for set in universe.subsets_of_size(size) {
                if !anti_supported(&counter, &set, t) {
                    continue;
                }
                for bigger_size in size + 1..=3 {
                    for sup in universe.subsets_of_size(bigger_size) {
                        if set.is_subset_of(&sup) {
                            assert!(
                                anti_supported(&counter, &sup, t),
                                "{sup} not anti-supported though {set} is"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn window_excludes_the_obvious() {
        assert!(within_chi2_window(10.0, 3.84, 100.0));
        assert!(!within_chi2_window(2.0, 3.84, 100.0)); // insignificant
        assert!(!within_chi2_window(5000.0, 3.84, 100.0)); // too obvious
        assert!(within_chi2_window(3.84, 3.84, 100.0)); // boundary inclusive below
    }

    #[test]
    fn table_window_on_real_tables() {
        use bmb_stats::Chi2Test;
        let test = Chi2Test::default();
        // Example 1's tea/coffee table scores χ² ≈ 3.70 — just *under*
        // the 95% cutoff; doubled (n = 200) it clears 3.84 with χ² ≈ 7.4
        // and sits inside a (3.84, 100) window.
        let tea_coffee =
            ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![5, 5, 70, 20]);
        assert!(!table_in_window(&tea_coffee, &test, 100.0));
        let moderate =
            ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![10, 10, 140, 40]);
        assert!(table_in_window(&moderate, &test, 100.0));
        // Perfect correlation (χ² = n): excluded as too obvious.
        let obvious =
            ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![500, 0, 0, 500]);
        assert!(!table_in_window(&obvious, &test, 100.0));
    }
}

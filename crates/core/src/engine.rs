//! The online correlation-query engine behind `bmb-serve`.
//!
//! A [`QueryEngine`] answers chi-squared / interest / top-k / border
//! queries against epoch-pinned [`Snapshot`]s of an [`IncrementalStore`],
//! with two capacity-bounded caches:
//!
//! * a **table cache** keyed by `(itemset, epoch)` — a full assembled
//!   [`ContingencyTable`]; entries for stale epochs simply stop being hit
//!   and age out of the LRU;
//! * a **segment-support cache** keyed by `(segment id, itemset)` —
//!   per-sealed-segment supports. Sealed segments are immutable, so these
//!   entries stay valid across ingest: after an append only the (small)
//!   tail contribution is recomputed, which is the "invalidated
//!   per-segment" behaviour a mostly-append workload wants.
//!
//! Every answer is bit-identical to the batch pipeline on the same epoch:
//! snapshot supports are exact sums over a partition of the baskets, and
//! tables are assembled by the same Möbius inversion the miner uses.

use std::sync::{Arc, Mutex, PoisonError};

use bmb_basket::{ContingencyTable, IncrementalStore, ItemId, Itemset, Segment, Snapshot};
use bmb_obs::{Counter, Registry};
use bmb_stats::{Chi2Outcome, Chi2Test, DfConvention, InterestReport, SignificanceLevel};

use crate::config::MinerConfig;
use crate::lru::LruCache;
use crate::miner::{mine, MiningResult};
use crate::report::PairCorrelation;

/// Largest itemset a point query may name; bounds the `2^m` table work a
/// single request can demand.
pub const MAX_QUERY_DIMS: usize = 16;

/// Engine configuration: test parameters and cache bounds.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Significance level α for chi-squared verdicts.
    pub alpha: f64,
    /// Degrees-of-freedom convention (the paper's single-df by default).
    pub df: DfConvention,
    /// Optional low-expectation cell exclusion (see [`Chi2Test`]).
    pub low_expectation_cutoff: Option<f64>,
    /// Capacity of the `(itemset, epoch)` table cache.
    pub table_cache: usize,
    /// Capacity of the `(segment, itemset)` support cache.
    pub segment_cache: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            alpha: 0.95,
            df: DfConvention::PaperSingle,
            low_expectation_cutoff: None,
            table_cache: 4096,
            segment_cache: 65536,
        }
    }
}

/// A query the engine cannot answer, as a value (servers must not panic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The itemset named no items.
    EmptyItemset,
    /// The itemset exceeds [`MAX_QUERY_DIMS`].
    TooManyItems {
        /// Items in the query.
        len: usize,
    },
    /// An item id outside the store's item space.
    ItemOutOfRange {
        /// The offending item.
        item: ItemId,
        /// The store's item-space size.
        n_items: usize,
    },
    /// A cell mask outside the table's `2^m` cells.
    CellOutOfRange {
        /// The offending mask.
        cell: u32,
        /// The table's dimensionality.
        dims: usize,
    },
    /// The snapshot holds no baskets, so no statistic is defined.
    EmptySnapshot,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyItemset => write!(f, "itemset must name at least one item"),
            EngineError::TooManyItems { len } => {
                write!(
                    f,
                    "itemset of {len} items exceeds the {MAX_QUERY_DIMS}-item query limit"
                )
            }
            EngineError::ItemOutOfRange { item, n_items } => {
                write!(
                    f,
                    "item {item} out of range for item space of {n_items} items"
                )
            }
            EngineError::CellOutOfRange { cell, dims } => {
                write!(f, "cell {cell} out of range for a {dims}-item table")
            }
            EngineError::EmptySnapshot => write!(f, "no baskets ingested yet"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Point-in-time cache counters (cumulative since engine creation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Table-cache hits.
    pub table_hits: u64,
    /// Table-cache misses (tables assembled).
    pub table_misses: u64,
    /// Table-cache LRU evictions.
    pub table_evictions: u64,
    /// Sealed-segment support-cache hits.
    pub segment_hits: u64,
    /// Sealed-segment support-cache misses (bitmap sweeps run).
    pub segment_misses: u64,
    /// Sealed-segment support-cache LRU evictions.
    pub segment_evictions: u64,
}

impl CacheStats {
    /// Table-cache hit rate in `[0, 1]`; 0 when nothing was asked.
    pub fn table_hit_rate(&self) -> f64 {
        let total = self.table_hits + self.table_misses;
        if total == 0 {
            0.0
        } else {
            self.table_hits as f64 / total as f64
        }
    }
}

/// The verdict for one chi-squared point query.
#[derive(Clone, Debug)]
pub struct Chi2Answer {
    /// The queried itemset (canonical order).
    pub itemset: Itemset,
    /// The epoch the answer is pinned to.
    pub epoch: u64,
    /// `O(S)` at that epoch.
    pub support: u64,
    /// The chi-squared outcome (statistic, cutoff, significance, p-value).
    pub outcome: Chi2Outcome,
}

/// The answer to one interest point query.
#[derive(Clone, Debug)]
pub struct InterestAnswer {
    /// The queried itemset (canonical order).
    pub itemset: Itemset,
    /// The queried cell (presence bitmask in itemset order).
    pub cell: u32,
    /// The epoch the answer is pinned to.
    pub epoch: u64,
    /// Observed count `O(r)`.
    pub observed: u64,
    /// Expected count `E[r]` under independence.
    pub expected: f64,
    /// `I(r) = O(r)/E[r]`.
    pub interest: f64,
}

/// The online query engine; all methods take `&self` and are safe to call
/// from many server threads at once.
pub struct QueryEngine {
    store: Arc<IncrementalStore>,
    test: Chi2Test,
    tables: Mutex<LruCache<(Itemset, u64), Arc<ContingencyTable>>>,
    segment_supports: Mutex<LruCache<(u64, Itemset), u64>>,
    /// Per-engine metrics registry (`bmb_core_cache_*` families); each
    /// engine owns its own so parallel engines never share counters.
    obs: Arc<Registry>,
    table_hits: Counter,
    table_misses: Counter,
    table_evictions: Counter,
    segment_hits: Counter,
    segment_misses: Counter,
    segment_evictions: Counter,
}

impl QueryEngine {
    /// An engine over `store` with the given configuration.
    pub fn new(store: Arc<IncrementalStore>, config: EngineConfig) -> Self {
        let obs = Arc::new(Registry::new());
        let hits_help = "Engine cache hits by cache.";
        let misses_help = "Engine cache misses by cache.";
        let evict_help = "Engine cache LRU evictions by cache.";
        let table = [("cache", "table")];
        let segment = [("cache", "segment")];
        QueryEngine {
            store,
            test: Chi2Test {
                level: SignificanceLevel::new(config.alpha),
                df: config.df,
                low_expectation_cutoff: config.low_expectation_cutoff,
            },
            tables: Mutex::new(LruCache::with_capacity(config.table_cache.max(1))),
            segment_supports: Mutex::new(LruCache::with_capacity(config.segment_cache.max(1))),
            table_hits: obs.counter_with("bmb_core_cache_hits_total", hits_help, &table),
            table_misses: obs.counter_with("bmb_core_cache_misses_total", misses_help, &table),
            table_evictions: obs.counter_with("bmb_core_cache_evictions_total", evict_help, &table),
            segment_hits: obs.counter_with("bmb_core_cache_hits_total", hits_help, &segment),
            segment_misses: obs.counter_with("bmb_core_cache_misses_total", misses_help, &segment),
            segment_evictions: obs.counter_with(
                "bmb_core_cache_evictions_total",
                evict_help,
                &segment,
            ),
            obs,
        }
    }

    /// The engine's metrics registry, for merging into a server's
    /// `/metrics` exposition.
    pub fn observability(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The underlying store (for ingest).
    pub fn store(&self) -> &Arc<IncrementalStore> {
        &self.store
    }

    /// The chi-squared test configuration in force.
    pub fn test(&self) -> &Chi2Test {
        &self.test
    }

    /// A fresh epoch-pinned snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// Cumulative cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            table_hits: self.table_hits.get(),
            table_misses: self.table_misses.get(),
            table_evictions: self.table_evictions.get(),
            segment_hits: self.segment_hits.get(),
            segment_misses: self.segment_misses.get(),
            segment_evictions: self.segment_evictions.get(),
        }
    }

    /// The contingency table of `set` at `snap`'s epoch, from cache or
    /// assembled from per-segment supports.
    ///
    /// # Errors
    ///
    /// Rejects empty, oversized, or out-of-range itemsets and empty
    /// snapshots.
    pub fn table(
        &self,
        snap: &Snapshot,
        set: &Itemset,
    ) -> Result<Arc<ContingencyTable>, EngineError> {
        self.validate(snap, set)?;
        let key = (set.clone(), snap.epoch());
        if let Some(table) = lock(&self.tables).get(&key) {
            self.table_hits.inc();
            return Ok(Arc::clone(table));
        }
        self.table_misses.inc();
        let table = Arc::new(self.assemble_table(snap, set));
        if lock(&self.tables).insert(key, Arc::clone(&table)) {
            self.table_evictions.inc();
        }
        Ok(table)
    }

    /// Chi-squared verdict for `set` at `snap`'s epoch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QueryEngine::table`].
    pub fn chi2(&self, snap: &Snapshot, set: &Itemset) -> Result<Chi2Answer, EngineError> {
        let table = self.table(snap, set)?;
        let full_cell = (1u32 << set.len()) - 1;
        Ok(Chi2Answer {
            itemset: set.clone(),
            epoch: snap.epoch(),
            support: table.observed(full_cell),
            outcome: self.test.test_dense(&table),
        })
    }

    /// Batched point chi-squared lookups over one pinned snapshot: every
    /// answer refers to the same epoch.
    pub fn chi2_batch(
        &self,
        snap: &Snapshot,
        sets: &[Itemset],
    ) -> Vec<Result<Chi2Answer, EngineError>> {
        sets.iter().map(|set| self.chi2(snap, set)).collect()
    }

    /// Interest `I(r) = O(r)/E[r]` of one cell of `set`'s table.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QueryEngine::table`], plus an out-of-range
    /// cell mask.
    pub fn interest(
        &self,
        snap: &Snapshot,
        set: &Itemset,
        cell: u32,
    ) -> Result<InterestAnswer, EngineError> {
        let table = self.table(snap, set)?;
        if cell as usize >= table.n_cells() {
            return Err(EngineError::CellOutOfRange {
                cell,
                dims: table.dims(),
            });
        }
        let report = InterestReport::analyze(&table);
        let info = report.cells()[cell as usize];
        Ok(InterestAnswer {
            itemset: set.clone(),
            cell,
            epoch: snap.epoch(),
            observed: info.observed,
            expected: info.expected,
            interest: info.interest,
        })
    }

    /// The `k` most correlated item *pairs* at `snap`'s epoch, ranked by
    /// chi-squared statistic (descending). Pair tables are derived from
    /// marginals plus one pair support each, bypassing the caches so a
    /// sweep cannot evict hot point-query entries.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::EmptySnapshot`] when nothing was ingested.
    pub fn topk_pairs(
        &self,
        snap: &Snapshot,
        k: usize,
    ) -> Result<Vec<PairCorrelation>, EngineError> {
        if snap.is_empty() {
            return Err(EngineError::EmptySnapshot);
        }
        let n_items = snap.n_items();
        let n = snap.n_baskets() as u64;
        let item_counts: Vec<u64> = (0..n_items)
            .map(|i| snap.item_count(ItemId(i as u32)))
            .collect();
        let mut rows: Vec<PairCorrelation> = Vec::new();
        for a in 0..n_items {
            for b in a + 1..n_items {
                let set = Itemset::from_ids([a as u32, b as u32]);
                let s_ab = snap.support(set.items());
                let (o_a, o_b) = (item_counts[a], item_counts[b]);
                // Cell masks: bit0 = a present, bit1 = b present.
                let counts = vec![(n + s_ab) - o_a - o_b, o_a - s_ab, o_b - s_ab, s_ab];
                let table = ContingencyTable::from_counts(set, counts);
                rows.push(PairCorrelation::from_table(&table, &self.test));
            }
        }
        rows.sort_unstable_by(|x, y| {
            y.chi2
                .statistic
                .total_cmp(&x.chi2.statistic)
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        rows.truncate(k);
        Ok(rows)
    }

    /// The border of correlation at `snap`'s epoch: materializes the
    /// snapshot and runs the batch miner, so the answer is — by
    /// construction — identical to a batch run over the same baskets.
    /// This is the service's heavyweight analytical query.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::EmptySnapshot`] when nothing was ingested.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`MinerConfig::validate`]).
    pub fn border(
        &self,
        snap: &Snapshot,
        config: &MinerConfig,
    ) -> Result<MiningResult, EngineError> {
        if snap.is_empty() {
            return Err(EngineError::EmptySnapshot);
        }
        Ok(mine(&snap.to_database(), config))
    }

    /// Validates a point query against the snapshot.
    fn validate(&self, snap: &Snapshot, set: &Itemset) -> Result<(), EngineError> {
        if set.is_empty() {
            return Err(EngineError::EmptyItemset);
        }
        if set.len() > MAX_QUERY_DIMS {
            return Err(EngineError::TooManyItems { len: set.len() });
        }
        if snap.is_empty() {
            return Err(EngineError::EmptySnapshot);
        }
        for &item in set.items() {
            if item.index() >= snap.n_items() {
                return Err(EngineError::ItemOutOfRange {
                    item,
                    n_items: snap.n_items(),
                });
            }
        }
        Ok(())
    }

    /// Assembles `set`'s table from per-segment supports by Möbius
    /// inversion (sealed-segment supports served from cache).
    fn assemble_table(&self, snap: &Snapshot, set: &Itemset) -> ContingencyTable {
        let m = set.len();
        let items = set.items();
        let mut supp: Vec<i64> = vec![0; 1 << m];
        let mut subset: Vec<ItemId> = Vec::with_capacity(m);
        for mask in 0u32..(1 << m) {
            subset.clear();
            subset.extend((0..m).filter(|&j| mask & (1 << j) != 0).map(|j| items[j]));
            let mut total: u64 = snap.tail_segment().map_or(0, |tail| tail.support(&subset));
            for segment in snap.sealed_segments() {
                total += self.sealed_support(segment, &subset);
            }
            supp[mask as usize] = total as i64;
        }
        for bit in 0..m {
            for mask in 0..(1u32 << m) {
                if mask & (1 << bit) == 0 {
                    supp[mask as usize] -= supp[(mask | (1 << bit)) as usize];
                }
            }
        }
        let counts: Vec<u64> = supp.into_iter().map(|c| c.max(0) as u64).collect();
        ContingencyTable::from_counts(set.clone(), counts)
    }

    /// `O(subset)` within one *sealed* segment, via the per-segment cache.
    /// Empty sets and singletons are answered from the segment's counts
    /// directly — caching them would only displace multi-item entries.
    fn sealed_support(&self, segment: &Segment, subset: &[ItemId]) -> u64 {
        match subset {
            [] => segment.len() as u64,
            [single] => segment.database().item_count(*single),
            _ => {
                let key = (segment.id(), Itemset::from_sorted_slice(subset));
                if let Some(&support) = lock(&self.segment_supports).get(&key) {
                    self.segment_hits.inc();
                    return support;
                }
                self.segment_misses.inc();
                let support = segment.support(subset);
                if lock(&self.segment_supports).insert(key, support) {
                    self.segment_evictions.inc();
                }
                support
            }
        }
    }
}

/// Acquires a mutex, recovering from poisoning (cache state is always
/// consistent — the critical sections contain no panicking operations on
/// valid inputs).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmb_basket::StoreConfig;

    fn store_with(baskets: &[Vec<u32>], segment_capacity: usize) -> Arc<IncrementalStore> {
        let store = Arc::new(IncrementalStore::new(10, StoreConfig { segment_capacity }));
        for b in baskets {
            store.append_ids(b.iter().copied()).unwrap();
        }
        store
    }

    fn census_engine() -> (Arc<IncrementalStore>, QueryEngine) {
        let db = bmb_datasets::generate_census();
        let store = Arc::new(IncrementalStore::from_database(
            &db,
            StoreConfig {
                segment_capacity: 8192,
            },
        ));
        let engine = QueryEngine::new(Arc::clone(&store), EngineConfig::default());
        (store, engine)
    }

    #[test]
    fn chi2_matches_batch_table_on_census() {
        let (_store, engine) = census_engine();
        let snap = engine.snapshot();
        let flat = snap.to_database();
        let test = Chi2Test::default();
        for (a, b) in [(2u32, 7u32), (0, 1), (3, 9)] {
            let set = Itemset::from_ids([a, b]);
            let answer = engine.chi2(&snap, &set).unwrap();
            let batch_table = ContingencyTable::from_database(&flat, &set);
            let batch = test.test_dense(&batch_table);
            assert_eq!(
                answer.outcome.statistic.to_bits(),
                batch.statistic.to_bits()
            );
            assert_eq!(answer.outcome.significant, batch.significant);
            assert_eq!(answer.support, batch_table.observed(0b11));
        }
    }

    #[test]
    fn table_cache_hits_on_repeat_and_misses_after_ingest() {
        let store = store_with(&[vec![0, 1], vec![1, 2], vec![0, 1, 2], vec![3]], 2);
        let engine = QueryEngine::new(Arc::clone(&store), EngineConfig::default());
        let set = Itemset::from_ids([0, 1]);
        let snap = engine.snapshot();
        engine.chi2(&snap, &set).unwrap();
        engine.chi2(&snap, &set).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.table_misses, 1);
        assert_eq!(stats.table_hits, 1);
        // Ingest advances the epoch: the next query misses the table cache
        // but reuses every sealed segment's supports.
        store.append_ids([0, 1, 2]).unwrap();
        let snap2 = engine.snapshot();
        engine.chi2(&snap2, &set).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.table_misses, 2);
        assert!(
            stats.segment_hits >= 1,
            "sealed-segment supports must survive ingest: {stats:?}"
        );
    }

    #[test]
    fn answers_identical_across_cache_states() {
        let store = store_with(
            &[
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![0, 2],
                vec![],
                vec![3],
                vec![0, 1, 2, 3],
                vec![2, 3],
            ],
            3,
        );
        let engine = QueryEngine::new(Arc::clone(&store), EngineConfig::default());
        let snap = engine.snapshot();
        let set = Itemset::from_ids([0, 1, 2]);
        let cold = engine.chi2(&snap, &set).unwrap();
        let warm = engine.chi2(&snap, &set).unwrap();
        assert_eq!(
            cold.outcome.statistic.to_bits(),
            warm.outcome.statistic.to_bits()
        );
        assert_eq!(cold.support, warm.support);
        // And identical to the uncached snapshot path.
        let direct = engine.test().test_dense(&snap.contingency_table(&set));
        assert_eq!(cold.outcome.statistic.to_bits(), direct.statistic.to_bits());
    }

    #[test]
    fn topk_ranks_by_statistic_and_matches_pairs_report() {
        let (_store, engine) = census_engine();
        let snap = engine.snapshot();
        let top = engine.topk_pairs(&snap, 5).unwrap();
        assert_eq!(top.len(), 5);
        assert!(top
            .windows(2)
            .all(|w| w[0].chi2.statistic >= w[1].chi2.statistic));
        // Same rows the batch pairs report would produce.
        let flat = snap.to_database();
        let batch = crate::report::pairs_report(&flat, engine.test());
        for row in &top {
            let matching = batch.iter().find(|r| r.a == row.a && r.b == row.b).unwrap();
            assert_eq!(
                row.chi2.statistic.to_bits(),
                matching.chi2.statistic.to_bits()
            );
        }
    }

    #[test]
    fn border_matches_batch_miner() {
        let db = bmb_datasets::parity_triple(400, 4);
        let store = Arc::new(IncrementalStore::from_database(
            &db,
            StoreConfig {
                segment_capacity: 128,
            },
        ));
        let engine = QueryEngine::new(Arc::clone(&store), EngineConfig::default());
        let config = MinerConfig {
            support: crate::config::SupportSpec::Count(5),
            support_fraction: 0.26,
            ..MinerConfig::default()
        };
        let snap = engine.snapshot();
        let online = engine.border(&snap, &config).unwrap();
        let batch = mine(&db, &config);
        let online_sets: Vec<&Itemset> = online.significant.iter().map(|r| &r.itemset).collect();
        let batch_sets: Vec<&Itemset> = batch.significant.iter().map(|r| &r.itemset).collect();
        assert_eq!(online_sets, batch_sets);
        assert_eq!(online.levels, batch.levels);
    }

    #[test]
    fn errors_are_values_not_panics() {
        let store = store_with(&[vec![0, 1]], 4);
        let engine = QueryEngine::new(Arc::clone(&store), EngineConfig::default());
        let snap = engine.snapshot();
        assert_eq!(
            engine.chi2(&snap, &Itemset::empty()).unwrap_err(),
            EngineError::EmptyItemset
        );
        assert!(matches!(
            engine.chi2(&snap, &Itemset::from_ids([42])).unwrap_err(),
            EngineError::ItemOutOfRange { .. }
        ));
        assert!(matches!(
            engine
                .chi2(&snap, &Itemset::from_ids(0..(MAX_QUERY_DIMS as u32 + 1)))
                .unwrap_err(),
            EngineError::TooManyItems { .. }
        ));
        assert!(matches!(
            engine
                .interest(&snap, &Itemset::from_ids([0, 1]), 4)
                .unwrap_err(),
            EngineError::CellOutOfRange { .. }
        ));
        let empty = QueryEngine::new(
            Arc::new(IncrementalStore::new(2, StoreConfig::default())),
            EngineConfig::default(),
        );
        let empty_snap = empty.snapshot();
        assert_eq!(
            empty
                .chi2(&empty_snap, &Itemset::from_ids([0]))
                .unwrap_err(),
            EngineError::EmptySnapshot
        );
    }

    #[test]
    fn interest_matches_paper_census_row() {
        let (_store, engine) = census_engine();
        let snap = engine.snapshot();
        let set = Itemset::from_ids([2, 7]);
        // Paper Table 2, (i2, i7): I(āb̄) = 1.988 — mask 0b00.
        let answer = engine.interest(&snap, &set, 0b00).unwrap();
        assert!((answer.interest - 1.988).abs() < 0.05, "{answer:?}");
    }
}

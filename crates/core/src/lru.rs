//! A small intrusive-list LRU cache for the query engine.
//!
//! The serving layer caches assembled contingency tables (keyed by
//! itemset + epoch) and per-segment supports (keyed by segment id +
//! itemset). Both need strict capacity bounds — a long-running server
//! must not grow with the query stream — and O(1) get/insert. The cache
//! is a plain slab (`Vec`) of nodes linked into a recency list by index;
//! no unsafe code, no external crates.

use std::collections::HashMap;
use std::hash::Hash;

/// Index sentinel for "no node".
const NIL: usize = usize::MAX;

/// One slab entry: a key/value pair linked into the recency list.
#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
///
/// # Examples
///
/// ```
/// use bmb_core::lru::LruCache;
///
/// let mut cache = LruCache::with_capacity(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// assert_eq!(cache.get(&"a"), Some(&1)); // "a" is now most recent
/// assert!(cache.insert("c", 3)); // evicts "b", the least recent
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most recently used node, or [`NIL`].
    head: usize,
    /// Least recently used node, or [`NIL`].
    tail: usize,
    /// Recycled slab slots.
    free: Vec<usize>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache evicting beyond `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &idx = self.map.get(key)?;
        self.move_to_front(idx);
        Some(&self.nodes[idx].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry if the cache is full. The new entry is most recently used.
    /// Returns `true` when an existing entry was evicted to make room —
    /// the engine feeds this into its per-cache eviction counters.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.move_to_front(idx);
            return false;
        }
        let evicted = if self.map.len() >= self.capacity {
            self.evict_tail()
        } else {
            false
        };
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.map.insert(key, idx);
        evicted
    }

    /// Drops every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Unlinks `idx` from the recency list and relinks it at the head.
    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        }
        if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
    }

    /// Removes the least recently used entry; `true` if one existed.
    fn evict_tail(&mut self) -> bool {
        let idx = self.tail;
        if idx == NIL {
            return false;
        }
        let prev = self.nodes[idx].prev;
        if prev != NIL {
            self.nodes[prev].next = NIL;
        } else {
            self.head = NIL;
        }
        self.tail = prev;
        self.map.remove(&self.nodes[idx].key);
        self.free.push(idx);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut cache = LruCache::with_capacity(2);
        cache.insert(1, "one");
        cache.insert(2, "two");
        assert_eq!(cache.get(&1), Some(&"one"));
        cache.insert(3, "three"); // 2 is LRU now
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
    }

    #[test]
    fn replace_updates_value_in_place() {
        let mut cache = LruCache::with_capacity(2);
        cache.insert("k", 1);
        cache.insert("k", 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&"k"), Some(&2));
    }

    #[test]
    fn eviction_order_is_least_recent_first() {
        let mut cache = LruCache::with_capacity(3);
        for i in 0..3 {
            cache.insert(i, i);
        }
        // Touch 0 and 1; 2 becomes LRU.
        cache.get(&0);
        cache.get(&1);
        cache.insert(9, 9);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn slots_are_recycled() {
        let mut cache = LruCache::with_capacity(2);
        for i in 0..100 {
            cache.insert(i, i);
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.nodes.len() <= 3, "slab must not grow unboundedly");
        assert_eq!(cache.get(&99), Some(&99));
        assert_eq!(cache.get(&98), Some(&98));
    }

    #[test]
    fn insert_reports_evictions() {
        let mut cache = LruCache::with_capacity(2);
        assert!(!cache.insert(1, 1), "room left: no eviction");
        assert!(!cache.insert(2, 2), "room left: no eviction");
        assert!(!cache.insert(1, 10), "replacement is not an eviction");
        assert!(cache.insert(3, 3), "full cache must evict");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_one_works() {
        let mut cache = LruCache::with_capacity(1);
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&2), Some(&2));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, u32>::with_capacity(0);
    }
}

//! The `x²-support` algorithm — Figure 1 of the paper.
//!
//! Level-wise search for *significant* (supported and minimally
//! correlated) itemsets:
//!
//! 1. count `O(i)` for every item;
//! 2. CAND ← item pairs passing the level-1 prune;
//! 3. for each candidate: build its contingency table; discard it if fewer
//!    than `p` of the cells reach count `s`; otherwise send it to SIG
//!    (χ² at or above the cutoff) or NOTSIG (below);
//! 4. CAND at the next level ← every set whose facets are all in NOTSIG —
//!    supersets of correlated sets are *not minimal* and supersets of
//!    unsupported sets are unsupported, so only NOTSIG spawns candidates;
//! 5. repeat until CAND is empty.
//!
//! The upward closure of chi-squared significance (Theorem 1) makes SIG
//! exactly the *border of correlation* among supported itemsets.

use std::time::{Duration, Instant};

use bmb_basket::{BasketDatabase, BitmapIndex, ItemId, Itemset};
use bmb_lattice::{generate_candidates, Border, ItemsetTable};
use bmb_stats::{Chi2Test, SignificanceLevel};

use crate::config::{CountingStrategy, Level1Prune, MinerConfig};
use crate::counting::{
    count_with_bitmaps, count_with_scan, table_from_supports, MarginalSource, SupportStore,
};
use crate::sig::CorrelationRule;
use crate::stats::{lattice_level_size, LevelStats};
use crate::support::cell_support;

/// Result of a mining run.
#[derive(Debug)]
pub struct MiningResult {
    /// All significant itemsets, in discovery (level, lexicographic) order.
    pub significant: Vec<CorrelationRule>,
    /// Per-level accounting (Table 5's columns).
    pub levels: Vec<LevelStats>,
    /// The resolved absolute support threshold `s`.
    pub support_count: u64,
    /// The chi-squared cutoff used.
    pub chi2_cutoff: f64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Per-stage wall-time profile (`bmb mine --trace`).
    pub profile: MinerProfile,
}

/// Wall-time accounting for one mined level's stages.
///
/// Kept apart from [`LevelStats`]: level stats are `Eq`-compared across
/// thread counts and counting strategies, and wall times would never
/// agree — counts go there, durations go here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelProfile {
    /// The level these timings belong to (itemset size).
    pub level: usize,
    /// Support counting (bitmap intersection or basket scan), µs.
    pub count_us: u64,
    /// Candidate evaluation (table assembly, support test, χ²), µs.
    pub evaluate_us: u64,
    /// SIG/NOTSIG bookkeeping and border emission, µs.
    pub emit_us: u64,
    /// Next-level candidate generation from NOTSIG, µs.
    pub candgen_us: u64,
}

impl LevelProfile {
    /// Total wall time attributed to this level, µs.
    pub fn total_us(&self) -> u64 {
        self.count_us + self.evaluate_us + self.emit_us + self.candgen_us
    }
}

/// Whole-run stage profile, populated by every [`mine`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MinerProfile {
    /// Bitmap-index construction, µs (0 under the scan strategy).
    pub index_build_us: u64,
    /// Level-1 pruning / initial pair generation, µs.
    pub initial_pairs_us: u64,
    /// Per-level stage timings, parallel to `MiningResult::levels`.
    pub levels: Vec<LevelProfile>,
}

impl MiningResult {
    /// The border of correlation: the significant itemsets as an antichain.
    ///
    /// (They are minimal by construction; assembling the border re-checks
    /// the antichain property in debug builds.)
    pub fn border(&self) -> Border {
        Border::from_holders(self.significant.iter().map(|r| r.itemset.clone()))
    }

    /// Looks up a significant itemset.
    pub fn rule_for(&self, set: &Itemset) -> Option<&CorrelationRule> {
        self.significant.iter().find(|r| &r.itemset == set)
    }

    /// Total candidates examined across levels.
    pub fn total_candidates(&self) -> usize {
        self.levels.iter().map(|l| l.candidates).sum()
    }
}

/// Runs the miner over `db` with `config`.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`MinerConfig::validate`]).
pub fn mine(db: &BasketDatabase, config: &MinerConfig) -> MiningResult {
    config.validate();
    let obs = MinerObs::attach();
    let _mine_span = bmb_obs::trace::span("mine");
    let start = Instant::now();

    let mut profile = MinerProfile::default();
    let index = {
        let _span = bmb_obs::trace::span_timed("index_build", &obs.index_build);
        let stage = Instant::now();
        let index = match config.counting {
            CountingStrategy::Bitmap => Some(BitmapIndex::build(db)),
            CountingStrategy::BasketScan => None,
        };
        profile.index_build_us = micros(stage.elapsed());
        index
    };
    let count = |candidates: &[Itemset]| -> Result<Vec<u64>, std::convert::Infallible> {
        Ok(match &index {
            Some(index) => count_with_bitmaps(index, candidates, config.threads),
            None => count_with_scan(db, candidates, config.threads),
        })
    };
    match mine_levels(db, count, config, &obs, start, profile) {
        Ok(result) => result,
        Err(never) => match never {},
    }
}

/// Runs the level-wise search with an external support counter — the
/// distributed entry point. `marginals` answers the level-1 prune and
/// singleton/empty-set lookups; `count` answers each level's candidate
/// supports (e.g. by scattering to shards and summing their integer
/// answers). Everything downstream of counting — table assembly, the
/// cell-support test, χ², SIG/NOTSIG bookkeeping, candidate generation —
/// is the *same code* [`mine`] runs, so a counter that returns the same
/// integers produces a bit-identical [`MiningResult`].
///
/// The first `Err` from `count` aborts the run and is returned verbatim
/// (a coordinator maps transport failures here).
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`MinerConfig::validate`]).
pub fn mine_with_counter<M, F, E>(
    marginals: &M,
    count: F,
    config: &MinerConfig,
) -> Result<MiningResult, E>
where
    M: MarginalSource + Sync,
    F: FnMut(&[Itemset]) -> Result<Vec<u64>, E>,
{
    config.validate();
    let obs = MinerObs::attach();
    let _mine_span = bmb_obs::trace::span("mine");
    let start = Instant::now();
    mine_levels(
        marginals,
        count,
        config,
        &obs,
        start,
        MinerProfile::default(),
    )
}

/// The shared level loop of [`mine`] and [`mine_with_counter`].
fn mine_levels<M, F, E>(
    marginals: &M,
    mut count: F,
    config: &MinerConfig,
    obs: &MinerObs,
    start: Instant,
    mut profile: MinerProfile,
) -> Result<MiningResult, E>
where
    M: MarginalSource + Sync,
    F: FnMut(&[Itemset]) -> Result<Vec<u64>, E>,
{
    let n = marginals.n_baskets();
    let k = marginals.n_items();
    let s = config.support.to_count(n).max(1);
    let chi2_test = Chi2Test {
        level: SignificanceLevel::new(config.alpha),
        df: config.df,
        low_expectation_cutoff: config.low_expectation_cutoff,
    };

    let mut store = SupportStore::new();
    let mut significant: Vec<CorrelationRule> = Vec::new();
    let mut levels: Vec<LevelStats> = Vec::new();
    let mut chi2_cutoff = f64::NAN;

    // Step 3: level-1 pruning builds the initial candidate pairs.
    let mut candidates = {
        let _span = bmb_obs::trace::span_timed("initial_pairs", &obs.initial_pairs);
        let stage = Instant::now();
        let candidates = initial_pairs(marginals, s, config.level1);
        profile.initial_pairs_us = micros(stage.elapsed());
        candidates
    };

    let mut level = 2usize;
    while !candidates.is_empty() && level <= config.max_level {
        let mut level_profile = LevelProfile {
            level,
            ..Default::default()
        };
        let supports = {
            let _span = bmb_obs::trace::span_timed("count", &obs.stage_count);
            let stage = Instant::now();
            let supports = count(&candidates)?;
            level_profile.count_us = micros(stage.elapsed());
            supports
        };
        let mut stats = LevelStats {
            level,
            lattice_itemsets: lattice_level_size(k, level),
            candidates: candidates.len(),
            ..Default::default()
        };
        let cells_required = config.cells_required(level);
        let is_last_level = level >= config.max_level;
        // Evaluation (table assembly → support test → χ²) only *reads* the
        // store — every needed subset support was inserted at lower levels
        // and the candidate's own support is passed explicitly — so the
        // per-candidate work parallelizes; SIG/NOTSIG bookkeeping happens
        // afterwards, in order.
        let verdicts = {
            let _span = bmb_obs::trace::span_timed("evaluate", &obs.stage_evaluate);
            let stage = Instant::now();
            let verdicts = evaluate_candidates(
                marginals,
                &store,
                &candidates,
                &supports,
                s,
                cells_required,
                &chi2_test,
                config.threads,
            );
            level_profile.evaluate_us = micros(stage.elapsed());
            verdicts
        };
        let emit_start = Instant::now();
        let _emit_span = bmb_obs::trace::span_timed("emit", &obs.stage_emit);
        let mut notsig = ItemsetTable::with_capacity(candidates.len());
        for ((candidate, supp), verdict) in candidates.iter().zip(&supports).zip(verdicts) {
            match verdict {
                Verdict::Discarded => stats.discards += 1,
                Verdict::Significant(rule) => {
                    stats.significant += 1;
                    chi2_cutoff = rule.chi2.cutoff;
                    significant.push(rule);
                }
                Verdict::NotSignificant { cutoff } => {
                    stats.not_significant += 1;
                    chi2_cutoff = cutoff;
                    notsig.insert(candidate.clone());
                    // Only NOTSIG members can be subsets of future
                    // candidates, so theirs are the only supports worth
                    // retaining — and none at the final level.
                    if !is_last_level {
                        store.insert(candidate.clone(), *supp);
                    }
                }
            }
        }
        debug_assert!(stats.is_consistent());
        obs.record_level(&stats);
        levels.push(stats);
        level_profile.emit_us = micros(emit_start.elapsed());
        drop(_emit_span);
        // Don't generate candidates the level cap would discard unseen.
        let candgen_start = Instant::now();
        candidates = if is_last_level {
            Vec::new()
        } else {
            let _span = bmb_obs::trace::span_timed("candgen", &obs.stage_candgen);
            generate_candidates(&notsig)
        };
        level_profile.candgen_us = micros(candgen_start.elapsed());
        profile.levels.push(level_profile);
        level += 1;
    }
    if chi2_cutoff.is_nan() {
        chi2_cutoff = chi2_test.test_dense(&trivial_table()).cutoff;
    }
    obs.runs.inc();

    Ok(MiningResult {
        significant,
        levels,
        support_count: s,
        chi2_cutoff,
        elapsed: start.elapsed(),
        profile,
    })
}

/// Saturating `Duration` → whole microseconds.
fn micros(duration: Duration) -> u64 {
    duration.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Handles into the global registry for the miner's stage metrics
/// (`bmb_core_miner_*`). Registration is idempotent, so attaching on
/// every run just re-fetches the shared cells.
struct MinerObs {
    runs: bmb_obs::Counter,
    candidates: bmb_obs::Counter,
    lattice: bmb_obs::Counter,
    discards: bmb_obs::Counter,
    significant: bmb_obs::Counter,
    not_significant: bmb_obs::Counter,
    index_build: bmb_obs::Histogram,
    initial_pairs: bmb_obs::Histogram,
    stage_count: bmb_obs::Histogram,
    stage_evaluate: bmb_obs::Histogram,
    stage_emit: bmb_obs::Histogram,
    stage_candgen: bmb_obs::Histogram,
}

impl MinerObs {
    fn attach() -> MinerObs {
        let registry = bmb_obs::global();
        let stage_help = "Miner stage wall time in microseconds.";
        let stage = |name: &str| {
            registry.histogram_with("bmb_core_miner_stage_us", stage_help, &[("stage", name)])
        };
        MinerObs {
            runs: registry.counter("bmb_core_miner_runs_total", "Completed mining runs."),
            candidates: registry.counter(
                "bmb_core_miner_candidates_total",
                "Candidates examined across all levels.",
            ),
            lattice: registry.counter(
                "bmb_core_miner_lattice_itemsets_total",
                "Lattice itemsets at visited levels (prune-ratio denominator).",
            ),
            discards: registry.counter(
                "bmb_core_miner_discards_total",
                "Candidates discarded by the cell-support test.",
            ),
            significant: registry.counter(
                "bmb_core_miner_significant_total",
                "Candidates emitted to the border (SIG).",
            ),
            not_significant: registry.counter(
                "bmb_core_miner_notsig_total",
                "Supported but uncorrelated candidates (NOTSIG).",
            ),
            index_build: stage("index_build"),
            initial_pairs: stage("initial_pairs"),
            stage_count: stage("count"),
            stage_evaluate: stage("evaluate"),
            stage_emit: stage("emit"),
            stage_candgen: stage("candgen"),
        }
    }

    fn record_level(&self, stats: &LevelStats) {
        self.candidates.add(stats.candidates as u64);
        self.lattice.add(stats.lattice_itemsets);
        self.discards.add(stats.discards as u64);
        self.significant.add(stats.significant as u64);
        self.not_significant.add(stats.not_significant as u64);
    }
}

/// Per-candidate outcome of one level's evaluation pass.
enum Verdict {
    /// Failed the cell-support test.
    Discarded,
    /// Supported and correlated — a finished rule.
    Significant(CorrelationRule),
    /// Supported but uncorrelated (NOTSIG); carries the χ² cutoff so the
    /// caller can report it.
    NotSignificant {
        /// The cutoff the statistic was compared against.
        cutoff: f64,
    },
}

/// Evaluates all candidates of one level, in parallel chunks when
/// `threads > 1`.
#[allow(clippy::too_many_arguments)]
fn evaluate_candidates<M: MarginalSource + Sync>(
    marginals: &M,
    store: &SupportStore,
    candidates: &[Itemset],
    supports: &[u64],
    s: u64,
    cells_required: usize,
    chi2_test: &Chi2Test,
    threads: usize,
) -> Vec<Verdict> {
    let evaluate = |candidate: &Itemset, supp: u64| -> Verdict {
        let table = table_from_supports(marginals, store, candidate, supp);
        let support = cell_support(&table, s, cells_required);
        if !support.supported() {
            return Verdict::Discarded;
        }
        let outcome = chi2_test.test_dense(&table);
        if outcome.significant {
            Verdict::Significant(CorrelationRule {
                itemset: candidate.clone(),
                chi2: outcome,
                support_cells: support.cells_with_support,
                table,
            })
        } else {
            Verdict::NotSignificant {
                cutoff: outcome.cutoff,
            }
        }
    };
    let threads = threads.max(1).min(candidates.len().max(1));
    if threads == 1 || candidates.len() < 256 {
        return candidates
            .iter()
            .zip(supports)
            .map(|(c, &supp)| evaluate(c, supp))
            .collect();
    }
    let chunk = candidates.len().div_ceil(threads);
    let scoped = crossbeam::thread::scope(|scope| {
        let evaluate = &evaluate;
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .zip(supports.chunks(chunk))
            .map(|(cand_chunk, supp_chunk)| {
                scope.spawn(move |_| {
                    cand_chunk
                        .iter()
                        .zip(supp_chunk)
                        .map(|(c, &supp)| evaluate(c, supp))
                        .collect::<Vec<Verdict>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| crate::counting::propagate(h.join()))
            .collect::<Vec<Vec<Verdict>>>()
    });
    crate::counting::propagate(scoped)
        .into_iter()
        .flatten()
        .collect()
}

/// Step 3: the initial pair candidates under the chosen level-1 policy.
fn initial_pairs<M: MarginalSource>(marginals: &M, s: u64, policy: Level1Prune) -> Vec<Itemset> {
    let k = marginals.n_items() as u32;
    let keep = |a: u32, b: u32| -> bool {
        let ca = marginals.item_count(ItemId(a));
        let cb = marginals.item_count(ItemId(b));
        match policy {
            Level1Prune::PaperBothFrequent => ca >= s && cb >= s,
            Level1Prune::BothRare => ca >= s || cb >= s,
            Level1Prune::Off => true,
        }
    };
    let mut out = Vec::new();
    for a in 0..k {
        for b in a + 1..k {
            if keep(a, b) {
                out.push(Itemset::from_ids([a, b]));
            }
        }
    }
    out
}

/// A placeholder table used only to extract the χ² cutoff when no
/// candidate was ever tested.
fn trivial_table() -> bmb_basket::ContingencyTable {
    bmb_basket::ContingencyTable::from_counts(Itemset::from_ids([0, 1]), vec![1, 1, 1, 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupportSpec;

    fn base_config() -> MinerConfig {
        MinerConfig {
            support: SupportSpec::Count(5),
            support_fraction: 0.26,
            ..Default::default()
        }
    }

    /// Parity data: pairs independent, triple maximally dependent. The
    /// miner must output exactly {0,1,2} — the canonical minimal
    /// level-3 correlation.
    #[test]
    fn finds_minimal_triple_in_parity_data() {
        let db = bmb_datasets::parity_triple(400, 4);
        let result = mine(&db, &base_config());
        let sets: Vec<&Itemset> = result.significant.iter().map(|r| &r.itemset).collect();
        assert_eq!(sets, vec![&Itemset::from_ids([0, 1, 2])]);
        // Level accounting: no level-2 significance, one level-3 hit.
        assert_eq!(result.levels[0].significant, 0);
        assert_eq!(result.levels[1].significant, 1);
    }

    #[test]
    fn planted_pair_is_minimal_at_level_2() {
        let db = bmb_datasets::planted_pair(3000, 6, 0.3, 0.7, 99);
        let result = mine(&db, &base_config());
        let planted = Itemset::from_ids([0, 1]);
        assert!(
            result.rule_for(&planted).is_some(),
            "planted pair not found among {:?}",
            result
                .significant
                .iter()
                .map(|r| r.itemset.to_string())
                .collect::<Vec<_>>()
        );
        // Everything significant is minimal: no reported set contains
        // another.
        let border = result.border();
        assert_eq!(border.len(), result.significant.len());
    }

    #[test]
    fn independent_data_yields_nothing_under_saturated_df() {
        // With the paper's single-df convention, deep levels accumulate
        // statistic over 2^m cells against a 1-df cutoff and false
        // positives appear — a *limitation the paper acknowledges* (its
        // accuracy concerns in Section 3.3). The saturated convention is
        // calibrated at every level: independent data yields nothing.
        let db = bmb_datasets::independent(3000, 6, 0.3, 5);
        let config = MinerConfig {
            alpha: 0.9999,
            df: bmb_stats::DfConvention::Saturated,
            ..base_config()
        };
        let result = mine(&db, &config);
        assert!(
            result.significant.is_empty(),
            "false positives: {:?}",
            result
                .significant
                .iter()
                .map(|r| r.itemset.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_df_convention_overreports_at_deep_levels() {
        // The flip side of the test above, pinned as a documented property:
        // the single-df convention lets some deep itemsets through on
        // independent data.
        let db = bmb_datasets::independent(3000, 6, 0.3, 5);
        let config = MinerConfig {
            alpha: 0.9999,
            ..base_config()
        };
        let result = mine(&db, &config);
        assert!(
            result.significant.iter().all(|r| r.itemset.len() >= 4),
            "levels 2-3 must stay clean even under the paper convention"
        );
    }

    #[test]
    fn bitmap_and_scan_strategies_agree() {
        let db = bmb_datasets::planted_pair(1500, 8, 0.25, 0.6, 11);
        let a = mine(
            &db,
            &MinerConfig {
                counting: CountingStrategy::Bitmap,
                ..base_config()
            },
        );
        let b = mine(
            &db,
            &MinerConfig {
                counting: CountingStrategy::BasketScan,
                ..base_config()
            },
        );
        assert_eq!(a.levels, b.levels);
        let sa: Vec<&Itemset> = a.significant.iter().map(|r| &r.itemset).collect();
        let sb: Vec<&Itemset> = b.significant.iter().map(|r| &r.itemset).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn threads_do_not_change_results() {
        let db = bmb_datasets::planted_pair(1500, 8, 0.25, 0.6, 12);
        let a = mine(
            &db,
            &MinerConfig {
                threads: 1,
                ..base_config()
            },
        );
        let b = mine(
            &db,
            &MinerConfig {
                threads: 4,
                ..base_config()
            },
        );
        assert_eq!(a.levels, b.levels);
    }

    #[test]
    fn max_level_stops_early() {
        let db = bmb_datasets::parity_triple(400, 4);
        let config = MinerConfig {
            max_level: 2,
            ..base_config()
        };
        let result = mine(&db, &config);
        assert!(result.significant.is_empty());
        assert_eq!(result.levels.len(), 1);
    }

    #[test]
    fn support_threshold_discards_rare_structure() {
        // The parity triple on only 40 baskets puts exactly 10 baskets in
        // every pair cell; a support threshold of 11 discards every pair,
        // so NOTSIG stays empty and the genuinely-correlated triple is
        // never even generated — support pruning trades rare structure
        // for speed, as Section 3.3 discusses.
        let db = bmb_datasets::parity_triple(40, 3);
        let config = MinerConfig {
            support: SupportSpec::Count(11),
            level1: Level1Prune::Off,
            ..base_config()
        };
        let result = mine(&db, &config);
        assert_eq!(result.levels[0].discards, result.levels[0].candidates);
        assert_eq!(result.levels.len(), 1, "no level-3 candidates can form");
        assert!(result.significant.is_empty());
    }

    #[test]
    fn stats_are_internally_consistent() {
        let db = bmb_datasets::planted_pair(2000, 10, 0.2, 0.5, 4);
        let result = mine(&db, &base_config());
        for level in &result.levels {
            assert!(level.is_consistent(), "{level:?}");
        }
        assert!((result.chi2_cutoff - 3.841).abs() < 1e-2);
        assert_eq!(result.support_count, 5);
    }

    #[test]
    fn counter_backed_mine_is_bit_identical_to_local_mine() {
        // Scatter-gather in miniature: four "shards" each count their
        // slice, the counter sums the integer vectors, and the result
        // must match a whole-database run bit for bit — statistics,
        // cutoffs, level accounting, everything.
        let db = bmb_datasets::planted_pair(2000, 8, 0.25, 0.6, 21);
        let shards: Vec<bmb_basket::BasketDatabase> = (0..4)
            .map(|s| {
                bmb_basket::BasketDatabase::from_id_baskets(
                    db.n_items(),
                    (0..db.len())
                        .filter(|i| i % 4 == s)
                        .map(|i| db.basket(i).iter().map(|id| id.0).collect())
                        .collect(),
                )
            })
            .collect();
        let indexes: Vec<BitmapIndex> = shards.iter().map(BitmapIndex::build).collect();
        let marginals = crate::counting::Marginals {
            n_baskets: shards.iter().map(|s| s.len() as u64).sum(),
            item_counts: (0..db.n_items())
                .map(|i| {
                    shards
                        .iter()
                        .map(|s| s.item_count(ItemId(i as u32)))
                        .sum::<u64>()
                })
                .collect(),
        };
        let count = |candidates: &[Itemset]| -> Result<Vec<u64>, String> {
            let mut acc = vec![0u64; candidates.len()];
            for index in &indexes {
                for (slot, c) in acc.iter_mut().zip(candidates) {
                    *slot += index.support_count(c.items());
                }
            }
            Ok(acc)
        };
        let config = base_config();
        let gathered = mine_with_counter(&marginals, count, &config).unwrap();
        let local = mine(&db, &config);
        assert_eq!(gathered.levels, local.levels);
        assert_eq!(gathered.support_count, local.support_count);
        assert_eq!(gathered.chi2_cutoff.to_bits(), local.chi2_cutoff.to_bits());
        assert_eq!(gathered.significant.len(), local.significant.len());
        for (a, b) in gathered.significant.iter().zip(&local.significant) {
            assert_eq!(a.itemset, b.itemset);
            assert_eq!(a.chi2.statistic.to_bits(), b.chi2.statistic.to_bits());
            assert_eq!(a.support_cells, b.support_cells);
            assert_eq!(a.table, b.table);
        }
    }

    #[test]
    fn counter_errors_abort_the_run() {
        let db = bmb_datasets::parity_triple(200, 3);
        let marginals = crate::counting::Marginals {
            n_baskets: db.len() as u64,
            item_counts: db.item_counts().to_vec(),
        };
        let count = |_: &[Itemset]| -> Result<Vec<u64>, String> { Err("shard down".to_string()) };
        let err = mine_with_counter(&marginals, count, &base_config()).unwrap_err();
        assert_eq!(err, "shard down");
    }

    #[test]
    fn census_mine_matches_pairwise_verdicts() {
        // End-to-end: mining the simulated census at the paper's settings
        // finds exactly the pairs Table 2 bolds (all of which are minimal,
        // being pairs), minus none — the support test passes for every
        // pair at s = 1%, p = 0.26.
        let db = bmb_datasets::generate_census();
        let config = MinerConfig {
            support: SupportSpec::Fraction(0.01),
            support_fraction: 0.26,
            max_level: 2,
            ..MinerConfig::default()
        };
        let result = mine(&db, &config);
        let expected: Vec<(usize, usize)> = bmb_datasets::census::targets::PAIR_TARGETS
            .iter()
            .filter(|t| t.paper_significant())
            .map(|t| (t.a, t.b))
            .collect();
        assert_eq!(result.levels[0].candidates, 45);
        assert_eq!(result.significant.len(), expected.len());
        for (a, b) in expected {
            let set = Itemset::from_ids([a as u32, b as u32]);
            assert!(result.rule_for(&set).is_some(), "missing (i{a}, i{b})");
        }
    }
}
